//! The context extractor (paper §3.2).
//!
//! Offline, every text sample of the domain DB is embedded and stored
//! in a vector index; online, the question is embedded and the top-k
//! most cosine-similar samples become the prompt context.

use dio_catalog::{DocSample, DomainDb};
use dio_embed::{Embedder, EmbedderConfig};
use dio_vecstore::{
    DocIndex, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, SearchHit, VectorIndex,
};
use serde::{Deserialize, Serialize};

/// A retrieved context sample with its similarity score.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// The text sample.
    pub sample: DocSample,
    /// Cosine similarity to the question.
    pub score: f32,
}

/// Work accounting for one retrieval, fed into `dio-obs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetrievalStats {
    /// Candidate vectors the index scanned (exact indexes scan the
    /// whole store; IVF reports the probed fraction; the random
    /// baseline scans nothing).
    pub candidates_scanned: usize,
}

/// How context is retrieved — the retrieval-quality ablation lever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// Exact brute-force cosine search (FAISS `IndexFlatIP`), default.
    Flat,
    /// Approximate IVF search (FAISS `IndexIVFFlat`).
    Ivf {
        /// Inverted lists.
        nlist: usize,
        /// Lists probed per query.
        nprobe: usize,
    },
    /// Graph-based approximate search (FAISS `IndexHNSWFlat`).
    Hnsw {
        /// Search-time candidate width.
        ef_search: usize,
    },
    /// Pseudo-random context (no semantic search) — the degenerate
    /// baseline showing retrieval is load-bearing.
    Random {
        /// Sampling seed.
        seed: u64,
    },
}

#[derive(Clone)]
enum IndexKind {
    Flat(DocIndex<FlatIndex, DocSample>),
    Ivf(DocIndex<IvfIndex, DocSample>),
    Hnsw(DocIndex<HnswIndex, DocSample>),
    Random { samples: Vec<DocSample>, seed: u64 },
}

/// Embedder + vector index over the domain DB's text samples.
///
/// Searches take `&self` and the index holds no interior mutability, so
/// one extractor can serve top-k queries from many threads at once
/// (typically behind an `Arc` in the serving worker pool). `Clone`
/// exists for copy-on-write in the chaos-demotion path.
#[derive(Clone)]
pub struct ContextExtractor {
    embedder: Embedder,
    index: IndexKind,
    /// The embedded corpus, retained so a quarantined index can be
    /// rebuilt at a lower tier (HNSW → IVF → flat) without the
    /// original `DomainDb`.
    rebuild: Vec<(DocSample, String)>,
}

impl ContextExtractor {
    /// Build from a domain DB (the "offline process"). `domain_tuned`
    /// selects the telecom-lexicon embedder; `false` uses the generic
    /// configuration (§5.3 ablation).
    pub fn build(db: &DomainDb, domain_tuned: bool) -> Self {
        Self::build_with_mode(db, domain_tuned, RetrievalMode::Flat)
    }

    /// Build with an explicit retrieval mode.
    pub fn build_with_mode(db: &DomainDb, domain_tuned: bool, mode: RetrievalMode) -> Self {
        let samples = db.text_samples();
        let config = if domain_tuned {
            EmbedderConfig::default()
        } else {
            EmbedderConfig::generic()
        };
        let texts: Vec<String> = samples.iter().map(|s| s.embedding_text()).collect();
        let embedder = Embedder::fit(&config, texts.iter().map(|s| s.as_str()));
        let rebuild: Vec<(DocSample, String)> = samples
            .iter()
            .cloned()
            .zip(texts.iter().cloned())
            .collect();
        let index = match mode {
            RetrievalMode::Flat => {
                let mut index = DocIndex::new(FlatIndex::new(embedder.dims()));
                for (sample, text) in samples.into_iter().zip(texts.iter()) {
                    index.add(embedder.embed(text), sample);
                }
                IndexKind::Flat(index)
            }
            RetrievalMode::Ivf { nlist, nprobe } => {
                let vectors: Vec<_> = texts.iter().map(|t| embedder.embed(t)).collect();
                let ivf = IvfIndex::train(
                    embedder.dims(),
                    IvfConfig {
                        nlist,
                        nprobe,
                        ..IvfConfig::default()
                    },
                    vectors,
                );
                IndexKind::Ivf(DocIndex::from_parts(ivf, samples))
            }
            RetrievalMode::Hnsw { ef_search } => {
                let mut index = DocIndex::new(HnswIndex::new(
                    embedder.dims(),
                    HnswConfig {
                        ef_search,
                        ..HnswConfig::default()
                    },
                ));
                for (sample, text) in samples.into_iter().zip(texts.iter()) {
                    index.add(embedder.embed(text), sample);
                }
                IndexKind::Hnsw(index)
            }
            RetrievalMode::Random { seed } => IndexKind::Random { samples, seed },
        };
        ContextExtractor {
            embedder,
            index,
            rebuild,
        }
    }

    /// Slug of the active index tier, for metrics and reports.
    pub fn mode_slug(&self) -> &'static str {
        match &self.index {
            IndexKind::Flat(_) => "flat",
            IndexKind::Ivf(_) => "ivf",
            IndexKind::Hnsw(_) => "hnsw",
            IndexKind::Random { .. } => "random",
        }
    }

    /// Quarantine the active index and fall back one tier:
    /// HNSW → IVF → flat scan; a damaged flat index is rebuilt from the
    /// retained corpus (flat → flat). Returns `(from, to)` slugs, or
    /// `None` for the random baseline (nothing to rebuild). The
    /// embedder is unaffected, so retrieval quality degrades gracefully
    /// along the recall/latency curve instead of failing.
    pub fn demote(&mut self) -> Option<(&'static str, &'static str)> {
        let (from, to) = match &self.index {
            IndexKind::Hnsw(_) => ("hnsw", "ivf"),
            IndexKind::Ivf(_) => ("ivf", "flat"),
            IndexKind::Flat(_) => ("flat", "flat"),
            IndexKind::Random { .. } => return None,
        };
        self.index = if to == "ivf" {
            let vectors: Vec<_> = self
                .rebuild
                .iter()
                .map(|(_, t)| self.embedder.embed(t))
                .collect();
            let ivf = IvfIndex::train(self.embedder.dims(), IvfConfig::default(), vectors);
            IndexKind::Ivf(DocIndex::from_parts(
                ivf,
                self.rebuild.iter().map(|(s, _)| s.clone()).collect(),
            ))
        } else {
            let mut index = DocIndex::new(FlatIndex::new(self.embedder.dims()));
            for (sample, text) in &self.rebuild {
                index.add(self.embedder.embed(text), sample.clone());
            }
            IndexKind::Flat(index)
        };
        Some((from, to))
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        match &self.index {
            IndexKind::Flat(i) => i.len(),
            IndexKind::Ivf(i) => i.len(),
            IndexKind::Hnsw(i) => i.len(),
            IndexKind::Random { samples, .. } => samples.len(),
        }
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn raw_search(&self, q: &dio_embed::Vector, k: usize) -> Vec<(SearchHit, &DocSample)> {
        match &self.index {
            IndexKind::Flat(i) => i
                .search(q, k)
                .into_iter()
                .map(|h| {
                    let doc = i.get(h.id).expect("indexed");
                    (SearchHit { id: h.id, score: h.score }, doc)
                })
                .collect(),
            IndexKind::Ivf(i) => i
                .search(q, k)
                .into_iter()
                .map(|h| {
                    let doc = i.get(h.id).expect("indexed");
                    (SearchHit { id: h.id, score: h.score }, doc)
                })
                .collect(),
            IndexKind::Hnsw(i) => i
                .search(q, k)
                .into_iter()
                .map(|h| {
                    let doc = i.get(h.id).expect("indexed");
                    (SearchHit { id: h.id, score: h.score }, doc)
                })
                .collect(),
            IndexKind::Random { .. } => Vec::new(),
        }
    }

    fn get_vector(&self, id: usize) -> Option<&dio_embed::Vector> {
        match &self.index {
            IndexKind::Flat(i) => i.index().get(id),
            IndexKind::Ivf(_) | IndexKind::Hnsw(_) | IndexKind::Random { .. } => None,
        }
    }

    /// Top-k samples for a question, diversified with maximal marginal
    /// relevance (MMR).
    ///
    /// Plain cosine top-k drowns in redundancy on operator data: a
    /// question mentioning a rare failure cause matches the *same*
    /// failure counter of forty different procedures, crowding out the
    /// procedure's own attempt/success counters that the final query
    /// needs. MMR greedily picks items maximising
    /// `λ·sim(q, d) − (1−λ)·max_{s∈selected} sim(d, s)`,
    /// the standard diversification used in retrieval-augmented
    /// pipelines over FAISS-style stores.
    pub fn retrieve(&self, question: &str, k: usize) -> Vec<Retrieved> {
        self.retrieve_vec(question, None, k)
    }

    /// Like [`ContextExtractor::retrieve`], but reuse a precomputed
    /// question embedding when one is supplied — the serving layer's
    /// embedding cache hands back vectors for repeated questions so the
    /// hot path skips the tokenise+hash+IDF pass entirely. The vector
    /// must come from this extractor's [`ContextExtractor::embed_question`]
    /// (same embedder fit), or search quality is undefined.
    pub fn retrieve_vec(
        &self,
        question: &str,
        qvec: Option<&dio_embed::Vector>,
        k: usize,
    ) -> Vec<Retrieved> {
        const LAMBDA: f32 = 0.75;
        const PREFETCH_FACTOR: usize = 4;
        if k == 0 {
            return Vec::new();
        }

        // Degenerate random mode: deterministic pseudo-random picks.
        if let IndexKind::Random { samples, seed } = &self.index {
            if samples.is_empty() {
                return Vec::new();
            }
            let mut out = Vec::with_capacity(k);
            let mut h = *seed;
            for b in question.as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut picked = std::collections::HashSet::new();
            while out.len() < k.min(samples.len()) {
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 29;
                let idx = (h % samples.len() as u64) as usize;
                if picked.insert(idx) {
                    out.push(Retrieved {
                        sample: samples[idx].clone(),
                        score: 0.0,
                    });
                }
            }
            return out;
        }

        let owned = match qvec {
            Some(_) => None,
            None => Some(self.embedder.embed(question)),
        };
        let q = qvec.unwrap_or_else(|| owned.as_ref().expect("embedded above"));
        let prefetch = self.raw_search(q, k.saturating_mul(PREFETCH_FACTOR).max(k));
        if prefetch.is_empty() {
            return Vec::new();
        }

        // MMR diversification when doc vectors are available (flat
        // index); approximate indexes fall back to plain top-k.
        let can_mmr = self.get_vector(prefetch[0].0.id).is_some();
        if !can_mmr {
            return prefetch
                .into_iter()
                .take(k)
                .map(|(h, doc)| Retrieved {
                    sample: doc.clone(),
                    score: h.score,
                })
                .collect();
        }

        let mut remaining: Vec<(usize, f32, &DocSample)> = prefetch
            .iter()
            .map(|(h, doc)| (h.id, h.score, *doc))
            .collect();
        let mut selected: Vec<(usize, f32, &DocSample)> = Vec::with_capacity(k);
        while selected.len() < k && !remaining.is_empty() {
            let mut best_pos = 0;
            let mut best_val = f32::NEG_INFINITY;
            for (pos, &(id, qsim, _)) in remaining.iter().enumerate() {
                let max_red = selected
                    .iter()
                    .map(|&(sid, _, _)| {
                        dio_embed::cosine(
                            self.get_vector(id).expect("flat"),
                            self.get_vector(sid).expect("flat"),
                        )
                    })
                    .fold(0.0f32, f32::max);
                let val = LAMBDA * qsim - (1.0 - LAMBDA) * max_red;
                if val > best_val {
                    best_val = val;
                    best_pos = pos;
                }
            }
            selected.push(remaining.remove(best_pos));
        }

        selected
            .into_iter()
            .map(|(_, score, doc)| Retrieved {
                sample: doc.clone(),
                score,
            })
            .collect()
    }

    /// Embed a question with this extractor's fitted embedder. The
    /// serving layer calls this once per distinct (normalized) question
    /// and caches the vector for [`ContextExtractor::retrieve_vec`].
    pub fn embed_question(&self, question: &str) -> dio_embed::Vector {
        self.embedder.embed(question)
    }

    /// [`ContextExtractor::retrieve`] plus work accounting. For exact
    /// indexes (flat, HNSW) the scan count is the store size — HNSW's
    /// graph walk touches fewer, so this is an upper bound; IVF reports
    /// exactly the probed-list candidates.
    pub fn retrieve_with_stats(&self, question: &str, k: usize) -> (Vec<Retrieved>, RetrievalStats) {
        self.retrieve_with_stats_vec(question, None, k)
    }

    /// [`ContextExtractor::retrieve_with_stats`] with an optional
    /// precomputed question embedding. The vector is computed at most
    /// once here and shared between the stats probe and the search
    /// proper (the old path embedded twice for IVF).
    pub fn retrieve_with_stats_vec(
        &self,
        question: &str,
        qvec: Option<&dio_embed::Vector>,
        k: usize,
    ) -> (Vec<Retrieved>, RetrievalStats) {
        if k == 0 {
            return (Vec::new(), RetrievalStats { candidates_scanned: 0 });
        }
        if matches!(self.index, IndexKind::Random { .. }) {
            return (
                self.retrieve_vec(question, None, k),
                RetrievalStats { candidates_scanned: 0 },
            );
        }
        let owned = match qvec {
            Some(_) => None,
            None => Some(self.embedder.embed(question)),
        };
        let q = qvec.unwrap_or_else(|| owned.as_ref().expect("embedded above"));
        let candidates_scanned = match &self.index {
            IndexKind::Flat(i) => i.len(),
            IndexKind::Hnsw(i) => i.len(),
            IndexKind::Ivf(i) => i.index().search_with_stats(q, k).1.candidates_scanned,
            IndexKind::Random { .. } => unreachable!("handled above"),
        };
        (
            self.retrieve_vec(question, Some(q), k),
            RetrievalStats { candidates_scanned },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};

    fn db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        }))
    }

    #[test]
    fn indexes_every_sample() {
        let d = db();
        let ex = ContextExtractor::build(&d, true);
        assert_eq!(ex.len(), d.text_samples().len());
        assert!(!ex.is_empty());
    }

    #[test]
    fn retrieves_topically_relevant_samples() {
        let d = db();
        let ex = ContextExtractor::build(&d, true);
        let hits = ex.retrieve(
            "How many initial registration attempts did the AMF handle?",
            29,
        );
        assert_eq!(hits.len(), 29);
        assert!(
            hits.iter()
                .any(|h| h.sample.name == "amfcc_n1_initial_registration_attempt"),
            "expected the attempt counter in top-29, got: {:?}",
            hits.iter().map(|h| &h.sample.name).collect::<Vec<_>>()
        );
        // The first MMR pick is the plain nearest neighbour.
        let top = hits.iter().map(|h| h.score).fold(f32::MIN, f32::max);
        assert_eq!(hits[0].score, top);
    }

    #[test]
    fn failure_question_retrieves_the_right_cause_counter() {
        // A failure-cause question matches dozens of failure counters
        // across procedures; the question's own procedure+cause counter
        // must rank in the top-29 (the code generator reconstructs the
        // attempt denominator from it by naming convention).
        let catalog = generate_catalog(&CatalogConfig::default());
        let group = catalog
            .groups
            .iter()
            .find(|g| g.procedure == "initial_registration")
            .unwrap();
        let (cause, fname) = group.failures[0].clone();
        let d = DomainDb::from_catalog(catalog);
        let ex = ContextExtractor::build(&d, true);
        let q = format!(
            "What fraction of initial registration procedures failed due to {}?",
            cause.replace('_', " ")
        );
        let hits = ex.retrieve(&q, 29);
        assert!(
            hits.iter().any(|h| h.sample.name == fname),
            "cause counter {fname} missing from top-29 for {q:?}: {:?}",
            hits.iter().map(|h| &h.sample.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mmr_diversifies_across_procedures() {
        // Plain top-k returns near-duplicates (the same procedure's
        // many failure causes); MMR must cover more distinct
        // procedures in the same budget.
        let d = DomainDb::from_catalog(generate_catalog(&CatalogConfig::default()));
        let ex = ContextExtractor::build(&d, true);
        let hits = ex.retrieve(
            "What fraction of initial registration procedures failed due to congestion?",
            29,
        );
        let procedures: std::collections::HashSet<&str> = hits
            .iter()
            .map(|h| {
                let name = h.sample.name.as_str();
                name.split("_failure_").next().unwrap_or(name)
            })
            .collect();
        assert!(
            procedures.len() >= 4,
            "MMR top-29 covers too few procedures: {procedures:?}"
        );
    }

    #[test]
    fn retrieval_finds_function_definitions_too() {
        let d = db();
        let ex = ContextExtractor::build(&d, true);
        let hits = ex.retrieve(
            "expert function to compute the percentage success rate of a procedure",
            29,
        );
        assert!(
            hits.iter().any(|h| h.sample.name.starts_with("function:")),
            "expected a function definition in context"
        );
    }

    #[test]
    fn retrieval_stats_reflect_index_work() {
        let d = db();
        let n = d.text_samples().len();
        let flat = ContextExtractor::build(&d, true);
        let (hits, stats) = flat.retrieve_with_stats("paging attempts", 10);
        assert_eq!(hits, flat.retrieve("paging attempts", 10));
        assert_eq!(stats.candidates_scanned, n);
        assert_eq!(flat.retrieve_with_stats("q", 0).1.candidates_scanned, 0);

        let ivf = ContextExtractor::build_with_mode(
            &d,
            true,
            RetrievalMode::Ivf { nlist: 16, nprobe: 2 },
        );
        let (_, ivf_stats) = ivf.retrieve_with_stats("paging attempts", 10);
        assert!(ivf_stats.candidates_scanned > 0);
        assert!(ivf_stats.candidates_scanned < n, "2/16 probes scanned everything");

        let random = ContextExtractor::build_with_mode(&d, true, RetrievalMode::Random { seed: 7 });
        assert_eq!(
            random.retrieve_with_stats("paging attempts", 10).1.candidates_scanned,
            0
        );
    }

    #[test]
    fn retrieval_is_deterministic() {
        let d = db();
        let ex = ContextExtractor::build(&d, true);
        let a = ex.retrieve("paging attempts", 10);
        let b = ex.retrieve("paging attempts", 10);
        assert_eq!(a, b);
    }
}

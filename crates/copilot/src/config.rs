//! Copilot configuration.

use crate::extractor::RetrievalMode;
use crate::recovery::RecoveryPolicy;
use serde::{Deserialize, Serialize};

/// Pipeline parameters. Defaults follow the paper's §4 evaluation
/// setup exactly: top-29 context samples, 20 few-shot exemplars,
/// 1000 max output tokens, temperature 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CopilotConfig {
    /// Context samples retrieved per question ("the top 29 most similar
    /// text samples are appended as supplemental context").
    pub top_k: usize,
    /// Maximum few-shot exemplars placed in the code-generation prompt.
    pub max_exemplars: usize,
    /// Maximum completion tokens ("maximum number of output tokens is
    /// set to 1000").
    pub max_output_tokens: usize,
    /// Sampling temperature ("temperature parameter … set to 0").
    pub temperature: f64,
    /// Also generate a dashboard for each answer.
    pub generate_dashboards: bool,
    /// Dashboard span (ms) ending at the evaluation timestamp.
    pub dashboard_span_ms: i64,
    /// Use the domain-tuned embedder (telecom lexicon); `false` falls
    /// back to the generic embedder — the §5.3 ablation lever.
    pub domain_embedder: bool,
    /// Retrieval mode for the context extractor (ablation lever).
    pub retrieval: RetrievalMode,
    /// Run metric identification as a separate model call before code
    /// generation. The default (`false`) folds both §3.2/§3.3 roles
    /// into one prompt — same architecture stages, one inference —
    /// which is what keeps the per-query cost in the paper's envelope.
    pub two_stage: bool,
    /// Bounds on retries, repair rounds, backoff, and the circuit
    /// breaker. [`RecoveryPolicy::disabled`] is the ablation baseline.
    pub recovery: RecoveryPolicy,
    /// Data-plane chaos injection (seeded, deterministic). `None` — the
    /// default — leaves the pipeline fault-free; `Some` derives
    /// per-layer injectors for the sandbox's metric store and the
    /// retrieval index. The chaos-soak lever.
    pub data_chaos: Option<dio_faults::ChaosConfig>,
}

impl Default for CopilotConfig {
    fn default() -> Self {
        CopilotConfig {
            top_k: 29,
            max_exemplars: 20,
            max_output_tokens: 1000,
            temperature: 0.0,
            generate_dashboards: true,
            dashboard_span_ms: 3 * 3600 * 1000,
            domain_embedder: true,
            retrieval: RetrievalMode::Flat,
            two_stage: false,
            recovery: RecoveryPolicy::default(),
            data_chaos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = CopilotConfig::default();
        assert_eq!(c.top_k, 29);
        assert_eq!(c.max_exemplars, 20);
        assert_eq!(c.max_output_tokens, 1000);
        assert_eq!(c.temperature, 0.0);
    }
}

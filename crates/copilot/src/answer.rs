//! Copilot response types.

use crate::error::CopilotError;
use crate::recovery::DegradationLevel;
use crate::trace::PipelineTrace;
use dio_dashboard::Dashboard;
use dio_llm::TokenUsage;
use dio_sandbox::DataCompleteness;
use serde::{Deserialize, Serialize};

/// One relevant metric presented to the user (name + what it measures,
/// as in the paper's Figure 1b response).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelevantMetric {
    /// Counter name.
    pub name: String,
    /// Vendor description.
    pub description: String,
}

/// The copilot's full response to a question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CopilotResponse {
    /// The question asked.
    pub question: String,
    /// Metrics the model judged relevant, with descriptions.
    pub relevant_metrics: Vec<RelevantMetric>,
    /// The generated PromQL (canonical form when it executed).
    pub query: String,
    /// English explanation of what the query computes.
    pub explanation: String,
    /// The numeric answer, when execution produced a single value.
    pub numeric_answer: Option<f64>,
    /// All numeric values when the result was a multi-sample vector.
    pub values: Vec<f64>,
    /// The classified failure, when something went wrong (a degraded
    /// answer may coexist with the error that forced the degradation).
    pub error: Option<CopilotError>,
    /// How much of the full pipeline stands behind this answer.
    pub degradation: DegradationLevel,
    /// Whether the data store served every read cleanly while this
    /// answer was computed ([`DataCompleteness::Partial`] means the
    /// store degraded mid-query and the numbers may under-count).
    pub data_completeness: DataCompleteness,
    /// Generated dashboard, when enabled.
    pub dashboard: Option<Dashboard>,
    /// Token usage across both model calls.
    pub usage: TokenUsage,
    /// Inference cost in US cents (§4.2.5 accounting).
    pub cost_cents: f64,
    /// Per-stage timings.
    pub trace: PipelineTrace,
}

impl CopilotResponse {
    /// Render a Figure-1b-style textual response.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Q: {}\n\n", self.question));
        out.push_str("Relevant metrics:\n");
        if self.relevant_metrics.is_empty() {
            out.push_str("  (none found — consider requesting expert help)\n");
        }
        for m in &self.relevant_metrics {
            out.push_str(&format!("  • {} — {}\n", m.name, m.description));
        }
        out.push_str(&format!("\nQuery:\n  {}\n", self.query));
        if !self.explanation.is_empty() {
            out.push_str(&format!("  ({})\n", self.explanation));
        }
        match (&self.numeric_answer, &self.error) {
            (Some(v), _) => out.push_str(&format!("\nAnswer: {v:.4}\n")),
            (None, Some(e)) => out.push_str(&format!("\nAnswer: unavailable ({e})\n")),
            (None, None) if !self.values.is_empty() => {
                out.push_str(&format!("\nAnswer: {} series returned\n", self.values.len()))
            }
            _ => out.push_str("\nAnswer: no data\n"),
        }
        match self.degradation {
            DegradationLevel::Full => {}
            DegradationLevel::Repaired => {
                out.push_str("(the initial query failed and was repaired automatically)\n")
            }
            DegradationLevel::Degraded => out.push_str(
                "(degraded answer: showing the top matching metric directly; \
                 consider requesting expert help)\n",
            ),
        }
        if self.data_completeness == DataCompleteness::Partial {
            out.push_str(
                "(partial data: the store degraded while answering; \
                 values may under-count)\n",
            );
        }
        if self.dashboard.is_some() {
            out.push_str("\n[dashboard generated — render with dio-dashboard]\n");
        }
        out.push_str(&format!(
            "\n(inference: {} prompt + {} completion tokens, {:.2}¢)\n",
            self.usage.prompt_tokens, self.usage.completion_tokens, self.cost_cents
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response() -> CopilotResponse {
        CopilotResponse {
            question: "How many PDU sessions are active?".into(),
            relevant_metrics: vec![RelevantMetric {
                name: "smfpdu_active_pdu_sessions_current".into(),
                description: "The current number of active PDU sessions at SMF.".into(),
            }],
            query: "sum(smfpdu_active_pdu_sessions_current)".into(),
            explanation: "This computes the sum of the current value of `smfpdu_active_pdu_sessions_current` across all series.".into(),
            numeric_answer: Some(1234.0),
            values: vec![1234.0],
            error: None,
            degradation: DegradationLevel::Full,
            data_completeness: DataCompleteness::Complete,
            dashboard: None,
            usage: TokenUsage {
                prompt_tokens: 900,
                completion_tokens: 30,
            },
            cost_cents: 2.9,
            trace: PipelineTrace::default(),
        }
    }

    #[test]
    fn render_includes_all_parts() {
        let r = response().render();
        assert!(r.contains("Relevant metrics"));
        assert!(r.contains("smfpdu_active_pdu_sessions_current"));
        assert!(r.contains("sum(smfpdu_active_pdu_sessions_current)"));
        assert!(r.contains("Answer: 1234.0000"));
        assert!(r.contains("2.90¢"));
    }

    #[test]
    fn render_handles_errors_and_empties() {
        let mut r = response();
        r.numeric_answer = None;
        r.error = Some(CopilotError::PolicyRefused {
            rule: "range too wide".into(),
        });
        r.relevant_metrics.clear();
        let text = r.render();
        assert!(text.contains("unavailable (policy refusal: range too wide)"));
        assert!(text.contains("none found"));
    }

    #[test]
    fn render_notes_partial_data() {
        let mut r = response();
        assert!(!r.render().contains("partial data"));
        r.data_completeness = DataCompleteness::Partial;
        assert!(r.render().contains("partial data"));
    }

    #[test]
    fn render_labels_degraded_answers() {
        let mut r = response();
        r.degradation = DegradationLevel::Degraded;
        assert!(r.render().contains("degraded answer"));
        r.degradation = DegradationLevel::Repaired;
        assert!(r.render().contains("repaired automatically"));
    }
}

//! The end-to-end DIO copilot pipeline.

use crate::answer::{CopilotResponse, RelevantMetric};
use crate::config::CopilotConfig;
use crate::error::CopilotError;
use crate::extractor::ContextExtractor;
use crate::obs::{note_breaker_transition, register_zero_instruments, time_stage};
use crate::recovery::{CircuitBreaker, DegradationLevel, RecoveryPolicy, RecoveryStats};
use crate::trace::PipelineTrace;
use dio_catalog::DomainDb;
use dio_dashboard::{generate_dashboard, PanelSpecHint, TimeRange};
use dio_feedback::{Contribution, IssueId, IssueTracker, TrackerError};
use dio_llm::{
    CompletionRequest, ContextItem, CostMeter, FewShotExample, FoundationModel, ModelProfile,
    ObservedModel, PromptBuilder, SimulatedModel, TaskKind, TokenUsage,
};
use dio_faults::{DataFaultKind, Injector};
use dio_obs::{Buckets, Budget, ObsHub, SpanContext, TraceStatus};
use dio_sandbox::{DataCompleteness, Sandbox, SafetyPolicy};
use dio_tsdb::MetricStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Builder for [`DioCopilot`].
pub struct CopilotBuilder {
    db: DomainDb,
    store: MetricStore,
    config: CopilotConfig,
    model: Option<Box<dyn FoundationModel>>,
    exemplars: Vec<FewShotExample>,
    policy: SafetyPolicy,
    obs: ObsHub,
}

impl CopilotBuilder {
    /// Start from a domain DB and a metrics store.
    pub fn new(db: DomainDb, store: MetricStore) -> Self {
        CopilotBuilder {
            db,
            store,
            config: CopilotConfig::default(),
            model: None,
            exemplars: Vec::new(),
            policy: SafetyPolicy::default(),
            obs: ObsHub::new(),
        }
    }

    /// Override the configuration.
    pub fn config(mut self, config: CopilotConfig) -> Self {
        self.config = config;
        self
    }

    /// Use a specific foundation model (defaults to the GPT-4
    /// simulation).
    pub fn model(mut self, model: Box<dyn FoundationModel>) -> Self {
        self.model = Some(model);
        self
    }

    /// Provide few-shot exemplars (the paper uses 20 expert tuples).
    pub fn exemplars(mut self, exemplars: Vec<FewShotExample>) -> Self {
        self.exemplars = exemplars;
        self
    }

    /// Override the sandbox policy.
    pub fn policy(mut self, policy: SafetyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Share an observability hub (registry + tracer) with the copilot.
    /// Defaults to a fresh hub; pass one in to scrape the copilot's
    /// metrics from outside — e.g. for the self-observation loop.
    pub fn obs(mut self, obs: ObsHub) -> Self {
        self.obs = obs;
        self
    }

    /// Build the copilot (runs the offline embedding pass).
    pub fn build(self) -> DioCopilot {
        let extractor = ContextExtractor::build_with_mode(
            &self.db,
            self.config.domain_embedder,
            self.config.retrieval,
        );
        register_zero_instruments(self.obs.registry());
        let inner = self
            .model
            .unwrap_or_else(|| Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())));
        let model: Box<dyn FoundationModel> =
            Box::new(ObservedModel::new(inner, self.obs.registry().clone()));
        let mut sandbox = Sandbox::new(self.store, self.policy);
        sandbox.attach_obs(self.obs.registry().clone());
        // Data-plane chaos: derive one independent, reproducible fault
        // schedule per storage layer from the shared config.
        let retrieval_chaos = self.config.data_chaos.as_ref().map(|c| {
            sandbox.attach_data_chaos(Injector::derived(c, "tsdb"));
            Injector::derived(c, "vecstore")
        });
        let breaker = CircuitBreaker::new(&self.config.recovery);
        DioCopilot {
            extractor: Arc::new(extractor),
            sandbox,
            retrieval_chaos,
            db: Arc::new(self.db),
            config: self.config,
            model,
            exemplars: Arc::new(self.exemplars),
            tracker: IssueTracker::new(),
            meter: CostMeter::new(),
            breaker,
            generation: Arc::new(AtomicU64::new(0)),
            obs: self.obs,
        }
    }
}

/// The assembled copilot.
///
/// Shared, read-mostly state — the domain DB, the embedded retrieval
/// index, the few-shot pool, and (inside the sandbox engine) the metric
/// store — rides behind `Arc`s so [`DioCopilot::fork_with_model`] can
/// stamp out per-worker pipeline instances without re-running the
/// offline embedding pass or copying the tsdb. Per-request/per-worker
/// mutable state (sandbox audit log, cost meter, circuit breaker, issue
/// tracker, chaos schedules) stays owned. The feedback loop mutates the
/// shared state copy-on-write and bumps a shared knowledge-generation
/// counter that serving-layer caches use for invalidation.
pub struct DioCopilot {
    config: CopilotConfig,
    db: Arc<DomainDb>,
    extractor: Arc<ContextExtractor>,
    model: Box<dyn FoundationModel>,
    sandbox: Sandbox,
    retrieval_chaos: Option<Injector>,
    exemplars: Arc<Vec<FewShotExample>>,
    tracker: IssueTracker,
    meter: CostMeter,
    breaker: CircuitBreaker,
    /// Monotone count of expert-knowledge updates (shared across forks).
    generation: Arc<AtomicU64>,
    obs: ObsHub,
}

/// Outcome of the execute-with-repair stage.
struct ExecResolution {
    /// The query that was last attempted.
    query: String,
    /// Canonical form, when a query actually executed.
    canonical: Option<String>,
    numeric_answer: Option<f64>,
    values: Vec<f64>,
    error: Option<CopilotError>,
    degradation: DegradationLevel,
    completeness: DataCompleteness,
}

impl ExecResolution {
    /// The resolution of an ask whose budget lapsed mid-execution: no
    /// answer, no fallback, the deadline error carried as-is.
    fn deadline(query: String, error: CopilotError) -> Self {
        ExecResolution {
            query,
            canonical: None,
            numeric_answer: None,
            values: Vec::new(),
            error: Some(error),
            degradation: DegradationLevel::Full,
            completeness: DataCompleteness::Partial,
        }
    }
}

impl DioCopilot {
    /// The domain database.
    pub fn db(&self) -> &DomainDb {
        &self.db
    }

    /// The issue tracker.
    pub fn tracker(&self) -> &IssueTracker {
        &self.tracker
    }

    /// Current few-shot pool.
    pub fn exemplars(&self) -> &[FewShotExample] {
        &self.exemplars
    }

    /// Accumulated cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// The query engine (for rendering dashboards etc.).
    pub fn engine(&self) -> &dio_promql::Engine {
        self.sandbox.engine()
    }

    /// The context extractor.
    pub fn extractor(&self) -> &ContextExtractor {
        &self.extractor
    }

    /// The model in use.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// The model-call circuit breaker (state persists across asks).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The observability hub: metrics registry + span tracer. Scrape
    /// `obs().registry()` with [`dio_obs::ObsScraper`] to feed the
    /// copilot's own telemetry back into a queryable store.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Route the sandbox's store lookups through a
    /// [`dio_sandbox::StoreResolver`] — the hook a sharded data plane
    /// (cluster router) uses to serve this pipeline from many shard
    /// stores instead of the resident one. Forks inherit the resolver,
    /// so a serving pool spawned from this copilot is cluster-backed
    /// end to end.
    pub fn attach_store_resolver(
        &mut self,
        resolver: Arc<dyn dio_sandbox::StoreResolver>,
    ) {
        self.sandbox.attach_store_resolver(resolver);
    }

    /// Swap the foundation model without rebuilding the retrieval
    /// index — e.g. to change a fault schedule between experiment runs.
    /// The new model is wrapped for observation like the original.
    pub fn replace_model(&mut self, model: Box<dyn FoundationModel>) {
        self.model = Box::new(ObservedModel::new(model, self.obs.registry().clone()));
    }

    /// Install a new recovery policy and reset the circuit breaker to
    /// its closed state.
    pub fn set_recovery(&mut self, policy: RecoveryPolicy) {
        self.breaker = CircuitBreaker::new(&policy);
        self.config.recovery = policy;
    }

    /// The retrieval top-k currently in effect.
    pub fn top_k(&self) -> usize {
        self.config.top_k
    }

    /// Override the retrieval top-k. The serving tier's brownout
    /// ladder shrinks it under load and restores it as pressure
    /// clears; a floor of 1 keeps retrieval (and with it the degraded
    /// fallback) functional.
    pub fn set_top_k(&mut self, k: usize) {
        self.config.top_k = k.max(1);
    }

    /// The repair-round cap currently in effect.
    pub fn max_repair_rounds(&self) -> usize {
        self.config.recovery.max_repair_rounds
    }

    /// Override the repair-round cap without touching the circuit
    /// breaker (unlike [`DioCopilot::set_recovery`], which resets it) —
    /// the brownout ladder flips this per request.
    pub fn set_max_repair_rounds(&mut self, rounds: usize) {
        self.config.recovery.max_repair_rounds = rounds;
    }

    /// Number of expert-knowledge updates applied so far (via
    /// [`DioCopilot::resolve_issue`]) across this copilot and every
    /// fork sharing its state. Serving-layer answer caches key entries
    /// by this generation and treat a mismatch as an invalidation.
    pub fn knowledge_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The shared generation counter handle (for cache invalidation
    /// without holding a copilot reference).
    pub fn generation_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.generation)
    }

    /// Stamp out an independent pipeline instance sharing this
    /// copilot's read-only state — domain DB, embedded retrieval index,
    /// few-shot pool, and the resident metric store — by `Arc` handle,
    /// not by copy. The fork gets its own model (wrapped for
    /// observation like the original), sandbox (fresh audit log over
    /// the shared store), circuit breaker, cost meter, and issue
    /// tracker, so forks never contend on mutable state: this is the
    /// worker-pool constructor for the serving layer. Chaos schedules
    /// are not inherited.
    pub fn fork_with_model(&self, model: Box<dyn FoundationModel>) -> DioCopilot {
        let model: Box<dyn FoundationModel> =
            Box::new(ObservedModel::new(model, self.obs.registry().clone()));
        let mut sandbox = Sandbox::new_shared(
            self.sandbox.store_arc(),
            self.sandbox.policy().clone(),
        );
        sandbox.attach_obs(self.obs.registry().clone());
        if let Some(resolver) = self.sandbox.store_resolver() {
            sandbox.attach_store_resolver(resolver);
        }
        DioCopilot {
            config: self.config.clone(),
            db: Arc::clone(&self.db),
            extractor: Arc::clone(&self.extractor),
            model,
            sandbox,
            retrieval_chaos: None,
            exemplars: Arc::clone(&self.exemplars),
            tracker: IssueTracker::new(),
            meter: CostMeter::new(),
            breaker: CircuitBreaker::new(&self.config.recovery),
            generation: Arc::clone(&self.generation),
            obs: self.obs.clone(),
        }
    }

    /// Answer a question, evaluating data at timestamp `ts`.
    ///
    /// The model and sandbox are both treated as fallible: transient
    /// model failures are retried (bounded, recorded backoff), sandbox
    /// rejections trigger repair rounds under
    /// [`TaskKind::RepairPromql`], and when recovery is exhausted — or
    /// the circuit breaker is open — the copilot degrades to a direct
    /// lookup of the top retrieved metric rather than returning
    /// nothing. See [`RecoveryPolicy`].
    pub fn ask(&mut self, question: &str, ts: i64) -> CopilotResponse {
        self.ask_prepared(question, ts, None)
    }

    /// [`DioCopilot::ask`] with an optional precomputed question
    /// embedding. The serving layer's embedding cache passes vectors
    /// for repeated (normalized-equal) questions here so the retrieval
    /// stage skips re-embedding; `None` embeds as usual. The vector
    /// must come from this pipeline's extractor
    /// ([`ContextExtractor::embed_question`]).
    pub fn ask_prepared(
        &mut self,
        question: &str,
        ts: i64,
        qvec: Option<&dio_embed::Vector>,
    ) -> CopilotResponse {
        self.ask_in_context(question, ts, qvec, None)
    }

    /// [`DioCopilot::ask_prepared`] running inside a caller-owned
    /// trace. With `parent: Some(ctx)` every pipeline stage span
    /// parents under `ctx` and the caller finishes the trace (the
    /// serving tier owns the request trace: queue wait, cache probes,
    /// and this ask all hang off one root). With `None` the copilot
    /// opens and finishes its own trace, stamping its status from the
    /// outcome (degraded → `Degraded`, error → `Error`).
    pub fn ask_in_context(
        &mut self,
        question: &str,
        ts: i64,
        qvec: Option<&dio_embed::Vector>,
        parent: Option<&SpanContext>,
    ) -> CopilotResponse {
        self.ask_budgeted(question, ts, qvec, parent, &Budget::unbounded())
    }

    /// Answer without spending a single model call: the ask runs with
    /// the circuit breaker latched open
    /// ([`CircuitBreaker::latched_open`]), so every stage that would
    /// consult the model takes its existing breaker-open path and
    /// generation lands on the degraded direct-lookup fallback
    /// (labelled [`DegradationLevel::Degraded`]). The real breaker —
    /// including any in-flight cooldown — is restored afterwards. This
    /// is the serving tier's brownout hook for its
    /// answer-cache-or-degraded level.
    pub fn ask_degraded(
        &mut self,
        question: &str,
        ts: i64,
        qvec: Option<&dio_embed::Vector>,
        parent: Option<&SpanContext>,
        budget: &Budget,
    ) -> CopilotResponse {
        let saved = std::mem::replace(&mut self.breaker, CircuitBreaker::latched_open());
        let response = self.ask_budgeted(question, ts, qvec, parent, budget);
        self.breaker = saved;
        response
    }

    /// [`DioCopilot::ask_in_context`] under an explicit request
    /// [`Budget`]. The budget is checked cooperatively between pipeline
    /// stages, before every model call, and before every retry or
    /// repair round; each model call carries a per-call timeout derived
    /// from the remaining budget, and recorded backoff intervals are
    /// capped by it. When the budget lapses (deadline passed or the
    /// token cancelled) the ask aborts with
    /// [`CopilotError::DeadlineExceeded`] — no degraded fallback, no
    /// further model calls — and a standalone trace closes with
    /// [`TraceStatus::DeadlineExceeded`] so the flight recorder retains
    /// it under its own outcome class. An unbounded budget reproduces
    /// [`DioCopilot::ask_in_context`] exactly.
    pub fn ask_budgeted(
        &mut self,
        question: &str,
        ts: i64,
        qvec: Option<&dio_embed::Vector>,
        parent: Option<&SpanContext>,
        budget: &Budget,
    ) -> CopilotResponse {
        let obs = self.obs.clone();
        let owns_trace = parent.is_none();
        let ctx = match parent {
            Some(p) => *p,
            None => obs.tracer().begin_trace(question),
        };
        let ask_start = Instant::now();
        obs.registry()
            .counter(crate::obs::ASKS_NAME, crate::obs::ASKS_HELP)
            .inc();
        let mut usage = TokenUsage::default();
        let mut stats = RecoveryStats::default();
        let trips_before = self.breaker.trips();

        // Dead on arrival: a request whose budget already lapsed (queue
        // wait ate it, or the caller cancelled) does no work at all.
        if budget.expired() {
            return self.deadline_abort(
                question,
                String::new(),
                "retrieve",
                usage,
                stats,
                trips_before,
                &obs,
                &ctx,
                owns_trace,
                ask_start,
            );
        }

        // Stage 0 (chaos runs only): the retrieval index is a data
        // plane too. A transient read fault is retried in place (the
        // schedule decides again); a corrupt read quarantines the
        // index tier and falls back HNSW → IVF → flat; a latency spike
        // is recorded, never slept.
        if let Some(mut injector) = self.retrieval_chaos.take() {
            let mut retries = 0usize;
            while let Some(fault) = injector.decide() {
                stats.data_faults += 1;
                obs.registry()
                    .counter_with(
                        crate::obs::DATA_FAULTS_NAME,
                        crate::obs::DATA_FAULTS_HELP,
                        &[("layer", "vecstore"), ("kind", fault.kind.slug())],
                    )
                    .inc();
                match fault.kind {
                    DataFaultKind::TransientIo => {
                        retries += 1;
                        if retries > self.config.recovery.max_retries {
                            break;
                        }
                    }
                    DataFaultKind::TruncatedRead | DataFaultKind::BitFlip => {
                        // Copy-on-write: a fork quarantining its index
                        // splits off its own extractor; unshared
                        // extractors demote in place.
                        if let Some((from, to)) = Arc::make_mut(&mut self.extractor).demote() {
                            stats.index_demotions += 1;
                            obs.registry()
                                .counter_with(
                                    crate::obs::DEMOTIONS_NAME,
                                    crate::obs::DEMOTIONS_HELP,
                                    &[("to", to)],
                                )
                                .inc();
                            obs.tracer().event(
                                &ctx,
                                "index_demotion",
                                &[("from", from), ("to", to)],
                            );
                        }
                        break;
                    }
                    DataFaultKind::LatencySpike => {
                        injector.note_latency_spike();
                        break;
                    }
                }
            }
            self.retrieval_chaos = Some(injector);
        }

        // Stage 1: context extraction (offline index, online search).
        let (hits, retrieval) = time_stage(&obs, &ctx, "retrieve", |_| {
            self.extractor
                .retrieve_with_stats_vec(question, qvec, self.config.top_k)
        });
        obs.registry()
            .counter(crate::obs::CANDIDATES_NAME, crate::obs::CANDIDATES_HELP)
            .add(retrieval.candidates_scanned as f64);
        {
            let sim = obs.registry().histogram(
                crate::obs::SIMILARITY_NAME,
                crate::obs::SIMILARITY_HELP,
                &Buckets::unit_fractions(),
            );
            for h in &hits {
                sim.observe(f64::from(h.score));
            }
        }

        let context_items: Vec<ContextItem> = hits
            .iter()
            .map(|h| ContextItem {
                name: h.sample.name.clone(),
                text: first_sentence(&h.sample.text),
                relevance: h.score,
            })
            .collect();

        // Budget checkpoint between retrieval and generation: the model
        // stages are the expensive ones, so lapse here rather than
        // start a call that cannot finish in time.
        if budget.expired() {
            return self.deadline_abort(
                question,
                String::new(),
                "generate",
                usage,
                stats,
                trips_before,
                &obs,
                &ctx,
                owns_trace,
                ask_start,
            );
        }

        // Stage 2: relevant-metric identification. By default this is
        // folded into the generation prompt (one inference, §4.2.5 cost
        // envelope); `two_stage: true` issues the explicit
        // identify-then-generate calls.
        let window = self.model.context_window();
        // Reserve completion room, but never starve the prompt on a
        // small-window model (text-curie-001 still needs its truncated
        // context to see *something*).
        let reserved = self.config.max_output_tokens.min(window / 4);
        let identified: Vec<String> = if self.config.two_stage {
            let identify_prompt = PromptBuilder::new()
                .system(SYSTEM_PROMPT)
                .context(context_items.clone())
                .question(question)
                .task(TaskKind::IdentifyMetrics)
                .build(window, reserved);
            let request = CompletionRequest {
                prompt: identify_prompt,
                max_tokens: self.config.max_output_tokens,
                temperature: self.config.temperature,
                timeout_ms: budget_timeout_ms(budget),
            };
            time_stage(&obs, &ctx, "identify", |_| {
                // Identification is best-effort: on failure the merged
                // full-context prompt covers for the missing selection.
                match Self::call_model(
                    self.model.as_ref(),
                    &mut self.breaker,
                    &self.config.recovery,
                    &request,
                    budget,
                    &mut usage,
                    &mut stats,
                    &obs,
                    &ctx,
                ) {
                    Ok(text) => text
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty() && s != "none")
                        .collect(),
                    Err(_) => Vec::new(),
                }
            })
        } else {
            Vec::new()
        };

        // Stage 3: few-shot code generation over the selected metrics
        // (two-stage) or the full retrieved context (merged).
        let selected_items: Vec<ContextItem> = context_items
            .iter()
            .filter(|c| identified.contains(&c.name))
            .cloned()
            .collect();
        let gen_context = if selected_items.is_empty() {
            // Merged mode, or an empty two-stage selection: use the
            // full retrieved context.
            context_items.clone()
        } else {
            selected_items
        };
        let mut gen_builder = PromptBuilder::new()
            .system(SYSTEM_PROMPT)
            .context(gen_context.clone())
            .examples(
                self.exemplars
                    .iter()
                    .take(self.config.max_exemplars)
                    .cloned(),
            )
            .question(question)
            .task(TaskKind::GeneratePromql);
        for f in self.db.functions().take(4) {
            gen_builder = gen_builder.function(&f.name, first_sentence(&f.description));
        }
        let gen_prompt = gen_builder.build(window, reserved);
        let gen_request = CompletionRequest {
            prompt: gen_prompt,
            max_tokens: self.config.max_output_tokens,
            temperature: self.config.temperature,
            timeout_ms: budget_timeout_ms(budget),
        };
        let generated: Result<String, CopilotError> = time_stage(&obs, &ctx, "generate", |_| {
            Self::call_model(
                self.model.as_ref(),
                &mut self.breaker,
                &self.config.recovery,
                &gen_request,
                budget,
                &mut usage,
                &mut stats,
                &obs,
                &ctx,
            )
            .map(|t| t.trim().to_string())
        });

        // Stage 4: sandboxed execution with self-repair. A model error
        // is NOT executed as a query (it used to be pasted in as
        // `# model error: …`); it goes straight to the recovery path.
        // Each sandbox execution and repair re-generation records its
        // own span, so repair rounds are visible per-invocation.
        let resolution = self.execute_with_repair(
            generated,
            question,
            &gen_context,
            &hits,
            ts,
            window,
            reserved,
            budget,
            &mut usage,
            &mut stats,
            &obs,
            &ctx,
        );
        let ExecResolution {
            query,
            canonical,
            numeric_answer,
            values,
            error,
            degradation,
            completeness,
        } = resolution;
        if let Some(CopilotError::DeadlineExceeded { stage }) = &error {
            let stage = stage.clone();
            return self.deadline_abort(
                question,
                query,
                &stage,
                usage,
                stats,
                trips_before,
                &obs,
                &ctx,
                owns_trace,
                ask_start,
            );
        }
        stats.degraded = degradation == DegradationLevel::Degraded;
        obs.registry()
            .counter_with(
                crate::obs::COMPLETENESS_NAME,
                crate::obs::COMPLETENESS_HELP,
                &[("level", completeness.slug())],
            )
            .inc();

        // Relevant metrics for the rendered response: the identified
        // set, falling back to whatever the query references.
        let mut shown = identified.clone();
        if shown.is_empty() {
            if let Ok(expr) = dio_promql::parse(&query) {
                shown = expr.metric_names();
            }
        }
        let relevant_metrics: Vec<RelevantMetric> = shown
            .iter()
            .filter_map(|n| {
                self.db.metric(n).map(|m| RelevantMetric {
                    name: m.name.clone(),
                    description: first_sentence(&m.description),
                })
            })
            .collect();

        // Stage 5: dashboard generation.
        let dashboard = if self.config.generate_dashboards {
            let hints: Vec<PanelSpecHint> = shown
                .iter()
                .filter_map(|n| self.db.metric(n))
                .map(|m| PanelSpecHint {
                    name: m.name.clone(),
                    title: format!("{} ({})", m.procedure_display, m.name),
                    is_counter: m.counter_type.is_counter(),
                })
                .collect();
            let range = TimeRange::last(ts, self.config.dashboard_span_ms, 60);
            Some(time_stage(&obs, &ctx, "dashboard", |_| {
                generate_dashboard(question, &hints, canonical.as_deref(), range)
            }))
        } else {
            None
        };

        let cost_cents = self.model.pricing().cost_cents(usage);
        self.meter.record(usage, self.model.pricing());

        stats.breaker_trips = self.breaker.trips().saturating_sub(trips_before);
        let degradation_slug = degradation.to_string();
        obs.registry()
            .counter_with(
                crate::obs::ANSWERS_NAME,
                crate::obs::ANSWERS_HELP,
                &[("degradation", &degradation_slug)],
            )
            .inc();
        obs.tracer()
            .event(&ctx, "answered", &[("degradation", &degradation_slug)]);
        obs.registry()
            .histogram(
                crate::obs::ASK_DURATION_NAME,
                crate::obs::ASK_DURATION_HELP,
                &Buckets::latency_micros(),
            )
            .observe(dio_obs::micros_u64(ask_start.elapsed()) as f64);
        let trace = PipelineTrace::from_spans(&obs.tracer().spans(ctx.trace_id), stats);
        if owns_trace {
            // Standalone ask: close the trace we opened. Under a
            // serving tier the caller owns the root and stamps the
            // status after its own bookkeeping (cache fill, reply).
            let status = if degradation == DegradationLevel::Degraded {
                TraceStatus::Degraded
            } else if error.is_some() {
                TraceStatus::Error
            } else {
                TraceStatus::Ok
            };
            obs.tracer().finish_trace(&ctx, status);
        }

        let final_query = canonical.unwrap_or(query);
        CopilotResponse {
            question: question.to_string(),
            relevant_metrics,
            explanation: dio_promql::explain_query(&final_query),
            query: final_query,
            numeric_answer,
            values,
            error,
            degradation,
            data_completeness: completeness,
            dashboard,
            usage,
            cost_cents,
            trace,
        }
    }

    /// Place one model call under the recovery policy: the circuit
    /// breaker gates the call, transient failures are retried up to the
    /// policy bound, and the deterministic backoff schedule is recorded
    /// (never slept). The request `budget` gates every attempt — a
    /// lapsed budget aborts before the model is touched — and caps each
    /// recorded backoff interval by the time actually left. Every
    /// admitted call stamps a `model_call` event carrying its
    /// trace-clock offset, so a post-mortem can prove no call started
    /// after the deadline.
    #[allow(clippy::too_many_arguments)]
    fn call_model(
        model: &dyn FoundationModel,
        breaker: &mut CircuitBreaker,
        policy: &RecoveryPolicy,
        request: &CompletionRequest,
        budget: &Budget,
        usage: &mut TokenUsage,
        stats: &mut RecoveryStats,
        obs: &ObsHub,
        ctx: &SpanContext,
    ) -> Result<String, CopilotError> {
        let mut retry = 0usize;
        loop {
            if budget.expired() {
                return Err(CopilotError::DeadlineExceeded {
                    stage: "model".into(),
                });
            }
            let gate = breaker.state();
            let admitted = breaker.allow();
            note_breaker_transition(obs, ctx, gate, breaker.state());
            if !admitted {
                return Err(CopilotError::ModelUnavailable {
                    message: "circuit breaker open; model call skipped".into(),
                    attempts: stats.attempts,
                });
            }
            stats.attempts += 1;
            let at = obs.tracer().clock_micros(ctx).to_string();
            obs.tracer().event(ctx, "model_call", &[("at_micros", &at)]);
            match model.complete(request) {
                Ok(c) => {
                    usage.add(c.usage);
                    let before = breaker.state();
                    breaker.record_success();
                    note_breaker_transition(obs, ctx, before, breaker.state());
                    return Ok(c.text);
                }
                Err(e) => {
                    let before = breaker.state();
                    breaker.record_failure();
                    note_breaker_transition(obs, ctx, before, breaker.state());
                    if policy.enabled && e.is_transient() && retry < policy.max_retries {
                        stats.retries += 1;
                        // Backoff is recorded, never slept; cap the
                        // recorded interval by the budget actually
                        // left so the schedule stays honest about what
                        // a real sleep could have been.
                        let backoff = budget
                            .cap(std::time::Duration::from_millis(policy.backoff_ms(retry)))
                            .as_millis() as u64;
                        stats.backoff_schedule_ms.push(backoff);
                        obs.registry()
                            .counter(crate::obs::RETRIES_NAME, crate::obs::RETRIES_HELP)
                            .inc();
                        obs.registry()
                            .counter(crate::obs::BACKOFF_NAME, crate::obs::BACKOFF_HELP)
                            .add(backoff as f64);
                        obs.tracer().event(
                            ctx,
                            "model_retry",
                            &[("backoff_ms", &backoff.to_string())],
                        );
                        retry += 1;
                        continue;
                    }
                    return Err(CopilotError::from_model(&e, stats.attempts));
                }
            }
        }
    }

    /// Wind down an ask whose budget lapsed: count it (labelled by the
    /// stage that observed the lapse), stamp a `deadline_exceeded`
    /// event carrying the trace-clock offset, record the ask duration
    /// and any cost already incurred, and — for standalone asks — close
    /// the trace as [`TraceStatus::DeadlineExceeded`] so the flight
    /// recorder retains it under its own outcome class. No answer
    /// counter and no `answered` event: a deadline abort is not an
    /// answer.
    #[allow(clippy::too_many_arguments)]
    fn deadline_abort(
        &mut self,
        question: &str,
        query: String,
        stage: &str,
        usage: TokenUsage,
        mut stats: RecoveryStats,
        trips_before: usize,
        obs: &ObsHub,
        ctx: &SpanContext,
        owns_trace: bool,
        ask_start: Instant,
    ) -> CopilotResponse {
        obs.registry()
            .counter_with(
                crate::obs::DEADLINE_NAME,
                crate::obs::DEADLINE_HELP,
                &[("stage", stage)],
            )
            .inc();
        let at = obs.tracer().clock_micros(ctx).to_string();
        obs.tracer().event(
            ctx,
            "deadline_exceeded",
            &[("stage", stage), ("at_micros", &at)],
        );
        stats.breaker_trips = self.breaker.trips().saturating_sub(trips_before);
        obs.registry()
            .histogram(
                crate::obs::ASK_DURATION_NAME,
                crate::obs::ASK_DURATION_HELP,
                &Buckets::latency_micros(),
            )
            .observe(dio_obs::micros_u64(ask_start.elapsed()) as f64);
        let cost_cents = self.model.pricing().cost_cents(usage);
        self.meter.record(usage, self.model.pricing());
        let trace = PipelineTrace::from_spans(&obs.tracer().spans(ctx.trace_id), stats);
        if owns_trace {
            obs.tracer().finish_trace(ctx, TraceStatus::DeadlineExceeded);
        }
        CopilotResponse {
            question: question.to_string(),
            relevant_metrics: Vec::new(),
            explanation: String::new(),
            query,
            numeric_answer: None,
            values: Vec::new(),
            error: Some(CopilotError::DeadlineExceeded {
                stage: stage.to_string(),
            }),
            degradation: DegradationLevel::Full,
            data_completeness: DataCompleteness::Partial,
            dashboard: None,
            usage,
            cost_cents,
            trace,
        }
    }

    /// Execute the generated query, running bounded repair rounds on
    /// sandbox rejection and falling back to a degraded direct metric
    /// lookup when recovery is exhausted (or generation itself failed).
    #[allow(clippy::too_many_arguments)]
    fn execute_with_repair(
        &mut self,
        generated: Result<String, CopilotError>,
        question: &str,
        gen_context: &[ContextItem],
        hits: &[crate::extractor::Retrieved],
        ts: i64,
        window: usize,
        reserved: usize,
        budget: &Budget,
        usage: &mut TokenUsage,
        stats: &mut RecoveryStats,
        obs: &ObsHub,
        ctx: &SpanContext,
    ) -> ExecResolution {
        let policy = self.config.recovery.clone();
        let mut query = match generated {
            Ok(q) => q,
            // A lapsed budget is not a failure to recover from: running
            // the degraded fallback would be *more* work past the
            // deadline. Surface it untouched.
            Err(e @ CopilotError::DeadlineExceeded { .. }) => {
                return ExecResolution::deadline(String::new(), e);
            }
            Err(e) => {
                // Satellite of the recovery design: a model failure used
                // to be executed as a fake `# model error: …` query.
                // Now it skips execution and degrades.
                return self.degraded_fallback(String::new(), e, hits, ts, stats, obs, ctx);
            }
        };

        let mut rounds = 0usize;
        let mut storage_retries = 0usize;
        let error = loop {
            if budget.expired() {
                return ExecResolution::deadline(
                    query,
                    CopilotError::DeadlineExceeded {
                        stage: "execute".into(),
                    },
                );
            }
            // The execute span's own context rides into the sandbox so
            // the store resolver can hang one child span per shard it
            // touches under this invocation.
            let executed = time_stage(obs, ctx, "execute", |sctx| {
                self.sandbox
                    .execute_traced(&query, ts, Some((obs.tracer(), sctx)))
            });
            match executed {
                Ok(out) => {
                    return ExecResolution {
                        query,
                        canonical: Some(out.canonical_query),
                        numeric_answer: out.value.as_scalar_like(),
                        values: out.value.numeric_values(),
                        error: None,
                        degradation: if rounds == 0 {
                            DegradationLevel::Full
                        } else {
                            DegradationLevel::Repaired
                        },
                        completeness: out.completeness,
                    };
                }
                Err(sandbox_err) => {
                    // A storage fault is the store's failure, not the
                    // query's: retry the same query unchanged (bounded)
                    // instead of burning a model repair round on it.
                    if sandbox_err.is_storage_fault() {
                        stats.data_faults += 1;
                        obs.registry()
                            .counter_with(
                                crate::obs::DATA_FAULTS_NAME,
                                crate::obs::DATA_FAULTS_HELP,
                                &[("layer", "tsdb"), ("kind", "transient_io")],
                            )
                            .inc();
                        obs.tracer().event(
                            ctx,
                            "storage_retry",
                            &[("error", &sandbox_err.to_string())],
                        );
                        if policy.enabled && storage_retries < policy.max_retries {
                            storage_retries += 1;
                            continue;
                        }
                        break CopilotError::from_sandbox(&sandbox_err);
                    }
                    let classified = CopilotError::from_sandbox(&sandbox_err);
                    if !policy.enabled || rounds >= policy.max_repair_rounds {
                        break classified;
                    }
                    rounds += 1;
                    stats.repairs += 1;
                    obs.registry()
                        .counter(crate::obs::REPAIRS_NAME, crate::obs::REPAIRS_HELP)
                        .inc();
                    obs.tracer().event(
                        ctx,
                        "repair_round",
                        &[("round", &rounds.to_string()), ("error", &sandbox_err.to_string())],
                    );
                    // Re-prompt with the failed query and the sandbox's
                    // structured hint riding in the system section; the
                    // question/context/examples stay identical.
                    let hint = sandbox_err.repair_hint(&query);
                    let mut repair_builder = PromptBuilder::new()
                        .system(format!(
                            "{SYSTEM_PROMPT}\nThe previous query failed in the sandbox.\n\
                             Failed query: {query}\nSandbox: {sandbox_err}\nFix: {hint}"
                        ))
                        .context(gen_context.to_vec())
                        .examples(
                            self.exemplars
                                .iter()
                                .take(self.config.max_exemplars)
                                .cloned(),
                        )
                        .question(question)
                        .task(TaskKind::RepairPromql);
                    for f in self.db.functions().take(4) {
                        repair_builder =
                            repair_builder.function(&f.name, first_sentence(&f.description));
                    }
                    let repair_request = CompletionRequest {
                        prompt: repair_builder.build(window, reserved),
                        max_tokens: self.config.max_output_tokens,
                        temperature: self.config.temperature,
                        timeout_ms: budget_timeout_ms(budget),
                    };
                    let repaired = time_stage(obs, ctx, "generate", |_| {
                        Self::call_model(
                            self.model.as_ref(),
                            &mut self.breaker,
                            &policy,
                            &repair_request,
                            budget,
                            usage,
                            stats,
                            obs,
                            ctx,
                        )
                    });
                    match repaired {
                        Ok(fixed) => query = fixed.trim().to_string(),
                        Err(model_err) => break model_err,
                    }
                }
            }
        };

        if matches!(error, CopilotError::DeadlineExceeded { .. }) {
            // Same rule as above: the deadline forbids the fallback.
            return ExecResolution::deadline(query, error);
        }
        if policy.enabled {
            self.degraded_fallback(query, error, hits, ts, stats, obs, ctx)
        } else {
            // Ablation baseline: surface the failure as-is.
            ExecResolution {
                query,
                canonical: None,
                numeric_answer: None,
                values: Vec::new(),
                error: Some(error),
                degradation: DegradationLevel::Full,
                completeness: DataCompleteness::Complete,
            }
        }
    }

    /// The last line of defence: answer with an instant-vector lookup
    /// of the best retrieved metric that actually executes, labelled
    /// [`DegradationLevel::Degraded`] and carrying the error that
    /// forced the fallback.
    #[allow(clippy::too_many_arguments)]
    fn degraded_fallback(
        &mut self,
        failed_query: String,
        error: CopilotError,
        hits: &[crate::extractor::Retrieved],
        ts: i64,
        stats: &mut RecoveryStats,
        obs: &ObsHub,
        ctx: &SpanContext,
    ) -> ExecResolution {
        stats.degraded = true;
        obs.tracer()
            .event(ctx, "degraded_fallback", &[("error", &error.to_string())]);
        time_stage(obs, ctx, "fallback", |sctx| {
            for h in hits.iter().take(5) {
                let candidate = h.sample.name.clone();
                if let Ok(out) = self
                    .sandbox
                    .execute_traced(&candidate, ts, Some((obs.tracer(), sctx)))
                {
                    return ExecResolution {
                        query: candidate,
                        canonical: Some(out.canonical_query),
                        numeric_answer: out.value.as_scalar_like(),
                        values: out.value.numeric_values(),
                        error: Some(error),
                        degradation: DegradationLevel::Degraded,
                        completeness: out.completeness,
                    };
                }
            }
            ExecResolution {
                query: failed_query,
                canonical: None,
                numeric_answer: None,
                values: Vec::new(),
                error: Some(CopilotError::NoData {
                    message: format!("degraded fallback found no executable metric ({error})"),
                }),
                degradation: DegradationLevel::Degraded,
                completeness: DataCompleteness::Partial,
            }
        })
    }

    /// File an expert-help issue for a response (the raise-hand button).
    pub fn request_expert_help(&mut self, response: &CopilotResponse) -> IssueId {
        self.tracker.raise_hand(
            &response.question,
            response
                .relevant_metrics
                .iter()
                .map(|m| m.name.clone())
                .collect(),
            &response.render(),
        )
    }

    /// Resolve an issue with an expert contribution. The contribution
    /// merges into the domain DB (attributed), exemplars extend the
    /// few-shot pool, and the retrieval index is rebuilt so new context
    /// is immediately searchable.
    pub fn resolve_issue(
        &mut self,
        id: IssueId,
        expert_id: &str,
        contribution: Contribution,
    ) -> Result<(), TrackerError> {
        let exemplar =
            self.tracker
                .resolve(id, expert_id, contribution, Arc::make_mut(&mut self.db))?;
        if let Some((question, metrics, promql)) = exemplar {
            Arc::make_mut(&mut self.exemplars).push(FewShotExample {
                question,
                metrics,
                promql,
            });
        }
        self.extractor = Arc::new(ContextExtractor::build_with_mode(
            &self.db,
            self.config.domain_embedder,
            self.config.retrieval,
        ));
        // Publish the knowledge update: serving caches watching this
        // generation drop answers computed against the old catalog.
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }
}

/// System prompt shared by both stages.
const SYSTEM_PROMPT: &str = "You are DIO copilot, a natural language interface for retrieval \
and analytics tasks on 5G operator data. Use only metrics from CONTEXT. Answer with PromQL.";

/// Per-call model timeout derived from the remaining budget, in whole
/// milliseconds. Unbounded budgets impose no cap.
fn budget_timeout_ms(budget: &Budget) -> Option<u64> {
    budget.remaining().map(|left| left.as_millis() as u64)
}

/// First sentence of a description (keeps prompts within the paper's
/// cost envelope while preserving the discriminative tokens).
fn first_sentence(text: &str) -> String {
    match text.find(". ") {
        Some(i) => text[..=i].to_string(),
        None => text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};
    use dio_catalog::types::MetricRole;
    use dio_tsdb::{Labels, SeriesSpec, SynthConfig, Synthesizer};

    /// A small world: compact catalog + synthesised data for a handful
    /// of procedures.
    fn world() -> (DomainDb, MetricStore, i64) {
        let catalog = generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        });
        let synth_cfg = SynthConfig {
            start_ms: 0,
            end_ms: 2 * 3600 * 1000,
            step_ms: 60_000,
        };
        let mut store = MetricStore::new();
        let synth = Synthesizer::new(synth_cfg);
        let mut specs = Vec::new();
        for m in &catalog.metrics {
            if m.nf != dio_catalog::NetworkFunction::Amf {
                continue;
            }
            let labels = Labels::from_pairs([
                ("__name__", m.name.as_str()),
                ("instance", "amf-0"),
            ]);
            let seed = 1000;
            let spec = match m.role {
                MetricRole::ActiveGauge => SeriesSpec::gauge(labels, m.traffic.base_rate, seed),
                _ => SeriesSpec::counter(labels, m.traffic.base_rate.max(0.01), seed),
            };
            specs.push(spec);
        }
        synth.populate(&specs, &mut store);
        (DomainDb::from_catalog(catalog), store, 2 * 3600 * 1000)
    }

    fn exemplars() -> Vec<FewShotExample> {
        vec![
            FewShotExample {
                question: "What is the paging success rate at the AMF?".into(),
                metrics: vec![
                    "amfcc_n2_paging_success".into(),
                    "amfcc_n2_paging_attempt".into(),
                ],
                promql: "100 * sum(amfcc_n2_paging_success) / sum(amfcc_n2_paging_attempt)"
                    .into(),
            },
            FewShotExample {
                question: "How many service requests did the AMF handle?".into(),
                metrics: vec!["amfcc_n1_service_request_attempt".into()],
                promql: "sum(amfcc_n1_service_request_attempt)".into(),
            },
            FewShotExample {
                question: "How many authentication procedures per second is the AMF running?"
                    .into(),
                metrics: vec!["amfsec_n1_authentication_attempt".into()],
                promql: "sum(rate(amfsec_n1_authentication_attempt[5m]))".into(),
            },
        ]
    }

    fn copilot() -> (DioCopilot, i64) {
        let (db, store, ts) = world();
        (
            CopilotBuilder::new(db, store)
                .exemplars(exemplars())
                .build(),
            ts,
        )
    }

    #[test]
    fn answers_count_question_numerically() {
        let (mut cp, ts) = copilot();
        let r = cp.ask(
            "How many initial registration attempts did the AMF handle?",
            ts,
        );
        assert!(
            r.query.contains("amfcc_n1_initial_registration_attempt"),
            "query: {}",
            r.query
        );
        assert!(r.error.is_none(), "error: {:?}", r.error);
        let v = r.numeric_answer.expect("numeric answer");
        assert!(v > 0.0);
        assert!(r.cost_cents > 0.0);
        assert_eq!(r.trace.stages.len(), 4);
    }

    #[test]
    fn answers_success_rate_with_ratio_query() {
        let (mut cp, ts) = copilot();
        let r = cp.ask(
            "What is the initial registration procedure success rate at the AMF?",
            ts,
        );
        assert!(r.query.contains("100 *"), "query: {}", r.query);
        assert!(r.query.contains("_success"), "query: {}", r.query);
        assert!(r.query.contains("_attempt"), "query: {}", r.query);
        let v = r.numeric_answer.expect("numeric answer");
        // Synthetic success counters share the attempt seed, so the
        // rate is a plausible percentage.
        assert!((0.0..=100.0).contains(&v), "rate {v}");
    }

    #[test]
    fn response_lists_relevant_metrics_with_descriptions() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How many paging attempts were there?", ts);
        assert!(!r.relevant_metrics.is_empty());
        assert!(r.relevant_metrics[0].description.contains("The"));
        let rendered = r.render();
        assert!(rendered.contains("Relevant metrics"));
    }

    #[test]
    fn dashboard_is_generated_when_enabled() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How many authentication requests per second?", ts);
        let d = r.dashboard.expect("dashboard");
        assert!(!d.panels.is_empty());
    }

    #[test]
    fn dashboards_can_be_disabled() {
        let (db, store, ts) = world();
        let mut cp = CopilotBuilder::new(db, store)
            .config(CopilotConfig {
                generate_dashboards: false,
                ..CopilotConfig::default()
            })
            .exemplars(exemplars())
            .build();
        let r = cp.ask("How many paging attempts were there?", ts);
        assert!(r.dashboard.is_none());
    }

    #[test]
    fn asks_are_deterministic() {
        let (mut cp1, ts) = copilot();
        let (mut cp2, _) = copilot();
        let q = "What is the service request success rate?";
        let a = cp1.ask(q, ts);
        let b = cp2.ask(q, ts);
        assert_eq!(a.query, b.query);
        assert_eq!(a.numeric_answer, b.numeric_answer);
    }

    #[test]
    fn meter_accumulates_over_queries() {
        let (mut cp, ts) = copilot();
        cp.ask("How many paging attempts?", ts);
        cp.ask("How many service requests?", ts);
        assert_eq!(cp.meter().queries(), 2);
        assert!(cp.meter().mean_cents_per_query() > 0.0);
    }

    #[test]
    fn feedback_loop_grows_exemplars_and_reindexes() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("What is the LCS NI-LR procedure success rate?", ts);
        let issue = cp.request_expert_help(&r);
        let before = cp.exemplars().len();
        cp.resolve_issue(
            issue,
            "expert:alice",
            Contribution::Exemplar {
                question: "What is the LCS NI-LR procedure success rate?".into(),
                metrics: vec![
                    "amflcs_lcs_ni_lr_success".into(),
                    "amflcs_lcs_ni_lr_attempt".into(),
                ],
                promql: "100 * sum(amflcs_lcs_ni_lr_success) / sum(amflcs_lcs_ni_lr_attempt)"
                    .into(),
            },
        )
        .unwrap();
        assert_eq!(cp.exemplars().len(), before + 1);
        assert_eq!(cp.tracker().len(), 1);
    }

    #[test]
    fn note_contribution_becomes_retrievable() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How do I inspect the frobnicator wobble index?", ts);
        let issue = cp.request_expert_help(&r);
        cp.resolve_issue(
            issue,
            "expert:bob",
            Contribution::Note {
                title: "frobnicator-wobble".into(),
                text: "The frobnicator wobble index is tracked by amfcc_n2_paging_attempt \
                       in this deployment."
                    .into(),
            },
        )
        .unwrap();
        let hits = cp
            .extractor()
            .retrieve("frobnicator wobble index", 5);
        assert!(hits
            .iter()
            .any(|h| h.sample.name == "note:frobnicator-wobble"));
    }

    /// Delegates to a simulated model but fails the first `n` calls
    /// with a transient error.
    struct FailFirstN {
        inner: SimulatedModel,
        remaining: std::cell::RefCell<usize>,
    }

    impl FoundationModel for FailFirstN {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn context_window(&self) -> usize {
            self.inner.context_window()
        }
        fn pricing(&self) -> dio_llm::Pricing {
            self.inner.pricing()
        }
        fn complete(
            &self,
            request: &CompletionRequest,
        ) -> Result<dio_llm::Completion, dio_llm::ModelError> {
            let mut rem = self.remaining.borrow_mut();
            if *rem > 0 {
                *rem -= 1;
                return Err(dio_llm::ModelError::Unavailable("synthetic outage".into()));
            }
            self.inner.complete(request)
        }
    }

    /// Delegates to a simulated model but corrupts the first completion
    /// into unparseable PromQL.
    struct CorruptFirst {
        inner: SimulatedModel,
        corrupted: std::cell::RefCell<bool>,
    }

    impl FoundationModel for CorruptFirst {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn context_window(&self) -> usize {
            self.inner.context_window()
        }
        fn pricing(&self) -> dio_llm::Pricing {
            self.inner.pricing()
        }
        fn complete(
            &self,
            request: &CompletionRequest,
        ) -> Result<dio_llm::Completion, dio_llm::ModelError> {
            let mut c = self.inner.complete(request)?;
            let mut done = self.corrupted.borrow_mut();
            if !*done {
                *done = true;
                c.text.push_str(" )(");
            }
            Ok(c)
        }
    }

    fn copilot_with_model(model: Box<dyn FoundationModel>) -> (DioCopilot, i64) {
        let (db, store, ts) = world();
        (
            CopilotBuilder::new(db, store)
                .exemplars(exemplars())
                .model(model)
                .build(),
            ts,
        )
    }

    #[test]
    fn transient_model_failure_is_retried_to_success() {
        let (mut cp, ts) = copilot_with_model(Box::new(FailFirstN {
            inner: SimulatedModel::new(ModelProfile::gpt4_sim()),
            remaining: std::cell::RefCell::new(1),
        }));
        let r = cp.ask("How many initial registration attempts did the AMF handle?", ts);
        assert!(r.error.is_none(), "error: {:?}", r.error);
        assert!(r.numeric_answer.is_some());
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Full);
        assert_eq!(r.trace.recovery.retries, 1);
        assert_eq!(r.trace.recovery.attempts, 2);
        assert_eq!(r.trace.recovery.backoff_schedule_ms, vec![100]);
        // Retries happen inside the generate stage: still 4 stages.
        assert_eq!(r.trace.stages.len(), 4);
    }

    #[test]
    fn malformed_query_is_repaired_in_sandbox_loop() {
        let (mut cp, ts) = copilot_with_model(Box::new(CorruptFirst {
            inner: SimulatedModel::new(ModelProfile::gpt4_sim()),
            corrupted: std::cell::RefCell::new(false),
        }));
        let r = cp.ask("How many initial registration attempts did the AMF handle?", ts);
        assert!(r.error.is_none(), "error: {:?}", r.error);
        assert!(r.numeric_answer.is_some());
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Repaired);
        assert_eq!(r.trace.recovery.repairs, 1);
        assert!(!r.query.contains(")("), "repaired query: {}", r.query);
        // Per-invocation spans: the repair loop re-enters generate and
        // execute, and both invocations are visible (satellite fix for
        // the old first-match-only trace lookup).
        assert_eq!(r.trace.invocations("generate"), 2);
        assert_eq!(r.trace.invocations("execute"), 2);
        assert_eq!(r.trace.stages.len(), 6);
        let gen = r.trace.stage("generate").unwrap();
        assert_eq!(gen.invocations, 2);
    }

    #[test]
    fn total_outage_degrades_to_top_metric_lookup() {
        let (mut cp, ts) = copilot_with_model(Box::new(FailFirstN {
            inner: SimulatedModel::new(ModelProfile::gpt4_sim()),
            remaining: std::cell::RefCell::new(usize::MAX),
        }));
        let r = cp.ask("How many initial registration attempts did the AMF handle?", ts);
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Degraded);
        assert!(r.trace.recovery.degraded);
        assert!(matches!(
            r.error,
            Some(CopilotError::ModelUnavailable { .. })
        ));
        // The fallback still answers from the best retrieved metric.
        assert!(r.numeric_answer.is_some() || !r.values.is_empty());
        assert!(!r.query.is_empty());
        assert!(r.render().contains("degraded answer"));
        // Threshold (3) consecutive failures tripped the breaker.
        assert_eq!(r.trace.recovery.breaker_trips, 1);
        assert_eq!(cp.breaker().state(), crate::recovery::BreakerState::Open);
    }

    #[test]
    fn open_breaker_skips_model_calls_on_subsequent_asks() {
        let (mut cp, ts) = copilot_with_model(Box::new(FailFirstN {
            inner: SimulatedModel::new(ModelProfile::gpt4_sim()),
            remaining: std::cell::RefCell::new(usize::MAX),
        }));
        let first = cp.ask("How many paging attempts?", ts);
        let first_attempts = first.trace.recovery.attempts;
        assert!(first_attempts >= 3);
        // Breaker is open: the next ask degrades without reaching the
        // model at all.
        let second = cp.ask("How many service requests?", ts);
        assert_eq!(second.trace.recovery.attempts, 0);
        assert_eq!(
            second.degradation,
            crate::recovery::DegradationLevel::Degraded
        );
        assert!(second.numeric_answer.is_some() || !second.values.is_empty());
    }

    #[test]
    fn disabled_recovery_surfaces_failures_unrepaired() {
        let (db, store, ts) = world();
        let mut cp = CopilotBuilder::new(db, store)
            .config(CopilotConfig {
                recovery: crate::recovery::RecoveryPolicy::disabled(),
                ..CopilotConfig::default()
            })
            .exemplars(exemplars())
            .model(Box::new(CorruptFirst {
                inner: SimulatedModel::new(ModelProfile::gpt4_sim()),
                corrupted: std::cell::RefCell::new(false),
            }))
            .build();
        let r = cp.ask("How many initial registration attempts did the AMF handle?", ts);
        assert!(matches!(r.error, Some(CopilotError::QueryParse { .. })));
        assert!(r.numeric_answer.is_none());
        assert_eq!(r.trace.recovery.repairs, 0);
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Full);
    }

    #[test]
    fn cost_is_in_the_papers_ballpark() {
        // §4.2.5: average 4.25 cents per query with GPT-4 pricing.
        let (mut cp, ts) = copilot();
        for q in [
            "How many initial registration attempts did the AMF handle?",
            "What is the paging success rate?",
            "How many authentication requests per second?",
        ] {
            cp.ask(q, ts);
        }
        let mean = cp.meter().mean_cents_per_query();
        assert!(
            (1.5..=8.0).contains(&mean),
            "mean cost {mean}¢ outside plausible band"
        );
    }

    #[test]
    fn registry_reflects_pipeline_activity() {
        let (mut cp, ts) = copilot();
        cp.ask("How many paging attempts?", ts);
        cp.ask("How many service requests?", ts);
        let snap = cp.obs().registry().snapshot();
        assert_eq!(snap.total(crate::obs::ASKS_NAME), 2.0);
        assert_eq!(snap.total(crate::obs::ANSWERS_NAME), 2.0);
        // Two single-call asks: the observed model saw two completions.
        assert_eq!(snap.total("dio_llm_model_calls_total"), 2.0);
        assert!(snap.total("dio_llm_cost_cents_total") > 0.0);
        // Sandbox executed both queries.
        assert!(snap.total("dio_sandbox_executions_total") >= 2.0);
        // Retrieval scanned candidates and observed similarities.
        assert!(snap.total(crate::obs::CANDIDATES_NAME) > 0.0);
        let sim = snap.family(crate::obs::SIMILARITY_NAME).unwrap();
        assert!(sim
            .series
            .iter()
            .any(|s| matches!(&s.value, dio_obs::SeriesValue::Histogram(h) if h.count > 0)));
        // Stage latency histogram carries the retrieve stage.
        let stage = snap.family(crate::obs::STAGE_DURATION_NAME).unwrap();
        assert!(stage
            .series
            .iter()
            .any(|s| s.labels.contains(&("stage".into(), "retrieve".into()))));
        // Ask duration counted both asks.
        let ask = snap.family(crate::obs::ASK_DURATION_NAME).unwrap();
        let count: u64 = ask
            .series
            .iter()
            .map(|s| match &s.value {
                dio_obs::SeriesValue::Histogram(h) => h.count,
                _ => 0,
            })
            .sum();
        assert_eq!(count, 2);
    }

    #[test]
    fn breaker_transitions_and_retries_are_counted() {
        let (mut cp, ts) = copilot_with_model(Box::new(FailFirstN {
            inner: SimulatedModel::new(ModelProfile::gpt4_sim()),
            remaining: std::cell::RefCell::new(usize::MAX),
        }));
        let r = cp.ask("How many paging attempts?", ts);
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Degraded);
        let snap = cp.obs().registry().snapshot();
        // Retries per the policy (max_retries = 2).
        assert_eq!(snap.total(crate::obs::RETRIES_NAME), 2.0);
        // Recorded backoff: 100 + 200 ms.
        assert_eq!(snap.total(crate::obs::BACKOFF_NAME), 300.0);
        // The breaker opened once.
        let fam = snap.family(crate::obs::BREAKER_NAME).unwrap();
        let opened: f64 = fam
            .series
            .iter()
            .filter(|s| s.labels.contains(&("to".into(), "open".into())))
            .map(|s| match &s.value {
                dio_obs::SeriesValue::Counter(v) => *v,
                _ => 0.0,
            })
            .sum();
        assert_eq!(opened, 1.0);
        // Degraded answer counted under its label.
        let answers = snap.family(crate::obs::ANSWERS_NAME).unwrap();
        let degraded: f64 = answers
            .series
            .iter()
            .filter(|s| s.labels.contains(&("degradation".into(), "degraded".into())))
            .map(|s| match &s.value {
                dio_obs::SeriesValue::Counter(v) => *v,
                _ => 0.0,
            })
            .sum();
        assert_eq!(degraded, 1.0);
        // The fallback recorded its own span.
        assert_eq!(r.trace.invocations("fallback"), 1);
    }

    use crate::extractor::RetrievalMode;

    fn chaos_copilot(weights: [u32; 4], retrieval: RetrievalMode) -> (DioCopilot, i64) {
        let (db, store, ts) = world();
        let cp = CopilotBuilder::new(db, store)
            .config(CopilotConfig {
                retrieval,
                data_chaos: Some(dio_faults::ChaosConfig {
                    seed: 0xda7a,
                    fault_probability: 1.0,
                    weights,
                    latency_spike_micros: 1_000,
                }),
                ..CopilotConfig::default()
            })
            .exemplars(exemplars())
            .build();
        (cp, ts)
    }

    #[test]
    fn default_config_keeps_answers_complete_and_chaos_free() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How many paging attempts?", ts);
        assert_eq!(r.data_completeness, dio_sandbox::DataCompleteness::Complete);
        assert_eq!(r.trace.recovery.data_faults, 0);
        assert_eq!(r.trace.recovery.index_demotions, 0);
        let snap = cp.obs().registry().snapshot();
        assert_eq!(snap.total(crate::obs::DATA_FAULTS_NAME), 0.0);
        assert_eq!(snap.total(crate::obs::DEMOTIONS_NAME), 0.0);
        // Completeness is still attributed: one complete answer.
        assert_eq!(snap.total(crate::obs::COMPLETENESS_NAME), 1.0);
    }

    #[test]
    fn total_storage_outage_degrades_without_panicking() {
        // Every tsdb operation fails transiently: execution retries the
        // unchanged query (no model repair burned), then degrades; the
        // fallback's candidates fault too, so the answer is NoData —
        // but classified, counted, and panic-free.
        let (mut cp, ts) = chaos_copilot([0, 1, 0, 0], RetrievalMode::Flat);
        let r = cp.ask("How many paging attempts?", ts);
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Degraded);
        assert!(matches!(r.error, Some(CopilotError::NoData { .. })), "{:?}", r.error);
        assert_eq!(r.data_completeness, dio_sandbox::DataCompleteness::Partial);
        assert!(r.trace.recovery.data_faults > 0);
        // Storage retries are not model repair rounds.
        assert_eq!(r.trace.recovery.repairs, 0);
        let snap = cp.obs().registry().snapshot();
        assert!(snap.total(crate::obs::DATA_FAULTS_NAME) > 0.0);
    }

    #[test]
    fn index_corruption_demotes_hnsw_to_ivf_to_flat() {
        // Every vecstore read is a bit flip: each ask quarantines the
        // current tier and falls back one level, and the sandbox's
        // corrupt reads mark answers partial instead of failing them.
        let (mut cp, ts) =
            chaos_copilot([0, 0, 0, 1], RetrievalMode::Hnsw { ef_search: 32 });
        assert_eq!(cp.extractor().mode_slug(), "hnsw");
        let r1 = cp.ask("How many paging attempts?", ts);
        assert_eq!(cp.extractor().mode_slug(), "ivf");
        assert_eq!(r1.trace.recovery.index_demotions, 1);
        assert_eq!(r1.data_completeness, dio_sandbox::DataCompleteness::Partial);
        let r2 = cp.ask("How many service requests?", ts);
        assert_eq!(cp.extractor().mode_slug(), "flat");
        assert_eq!(r2.trace.recovery.index_demotions, 1);
        let snap = cp.obs().registry().snapshot();
        assert_eq!(snap.total(crate::obs::DEMOTIONS_NAME), 2.0);
        assert!(snap.total(crate::obs::DATA_FAULTS_NAME) >= 2.0);
        assert!(r1.render().contains("partial data"));
    }

    /// Compile-time Send/Sync audit for the shared serving state: a
    /// worker pool moves whole pipelines across threads (`Send`) and
    /// shares the read-only retrieval/catalog/tsdb state by reference
    /// (`Sync`). A regression here (an `Rc`, a `RefCell` in shared
    /// state) fails compilation, not runtime.
    #[test]
    fn shared_pipeline_state_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send::<DioCopilot>();
        assert_send::<Box<dyn FoundationModel>>();
        assert_send::<CopilotResponse>();
        assert_send_sync::<ContextExtractor>();
        assert_send_sync::<DomainDb>();
        assert_send_sync::<MetricStore>();
        assert_send_sync::<ObsHub>();
        assert_send_sync::<dio_llm::FewShotExample>();
        assert_send_sync::<std::sync::Arc<ContextExtractor>>();
    }

    #[test]
    fn forks_share_state_and_answer_identically() {
        let (cp, ts) = copilot();
        let mut forks: Vec<DioCopilot> = (0..2)
            .map(|_| cp.fork_with_model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))))
            .collect();
        // Shared by handle, not by copy.
        for f in &forks {
            assert!(Arc::ptr_eq(&cp.extractor, &f.extractor));
            assert!(Arc::ptr_eq(&cp.db, &f.db));
            assert!(Arc::ptr_eq(&cp.exemplars, &f.exemplars));
        }
        let q = "How many initial registration attempts did the AMF handle?";
        let mut cp = cp;
        let reference = cp.ask(q, ts);
        for f in &mut forks {
            let r = f.ask(q, ts);
            assert_eq!(r.query, reference.query);
            assert_eq!(r.numeric_answer, reference.numeric_answer);
        }
        // Forks run on separate threads (the whole point).
        let f = cp.fork_with_model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())));
        let handle = std::thread::spawn(move || {
            let mut f = f;
            f.ask(q, ts).numeric_answer
        });
        assert_eq!(handle.join().unwrap(), reference.numeric_answer);
    }

    #[test]
    fn feedback_update_bumps_shared_generation_copy_on_write() {
        let (mut cp, ts) = copilot();
        let fork = cp.fork_with_model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())));
        assert_eq!(cp.knowledge_generation(), 0);
        let r = cp.ask("What is the LCS NI-LR procedure success rate?", ts);
        let issue = cp.request_expert_help(&r);
        cp.resolve_issue(
            issue,
            "expert:alice",
            Contribution::Note {
                title: "lcs-update".into(),
                text: "LCS NI-LR rates are tracked by amflcs counters.".into(),
            },
        )
        .unwrap();
        // The generation is shared (both sides see the update signal)…
        assert_eq!(cp.knowledge_generation(), 1);
        assert_eq!(fork.knowledge_generation(), 1);
        // …but the catalog update itself was copy-on-write: the fork
        // still reads the pre-update state until it is rebuilt.
        assert!(!Arc::ptr_eq(&cp.db, &fork.db));
    }

    #[test]
    fn precomputed_question_vector_matches_default_path() {
        let (mut cp, ts) = copilot();
        let q = "How many paging attempts were there?";
        let vec = cp.extractor().embed_question(q);
        let prepared = cp.ask_prepared(q, ts, Some(&vec));
        let plain = cp.ask(q, ts);
        assert_eq!(prepared.query, plain.query);
        assert_eq!(prepared.numeric_answer, plain.numeric_answer);
    }

    #[test]
    fn lapsed_budget_aborts_before_any_model_call() {
        let (mut cp, ts) = copilot();
        let budget = Budget::within(std::time::Duration::ZERO);
        let r = cp.ask_budgeted("How many paging attempts?", ts, None, None, &budget);
        assert!(
            matches!(r.error, Some(CopilotError::DeadlineExceeded { .. })),
            "{:?}",
            r.error
        );
        assert!(r.numeric_answer.is_none());
        assert_eq!(r.trace.recovery.attempts, 0);
        let snap = cp.obs().registry().snapshot();
        // Zero work past the lapsed deadline: the model was never
        // touched, and the abort is not counted as an answer.
        assert_eq!(snap.total("dio_llm_model_calls_total"), 0.0);
        assert_eq!(snap.total(crate::obs::ANSWERS_NAME), 0.0);
        assert_eq!(snap.total(crate::obs::DEADLINE_NAME), 1.0);
        // The standalone trace closed under the deadline class and the
        // flight recorder retained it as its own outcome.
        let retained = cp.obs().recorder().retained();
        assert!(
            retained.iter().any(|t| t.reason == "deadline_exceeded"),
            "reasons: {:?}",
            retained.iter().map(|t| t.reason.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn brownout_ask_degrades_without_any_model_call() {
        let (mut cp, ts) = copilot();
        let q = "How many paging attempts?";
        let r = cp.ask_degraded(q, ts, None, None, &Budget::unbounded());
        assert_eq!(r.degradation, DegradationLevel::Degraded);
        let snap = cp.obs().registry().snapshot();
        assert_eq!(
            snap.total("dio_llm_model_calls_total"),
            0.0,
            "cache-only brownout must not touch the model"
        );
        // The real breaker came back: the next plain ask runs the full
        // pipeline again.
        assert_eq!(cp.breaker().state(), crate::BreakerState::Closed);
        let full = cp.ask(q, ts);
        assert_eq!(full.degradation, DegradationLevel::Full);
    }

    #[test]
    fn cancellation_aborts_like_a_lapsed_deadline() {
        let (mut cp, ts) = copilot();
        let budget = Budget::unbounded();
        budget.cancel();
        let r = cp.ask_budgeted("How many paging attempts?", ts, None, None, &budget);
        assert!(matches!(
            r.error,
            Some(CopilotError::DeadlineExceeded { .. })
        ));
        assert_eq!(r.trace.recovery.attempts, 0);
        assert!(r.render().contains("deadline exceeded"));
    }

    #[test]
    fn unbounded_budget_reproduces_the_plain_ask() {
        let (mut cp1, ts) = copilot();
        let (mut cp2, _) = copilot();
        let q = "How many initial registration attempts did the AMF handle?";
        let a = cp1.ask(q, ts);
        let b = cp2.ask_budgeted(q, ts, None, None, &Budget::unbounded());
        assert_eq!(a.query, b.query);
        assert_eq!(a.numeric_answer, b.numeric_answer);
        assert!(b.error.is_none());
    }

    #[test]
    fn generous_budget_caps_model_calls_without_changing_answers() {
        let (mut cp, ts) = copilot();
        let budget = Budget::within(std::time::Duration::from_secs(3600));
        let r = cp.ask_budgeted(
            "How many initial registration attempts did the AMF handle?",
            ts,
            None,
            None,
            &budget,
        );
        assert!(r.error.is_none(), "{:?}", r.error);
        assert!(r.numeric_answer.is_some());
        assert_eq!(r.degradation, crate::recovery::DegradationLevel::Full);
    }

    #[test]
    fn latency_spikes_are_recorded_never_slept() {
        let (mut cp, ts) = chaos_copilot([1, 0, 0, 0], RetrievalMode::Flat);
        let r = cp.ask("How many paging attempts?", ts);
        // Spikes degrade nothing: the answer is full and complete.
        assert!(r.error.is_none(), "{:?}", r.error);
        assert_eq!(r.data_completeness, dio_sandbox::DataCompleteness::Complete);
        assert!(r.trace.recovery.data_faults > 0);
        assert!(cp.retrieval_chaos.as_ref().unwrap().injected_latency_micros() > 0);
    }
}

//! The end-to-end DIO copilot pipeline.

use crate::answer::{CopilotResponse, RelevantMetric};
use crate::config::CopilotConfig;
use crate::extractor::ContextExtractor;
use crate::trace::PipelineTrace;
use dio_catalog::DomainDb;
use dio_dashboard::{generate_dashboard, PanelSpecHint, TimeRange};
use dio_feedback::{Contribution, IssueId, IssueTracker, TrackerError};
use dio_llm::{
    CompletionRequest, ContextItem, CostMeter, FewShotExample, FoundationModel, ModelProfile,
    PromptBuilder, SimulatedModel, TaskKind, TokenUsage,
};
use dio_sandbox::{Sandbox, SafetyPolicy, SandboxError};
use dio_tsdb::MetricStore;

/// Builder for [`DioCopilot`].
pub struct CopilotBuilder {
    db: DomainDb,
    store: MetricStore,
    config: CopilotConfig,
    model: Option<Box<dyn FoundationModel>>,
    exemplars: Vec<FewShotExample>,
    policy: SafetyPolicy,
}

impl CopilotBuilder {
    /// Start from a domain DB and a metrics store.
    pub fn new(db: DomainDb, store: MetricStore) -> Self {
        CopilotBuilder {
            db,
            store,
            config: CopilotConfig::default(),
            model: None,
            exemplars: Vec::new(),
            policy: SafetyPolicy::default(),
        }
    }

    /// Override the configuration.
    pub fn config(mut self, config: CopilotConfig) -> Self {
        self.config = config;
        self
    }

    /// Use a specific foundation model (defaults to the GPT-4
    /// simulation).
    pub fn model(mut self, model: Box<dyn FoundationModel>) -> Self {
        self.model = Some(model);
        self
    }

    /// Provide few-shot exemplars (the paper uses 20 expert tuples).
    pub fn exemplars(mut self, exemplars: Vec<FewShotExample>) -> Self {
        self.exemplars = exemplars;
        self
    }

    /// Override the sandbox policy.
    pub fn policy(mut self, policy: SafetyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Build the copilot (runs the offline embedding pass).
    pub fn build(self) -> DioCopilot {
        let extractor = ContextExtractor::build_with_mode(
            &self.db,
            self.config.domain_embedder,
            self.config.retrieval,
        );
        let model = self
            .model
            .unwrap_or_else(|| Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())));
        DioCopilot {
            extractor,
            sandbox: Sandbox::new(self.store, self.policy),
            db: self.db,
            config: self.config,
            model,
            exemplars: self.exemplars,
            tracker: IssueTracker::new(),
            meter: CostMeter::new(),
        }
    }
}

/// The assembled copilot.
pub struct DioCopilot {
    config: CopilotConfig,
    db: DomainDb,
    extractor: ContextExtractor,
    model: Box<dyn FoundationModel>,
    sandbox: Sandbox,
    exemplars: Vec<FewShotExample>,
    tracker: IssueTracker,
    meter: CostMeter,
}

impl DioCopilot {
    /// The domain database.
    pub fn db(&self) -> &DomainDb {
        &self.db
    }

    /// The issue tracker.
    pub fn tracker(&self) -> &IssueTracker {
        &self.tracker
    }

    /// Current few-shot pool.
    pub fn exemplars(&self) -> &[FewShotExample] {
        &self.exemplars
    }

    /// Accumulated cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// The query engine (for rendering dashboards etc.).
    pub fn engine(&self) -> &dio_promql::Engine {
        self.sandbox.engine()
    }

    /// The context extractor.
    pub fn extractor(&self) -> &ContextExtractor {
        &self.extractor
    }

    /// The model in use.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Answer a question, evaluating data at timestamp `ts`.
    pub fn ask(&mut self, question: &str, ts: i64) -> CopilotResponse {
        let mut trace = PipelineTrace::default();
        let mut usage = TokenUsage::default();

        // Stage 1: context extraction (offline index, online search).
        let hits = trace.time("retrieve", || {
            self.extractor.retrieve(question, self.config.top_k)
        });

        let context_items: Vec<ContextItem> = hits
            .iter()
            .map(|h| ContextItem {
                name: h.sample.name.clone(),
                text: first_sentence(&h.sample.text),
                relevance: h.score,
            })
            .collect();

        // Stage 2: relevant-metric identification. By default this is
        // folded into the generation prompt (one inference, §4.2.5 cost
        // envelope); `two_stage: true` issues the explicit
        // identify-then-generate calls.
        let window = self.model.context_window();
        // Reserve completion room, but never starve the prompt on a
        // small-window model (text-curie-001 still needs its truncated
        // context to see *something*).
        let reserved = self.config.max_output_tokens.min(window / 4);
        let identified: Vec<String> = if self.config.two_stage {
            let identify_prompt = PromptBuilder::new()
                .system(SYSTEM_PROMPT)
                .context(context_items.clone())
                .question(question)
                .task(TaskKind::IdentifyMetrics)
                .build(window, reserved);
            trace.time("identify", || {
                match self.model.complete(&CompletionRequest {
                    prompt: identify_prompt,
                    max_tokens: self.config.max_output_tokens,
                    temperature: self.config.temperature,
                }) {
                    Ok(c) => {
                        usage.add(c.usage);
                        c.text
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty() && s != "none")
                            .collect()
                    }
                    Err(_) => Vec::new(),
                }
            })
        } else {
            Vec::new()
        };

        // Stage 3: few-shot code generation over the selected metrics
        // (two-stage) or the full retrieved context (merged).
        let selected_items: Vec<ContextItem> = context_items
            .iter()
            .filter(|c| identified.contains(&c.name))
            .cloned()
            .collect();
        let mut gen_builder = PromptBuilder::new()
            .system(SYSTEM_PROMPT)
            .context(if selected_items.is_empty() {
                // Merged mode, or an empty two-stage selection: use the
                // full retrieved context.
                context_items.clone()
            } else {
                selected_items
            })
            .examples(
                self.exemplars
                    .iter()
                    .take(self.config.max_exemplars)
                    .cloned(),
            )
            .question(question)
            .task(TaskKind::GeneratePromql);
        for f in self.db.functions().take(4) {
            gen_builder = gen_builder.function(&f.name, first_sentence(&f.description));
        }
        let gen_prompt = gen_builder.build(window, reserved);
        let query = trace.time("generate", || {
            match self.model.complete(&CompletionRequest {
                prompt: gen_prompt,
                max_tokens: self.config.max_output_tokens,
                temperature: self.config.temperature,
            }) {
                Ok(c) => {
                    usage.add(c.usage);
                    c.text.trim().to_string()
                }
                Err(e) => format!("# model error: {e}"),
            }
        });

        // Stage 4: sandboxed execution.
        let (numeric_answer, values, error, canonical) = trace.time("execute", || {
            match self.sandbox.execute(&query, ts) {
                Ok(out) => (
                    out.value.as_scalar_like(),
                    out.value.numeric_values(),
                    None,
                    Some(out.canonical_query),
                ),
                Err(e) => {
                    let msg = match &e {
                        SandboxError::Parse(m) => format!("parse error: {m}"),
                        SandboxError::Refused(v) => format!("policy refusal: {v}"),
                        SandboxError::Eval(m) => format!("evaluation error: {m}"),
                    };
                    (None, Vec::new(), Some(msg), None)
                }
            }
        });

        // Relevant metrics for the rendered response: the identified
        // set, falling back to whatever the query references.
        let mut shown = identified.clone();
        if shown.is_empty() {
            if let Ok(expr) = dio_promql::parse(&query) {
                shown = expr.metric_names();
            }
        }
        let relevant_metrics: Vec<RelevantMetric> = shown
            .iter()
            .filter_map(|n| {
                self.db.metric(n).map(|m| RelevantMetric {
                    name: m.name.clone(),
                    description: first_sentence(&m.description),
                })
            })
            .collect();

        // Stage 5: dashboard generation.
        let dashboard = if self.config.generate_dashboards {
            let hints: Vec<PanelSpecHint> = shown
                .iter()
                .filter_map(|n| self.db.metric(n))
                .map(|m| PanelSpecHint {
                    name: m.name.clone(),
                    title: format!("{} ({})", m.procedure_display, m.name),
                    is_counter: m.counter_type.is_counter(),
                })
                .collect();
            let range = TimeRange::last(ts, self.config.dashboard_span_ms, 60);
            Some(trace.time("dashboard", || {
                generate_dashboard(question, &hints, canonical.as_deref(), range)
            }))
        } else {
            None
        };

        let cost_cents = self.model.pricing().cost_cents(usage);
        self.meter.record(usage, self.model.pricing());

        let final_query = canonical.unwrap_or(query);
        CopilotResponse {
            question: question.to_string(),
            relevant_metrics,
            explanation: dio_promql::explain_query(&final_query),
            query: final_query,
            numeric_answer,
            values,
            error,
            dashboard,
            usage,
            cost_cents,
            trace,
        }
    }

    /// File an expert-help issue for a response (the raise-hand button).
    pub fn request_expert_help(&mut self, response: &CopilotResponse) -> IssueId {
        self.tracker.raise_hand(
            &response.question,
            response
                .relevant_metrics
                .iter()
                .map(|m| m.name.clone())
                .collect(),
            &response.render(),
        )
    }

    /// Resolve an issue with an expert contribution. The contribution
    /// merges into the domain DB (attributed), exemplars extend the
    /// few-shot pool, and the retrieval index is rebuilt so new context
    /// is immediately searchable.
    pub fn resolve_issue(
        &mut self,
        id: IssueId,
        expert_id: &str,
        contribution: Contribution,
    ) -> Result<(), TrackerError> {
        let exemplar = self
            .tracker
            .resolve(id, expert_id, contribution, &mut self.db)?;
        if let Some((question, metrics, promql)) = exemplar {
            self.exemplars.push(FewShotExample {
                question,
                metrics,
                promql,
            });
        }
        self.extractor = ContextExtractor::build_with_mode(
            &self.db,
            self.config.domain_embedder,
            self.config.retrieval,
        );
        Ok(())
    }
}

/// System prompt shared by both stages.
const SYSTEM_PROMPT: &str = "You are DIO copilot, a natural language interface for retrieval \
and analytics tasks on 5G operator data. Use only metrics from CONTEXT. Answer with PromQL.";

/// First sentence of a description (keeps prompts within the paper's
/// cost envelope while preserving the discriminative tokens).
fn first_sentence(text: &str) -> String {
    match text.find(". ") {
        Some(i) => text[..=i].to_string(),
        None => text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};
    use dio_catalog::types::MetricRole;
    use dio_tsdb::{Labels, SeriesSpec, SynthConfig, Synthesizer};

    /// A small world: compact catalog + synthesised data for a handful
    /// of procedures.
    fn world() -> (DomainDb, MetricStore, i64) {
        let catalog = generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        });
        let synth_cfg = SynthConfig {
            start_ms: 0,
            end_ms: 2 * 3600 * 1000,
            step_ms: 60_000,
        };
        let mut store = MetricStore::new();
        let synth = Synthesizer::new(synth_cfg);
        let mut specs = Vec::new();
        for m in &catalog.metrics {
            if m.nf != dio_catalog::NetworkFunction::Amf {
                continue;
            }
            let labels = Labels::from_pairs([
                ("__name__", m.name.as_str()),
                ("instance", "amf-0"),
            ]);
            let seed = 1000;
            let spec = match m.role {
                MetricRole::ActiveGauge => SeriesSpec::gauge(labels, m.traffic.base_rate, seed),
                _ => SeriesSpec::counter(labels, m.traffic.base_rate.max(0.01), seed),
            };
            specs.push(spec);
        }
        synth.populate(&specs, &mut store);
        (DomainDb::from_catalog(catalog), store, 2 * 3600 * 1000)
    }

    fn exemplars() -> Vec<FewShotExample> {
        vec![
            FewShotExample {
                question: "What is the paging success rate at the AMF?".into(),
                metrics: vec![
                    "amfcc_n2_paging_success".into(),
                    "amfcc_n2_paging_attempt".into(),
                ],
                promql: "100 * sum(amfcc_n2_paging_success) / sum(amfcc_n2_paging_attempt)"
                    .into(),
            },
            FewShotExample {
                question: "How many service requests did the AMF handle?".into(),
                metrics: vec!["amfcc_n1_service_request_attempt".into()],
                promql: "sum(amfcc_n1_service_request_attempt)".into(),
            },
            FewShotExample {
                question: "How many authentication procedures per second is the AMF running?"
                    .into(),
                metrics: vec!["amfsec_n1_authentication_attempt".into()],
                promql: "sum(rate(amfsec_n1_authentication_attempt[5m]))".into(),
            },
        ]
    }

    fn copilot() -> (DioCopilot, i64) {
        let (db, store, ts) = world();
        (
            CopilotBuilder::new(db, store)
                .exemplars(exemplars())
                .build(),
            ts,
        )
    }

    #[test]
    fn answers_count_question_numerically() {
        let (mut cp, ts) = copilot();
        let r = cp.ask(
            "How many initial registration attempts did the AMF handle?",
            ts,
        );
        assert!(
            r.query.contains("amfcc_n1_initial_registration_attempt"),
            "query: {}",
            r.query
        );
        assert!(r.error.is_none(), "error: {:?}", r.error);
        let v = r.numeric_answer.expect("numeric answer");
        assert!(v > 0.0);
        assert!(r.cost_cents > 0.0);
        assert_eq!(r.trace.stages.len(), 4);
    }

    #[test]
    fn answers_success_rate_with_ratio_query() {
        let (mut cp, ts) = copilot();
        let r = cp.ask(
            "What is the initial registration procedure success rate at the AMF?",
            ts,
        );
        assert!(r.query.contains("100 *"), "query: {}", r.query);
        assert!(r.query.contains("_success"), "query: {}", r.query);
        assert!(r.query.contains("_attempt"), "query: {}", r.query);
        let v = r.numeric_answer.expect("numeric answer");
        // Synthetic success counters share the attempt seed, so the
        // rate is a plausible percentage.
        assert!((0.0..=100.0).contains(&v), "rate {v}");
    }

    #[test]
    fn response_lists_relevant_metrics_with_descriptions() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How many paging attempts were there?", ts);
        assert!(!r.relevant_metrics.is_empty());
        assert!(r.relevant_metrics[0].description.contains("The"));
        let rendered = r.render();
        assert!(rendered.contains("Relevant metrics"));
    }

    #[test]
    fn dashboard_is_generated_when_enabled() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How many authentication requests per second?", ts);
        let d = r.dashboard.expect("dashboard");
        assert!(!d.panels.is_empty());
    }

    #[test]
    fn dashboards_can_be_disabled() {
        let (db, store, ts) = world();
        let mut cp = CopilotBuilder::new(db, store)
            .config(CopilotConfig {
                generate_dashboards: false,
                ..CopilotConfig::default()
            })
            .exemplars(exemplars())
            .build();
        let r = cp.ask("How many paging attempts were there?", ts);
        assert!(r.dashboard.is_none());
    }

    #[test]
    fn asks_are_deterministic() {
        let (mut cp1, ts) = copilot();
        let (mut cp2, _) = copilot();
        let q = "What is the service request success rate?";
        let a = cp1.ask(q, ts);
        let b = cp2.ask(q, ts);
        assert_eq!(a.query, b.query);
        assert_eq!(a.numeric_answer, b.numeric_answer);
    }

    #[test]
    fn meter_accumulates_over_queries() {
        let (mut cp, ts) = copilot();
        cp.ask("How many paging attempts?", ts);
        cp.ask("How many service requests?", ts);
        assert_eq!(cp.meter().queries(), 2);
        assert!(cp.meter().mean_cents_per_query() > 0.0);
    }

    #[test]
    fn feedback_loop_grows_exemplars_and_reindexes() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("What is the LCS NI-LR procedure success rate?", ts);
        let issue = cp.request_expert_help(&r);
        let before = cp.exemplars().len();
        cp.resolve_issue(
            issue,
            "expert:alice",
            Contribution::Exemplar {
                question: "What is the LCS NI-LR procedure success rate?".into(),
                metrics: vec![
                    "amflcs_lcs_ni_lr_success".into(),
                    "amflcs_lcs_ni_lr_attempt".into(),
                ],
                promql: "100 * sum(amflcs_lcs_ni_lr_success) / sum(amflcs_lcs_ni_lr_attempt)"
                    .into(),
            },
        )
        .unwrap();
        assert_eq!(cp.exemplars().len(), before + 1);
        assert_eq!(cp.tracker().len(), 1);
    }

    #[test]
    fn note_contribution_becomes_retrievable() {
        let (mut cp, ts) = copilot();
        let r = cp.ask("How do I inspect the frobnicator wobble index?", ts);
        let issue = cp.request_expert_help(&r);
        cp.resolve_issue(
            issue,
            "expert:bob",
            Contribution::Note {
                title: "frobnicator-wobble".into(),
                text: "The frobnicator wobble index is tracked by amfcc_n2_paging_attempt \
                       in this deployment."
                    .into(),
            },
        )
        .unwrap();
        let hits = cp
            .extractor()
            .retrieve("frobnicator wobble index", 5);
        assert!(hits
            .iter()
            .any(|h| h.sample.name == "note:frobnicator-wobble"));
    }

    #[test]
    fn cost_is_in_the_papers_ballpark() {
        // §4.2.5: average 4.25 cents per query with GPT-4 pricing.
        let (mut cp, ts) = copilot();
        for q in [
            "How many initial registration attempts did the AMF handle?",
            "What is the paging success rate?",
            "How many authentication requests per second?",
        ] {
            cp.ask(q, ts);
        }
        let mean = cp.meter().mean_cents_per_query();
        assert!(
            (1.5..=8.0).contains(&mean),
            "mean cost {mean}¢ outside plausible band"
        );
    }
}

//! Pipeline-side instrument names and recording helpers.
//!
//! Every metric the copilot emits about itself is declared here, in one
//! place, following the `dio_<crate>_<name>_<unit>` naming convention.
//! The [`dio_obs::ObsHub`] carried by the copilot owns the registry and
//! span tracer these helpers write into; the self-observation loop
//! (`dio_obs::ObsScraper`) later scrapes the same registry into the
//! metric store the copilot queries.

use crate::recovery::BreakerState;
use dio_obs::{Buckets, ObsHub, Registry, SpanContext};
use std::time::Instant;

/// Questions the copilot was asked.
pub const ASKS_NAME: &str = "dio_copilot_asks_total";
pub(crate) const ASKS_HELP: &str = "Questions the copilot was asked.";

/// Answers returned, labelled by degradation level.
pub const ANSWERS_NAME: &str = "dio_copilot_answers_total";
pub(crate) const ANSWERS_HELP: &str =
    "Answers the copilot returned, by degradation level (full, repaired, degraded).";

/// Repair rounds run after sandbox rejections.
pub const REPAIRS_NAME: &str = "dio_copilot_repair_rounds_total";
pub(crate) const REPAIRS_HELP: &str =
    "Repair rounds the copilot ran after the sandbox rejected a generated query.";

/// Transient-failure model retries.
pub const RETRIES_NAME: &str = "dio_copilot_model_retries_total";
pub(crate) const RETRIES_HELP: &str =
    "Retries of transient foundation-model failures under the recovery policy.";

/// Recorded (never slept) backoff milliseconds.
pub const BACKOFF_NAME: &str = "dio_copilot_backoff_ms_total";
pub(crate) const BACKOFF_HELP: &str =
    "Milliseconds of deterministic retry backoff the recovery policy recorded.";

/// Circuit-breaker state transitions, labelled by destination state.
pub const BREAKER_NAME: &str = "dio_copilot_breaker_transitions_total";
pub(crate) const BREAKER_HELP: &str =
    "Circuit-breaker state transitions, by destination state (open, half_open, closed).";

/// Vector-index candidates scanned during retrieval.
pub const CANDIDATES_NAME: &str = "dio_copilot_retrieval_candidates_total";
pub(crate) const CANDIDATES_HELP: &str =
    "Vector-index candidates scanned while retrieving context for questions.";

/// Similarity scores of retrieved context samples.
pub const SIMILARITY_NAME: &str = "dio_copilot_retrieval_similarity_ratio";
pub(crate) const SIMILARITY_HELP: &str =
    "Cosine similarity of each retrieved context sample to its question.";

/// Per-stage wall-clock latency.
pub const STAGE_DURATION_NAME: &str = "dio_copilot_stage_duration_micros";
pub(crate) const STAGE_DURATION_HELP: &str =
    "Wall-clock duration of each pipeline stage invocation, in microseconds.";

/// Whole-ask wall-clock latency.
pub const ASK_DURATION_NAME: &str = "dio_copilot_ask_duration_micros";
pub(crate) const ASK_DURATION_HELP: &str =
    "End-to-end wall-clock duration of one ask, in microseconds.";

/// Data-plane faults absorbed, labelled by layer and fault kind.
pub const DATA_FAULTS_NAME: &str = "dio_copilot_data_faults_total";
pub(crate) const DATA_FAULTS_HELP: &str =
    "Data-plane faults the copilot absorbed, by storage layer and fault kind.";

/// Vector-index demotions, labelled by destination tier.
pub const DEMOTIONS_NAME: &str = "dio_copilot_index_demotions_total";
pub(crate) const DEMOTIONS_HELP: &str =
    "Vector-index fallbacks after corruption, by destination tier (ivf, flat).";

/// Answers by data-completeness level.
pub const COMPLETENESS_NAME: &str = "dio_copilot_data_completeness_total";
pub(crate) const COMPLETENESS_HELP: &str =
    "Answers the copilot returned, by data-completeness level (complete, partial).";

/// Asks abandoned because the request budget lapsed, by stage.
pub const DEADLINE_NAME: &str = "dio_copilot_deadline_exceeded_total";
pub(crate) const DEADLINE_HELP: &str =
    "Asks abandoned cooperatively because the request budget lapsed, by pipeline stage.";

/// Stable label value for a breaker state.
pub(crate) fn breaker_slug(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

/// Time `f` as a child span of `parent` named `stage`, and observe the
/// duration in the per-stage latency histogram. `f` receives the stage
/// span's own context so it can parent further children (the execute
/// stage hands its context to the store resolver, which records one
/// span per shard touched).
pub(crate) fn time_stage<T>(
    obs: &ObsHub,
    parent: &SpanContext,
    stage: &str,
    f: impl FnOnce(&SpanContext) -> T,
) -> T {
    let tracer = obs.tracer();
    let ctx = tracer.child_of(parent);
    let start_offset = tracer.clock_micros(&ctx);
    let start = Instant::now();
    let out = f(&ctx);
    let micros = dio_obs::micros_u64(start.elapsed());
    tracer.record_span(&ctx, stage, start_offset, micros, &[]);
    obs.registry()
        .histogram_with(
            STAGE_DURATION_NAME,
            STAGE_DURATION_HELP,
            &Buckets::latency_micros(),
            &[("stage", stage)],
        )
        .observe(micros as f64);
    out
}

/// Count and trace a breaker transition, if one happened.
pub(crate) fn note_breaker_transition(
    obs: &ObsHub,
    ctx: &SpanContext,
    before: BreakerState,
    after: BreakerState,
) {
    if before != after {
        obs.registry()
            .counter_with(BREAKER_NAME, BREAKER_HELP, &[("to", breaker_slug(after))])
            .inc();
        obs.tracer().event(
            ctx,
            "breaker_transition",
            &[("from", breaker_slug(before)), ("to", breaker_slug(after))],
        );
    }
}

/// Pre-register every pipeline instrument at zero so the exporter (and
/// the self-observation catalog) sees them before the first ask.
pub(crate) fn register_zero_instruments(registry: &Registry) {
    registry.counter(ASKS_NAME, ASKS_HELP);
    registry.counter_with(ANSWERS_NAME, ANSWERS_HELP, &[("degradation", "full")]);
    registry.counter(REPAIRS_NAME, REPAIRS_HELP);
    registry.counter(RETRIES_NAME, RETRIES_HELP);
    registry.counter(BACKOFF_NAME, BACKOFF_HELP);
    registry.counter_with(BREAKER_NAME, BREAKER_HELP, &[("to", "open")]);
    registry.counter(CANDIDATES_NAME, CANDIDATES_HELP);
    registry.counter_with(
        DATA_FAULTS_NAME,
        DATA_FAULTS_HELP,
        &[("layer", "tsdb"), ("kind", "transient_io")],
    );
    registry.counter_with(DEMOTIONS_NAME, DEMOTIONS_HELP, &[("to", "flat")]);
    registry.counter_with(COMPLETENESS_NAME, COMPLETENESS_HELP, &[("level", "complete")]);
    registry.counter_with(DEADLINE_NAME, DEADLINE_HELP, &[("stage", "model")]);
    registry.histogram(SIMILARITY_NAME, SIMILARITY_HELP, &Buckets::unit_fractions());
    registry.histogram_with(
        STAGE_DURATION_NAME,
        STAGE_DURATION_HELP,
        &Buckets::latency_micros(),
        &[("stage", "retrieve")],
    );
    registry.histogram(
        ASK_DURATION_NAME,
        ASK_DURATION_HELP,
        &Buckets::latency_micros(),
    );
}

//! A single error taxonomy for everything that can go wrong during an
//! `ask`, replacing the ad-hoc strings the pipeline used to thread
//! through [`crate::CopilotResponse`].

use dio_llm::ModelError;
use dio_sandbox::SandboxError;
use serde::{Deserialize, Serialize};

/// Why (part of) an `ask` failed. Structured so callers can branch on
/// the class; [`std::fmt::Display`] gives the user-facing string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CopilotError {
    /// The model stayed unavailable through every retry (or the circuit
    /// breaker refused to call it).
    ModelUnavailable {
        /// Last upstream message.
        message: String,
        /// Model calls attempted before giving up.
        attempts: usize,
    },
    /// A non-transient model failure (context overflow, unsupported
    /// parameter).
    Model {
        /// The model's diagnosis.
        message: String,
    },
    /// The generated query never parsed, even after repair.
    QueryParse {
        /// Parser diagnosis.
        message: String,
        /// Byte offset of the error in the final attempted query.
        position: usize,
    },
    /// The sandbox policy refused the query, even after repair.
    PolicyRefused {
        /// The violated rule, rendered.
        rule: String,
    },
    /// The query failed at evaluation time, even after repair.
    QueryEval {
        /// Engine diagnosis.
        message: String,
    },
    /// The degraded fallback had nothing to answer from.
    NoData {
        /// What was tried.
        message: String,
    },
    /// A data-plane store failed transiently (tsdb, vecstore,
    /// feedback). Retryable: the query itself is fine.
    StorageFault {
        /// Which storage layer faulted ("tsdb", "vecstore", ...).
        layer: String,
        /// Upstream diagnosis.
        message: String,
    },
    /// A vector index was quarantined after corruption and every
    /// fallback tier was exhausted.
    IndexQuarantined {
        /// Slug of the quarantined index tier.
        index: String,
    },
    /// The request's [`dio_obs::Budget`] lapsed — deadline passed or
    /// the caller cancelled — and the pipeline abandoned the remaining
    /// work cooperatively. Distinct from a shed request: some work may
    /// already have run. Never retried and never sent to the degraded
    /// fallback (that would be more work past the deadline).
    DeadlineExceeded {
        /// The pipeline stage that observed the lapsed budget.
        stage: String,
    },
}

impl CopilotError {
    /// Classify a sandbox failure.
    pub fn from_sandbox(e: &SandboxError) -> Self {
        match e {
            SandboxError::Parse(p) => CopilotError::QueryParse {
                message: p.message.clone(),
                position: p.position,
            },
            SandboxError::Refused(v) => CopilotError::PolicyRefused {
                rule: v.to_string(),
            },
            SandboxError::Eval(m) => CopilotError::QueryEval { message: m.clone() },
            SandboxError::Storage(m) => CopilotError::StorageFault {
                layer: "tsdb".into(),
                message: m.clone(),
            },
        }
    }

    /// Classify a model failure after `attempts` calls.
    pub fn from_model(e: &ModelError, attempts: usize) -> Self {
        if e.is_transient() {
            CopilotError::ModelUnavailable {
                message: e.to_string(),
                attempts,
            }
        } else {
            CopilotError::Model {
                message: e.to_string(),
            }
        }
    }
}

impl std::fmt::Display for CopilotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CopilotError::ModelUnavailable { message, attempts } => {
                write!(f, "model unavailable after {attempts} attempts: {message}")
            }
            CopilotError::Model { message } => write!(f, "model error: {message}"),
            CopilotError::QueryParse { message, position } => {
                write!(f, "parse error at {position}: {message}")
            }
            CopilotError::PolicyRefused { rule } => write!(f, "policy refusal: {rule}"),
            CopilotError::QueryEval { message } => write!(f, "evaluation error: {message}"),
            CopilotError::NoData { message } => write!(f, "no data: {message}"),
            CopilotError::StorageFault { layer, message } => {
                write!(f, "storage fault in {layer}: {message}")
            }
            CopilotError::IndexQuarantined { index } => {
                write!(f, "index quarantined: {index}")
            }
            CopilotError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at stage {stage}")
            }
        }
    }
}

impl std::error::Error for CopilotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_promql::ParseError;

    #[test]
    fn sandbox_failures_classify() {
        let parse = SandboxError::Parse(ParseError::new("unexpected ')'", 7));
        assert_eq!(
            CopilotError::from_sandbox(&parse),
            CopilotError::QueryParse {
                message: "unexpected ')'".into(),
                position: 7
            }
        );
        let eval = SandboxError::Eval("budget".into());
        assert!(matches!(
            CopilotError::from_sandbox(&eval),
            CopilotError::QueryEval { .. }
        ));
        let storage = SandboxError::Storage("tsdb read timed out".into());
        assert_eq!(
            CopilotError::from_sandbox(&storage),
            CopilotError::StorageFault {
                layer: "tsdb".into(),
                message: "tsdb read timed out".into()
            }
        );
    }

    #[test]
    fn model_failures_split_on_transience() {
        let transient = ModelError::Unavailable("503".into());
        assert!(matches!(
            CopilotError::from_model(&transient, 3),
            CopilotError::ModelUnavailable { attempts: 3, .. }
        ));
        let hard = ModelError::Unsupported("temperature".into());
        assert!(matches!(
            CopilotError::from_model(&hard, 1),
            CopilotError::Model { .. }
        ));
    }

    #[test]
    fn display_strings_are_prefixed_by_class() {
        let e = CopilotError::QueryParse {
            message: "m".into(),
            position: 3,
        };
        assert_eq!(e.to_string(), "parse error at 3: m");
        let e = CopilotError::ModelUnavailable {
            message: "down".into(),
            attempts: 2,
        };
        assert_eq!(e.to_string(), "model unavailable after 2 attempts: down");
        let e = CopilotError::StorageFault {
            layer: "vecstore".into(),
            message: "crc mismatch".into(),
        };
        assert_eq!(e.to_string(), "storage fault in vecstore: crc mismatch");
        let e = CopilotError::IndexQuarantined { index: "hnsw".into() };
        assert_eq!(e.to_string(), "index quarantined: hnsw");
        let e = CopilotError::DeadlineExceeded {
            stage: "generate".into(),
        };
        assert_eq!(e.to_string(), "deadline exceeded at stage generate");
    }
}

//! Recovery policy, circuit breaker, and degradation accounting for the
//! copilot's self-repairing execution loop.
//!
//! The pipeline treats every model call and sandbox execution as
//! fallible. Recovery is layered:
//!
//! 1. **Retries** — transient model failures ([`dio_llm::ModelError::is_transient`])
//!    are retried with a deterministic exponential backoff that is
//!    *recorded, never slept* (determinism forbids touching the clock);
//! 2. **Repair rounds** — a query the sandbox rejects is sent back to
//!    the model with the sandbox's structured hint
//!    ([`dio_sandbox::SandboxError::repair_hint`]) under
//!    [`dio_llm::TaskKind::RepairPromql`];
//! 3. **Circuit breaker** — after `breaker_threshold` consecutive model
//!    failures the breaker opens and model calls are skipped entirely
//!    for `breaker_cooldown` would-be calls, then half-opens to probe;
//! 4. **Graceful degradation** — when every layer is exhausted the
//!    copilot answers from the top retrieved metric directly and labels
//!    the response [`DegradationLevel::Degraded`].

use serde::{Deserialize, Serialize};

/// Bounds on the recovery behaviour. Stored in
/// [`crate::CopilotConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Master switch. `false` reproduces the pre-recovery pipeline:
    /// one model call, one execution, errors surface immediately.
    pub enabled: bool,
    /// Maximum repair rounds after a sandbox rejection.
    pub max_repair_rounds: usize,
    /// Maximum retries of a transient model failure (per call site).
    pub max_retries: usize,
    /// First backoff interval; the schedule doubles each retry. The
    /// schedule is recorded in the trace, not slept.
    pub backoff_base_ms: u64,
    /// Consecutive model failures that open the circuit breaker.
    pub breaker_threshold: usize,
    /// Model calls skipped while the breaker is open before it
    /// half-opens to probe.
    pub breaker_cooldown: usize,
    /// Seed for decorrelated backoff jitter. `None` — the default —
    /// keeps the pure doubling schedule. `Some(seed)` draws each
    /// interval independently from the upper half of its nominal range
    /// (`[base·2ⁿ⁄2, base·2ⁿ]`), mixing the seed and the retry index
    /// through a splitmix-style hash: reproducible for one client,
    /// decorrelated across clients with different seeds, so a fleet
    /// retrying the same outage does not re-converge in lockstep.
    #[serde(default)]
    pub backoff_jitter_seed: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_repair_rounds: 2,
            max_retries: 2,
            backoff_base_ms: 100,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            backoff_jitter_seed: None,
        }
    }
}

impl RecoveryPolicy {
    /// The ablation baseline: no retries, no repair, no breaker.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            max_repair_rounds: 0,
            max_retries: 0,
            backoff_base_ms: 0,
            breaker_threshold: usize::MAX,
            breaker_cooldown: 0,
            backoff_jitter_seed: None,
        }
    }

    /// The recorded backoff before retry `n` (0-based), doubling from
    /// the base. With [`RecoveryPolicy::backoff_jitter_seed`] set, the
    /// interval is jittered into `[nominal⁄2, nominal]`
    /// deterministically from `(seed, retry)`.
    pub fn backoff_ms(&self, retry: usize) -> u64 {
        let nominal = self.backoff_base_ms.saturating_mul(1u64 << retry.min(16));
        match self.backoff_jitter_seed {
            None => nominal,
            Some(seed) => {
                if nominal == 0 {
                    return 0;
                }
                let lo = nominal / 2;
                let span = nominal - lo + 1;
                let h = splitmix64(
                    seed ^ (retry as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                lo + h % span
            }
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash used to derive the
/// jitter draw from `(seed, retry)` without carrying RNG state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: calls pass through.
    Closed,
    /// Tripped: calls are refused without reaching the model.
    Open,
    /// Probing: one call passes; success closes, failure re-opens.
    HalfOpen,
}

/// Consecutive-failure circuit breaker for model calls. Lives on the
/// copilot so state carries across `ask` invocations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: usize,
    cooldown_remaining: usize,
    trips: usize,
    threshold: usize,
    cooldown: usize,
    /// The cooldown the next trip will impose. Starts at the policy
    /// cooldown; doubles every time a half-open probe fails (the
    /// upstream is still sick, so probe less often) and resets on any
    /// success.
    current_cooldown: usize,
}

impl CircuitBreaker {
    /// A closed breaker with the policy's threshold/cooldown.
    pub fn new(policy: &RecoveryPolicy) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_remaining: 0,
            trips: 0,
            threshold: policy.breaker_threshold,
            cooldown: policy.breaker_cooldown,
            current_cooldown: policy.breaker_cooldown,
        }
    }

    /// A breaker latched open: every call is refused and the cooldown
    /// never elapses, so an ask spends zero model calls and lands on
    /// the degraded direct-lookup fallback. The serving tier swaps
    /// this in for the brownout ladder's cache-or-degraded level
    /// ([`crate::DioCopilot::ask_degraded`]) and restores the real
    /// breaker afterwards.
    pub fn latched_open() -> Self {
        CircuitBreaker {
            state: BreakerState::Open,
            consecutive_failures: 0,
            cooldown_remaining: usize::MAX,
            trips: 0,
            threshold: usize::MAX,
            cooldown: usize::MAX,
            current_cooldown: usize::MAX,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has opened.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> usize {
        self.consecutive_failures
    }

    /// The cooldown the next trip will impose (doubles on failed
    /// half-open probes, resets on success).
    pub fn current_cooldown(&self) -> usize {
        self.current_cooldown
    }

    /// Ask permission to place a model call. While open, each refusal
    /// counts down the cooldown; when it reaches zero the breaker
    /// half-opens and the next request is admitted as a probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.cooldown_remaining > 1 {
                    self.cooldown_remaining -= 1;
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    true
                }
            }
        }
    }

    /// Record a successful model call. Fully closes the breaker, resets
    /// the failure streak, and restores the base cooldown for any
    /// future trip.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.current_cooldown = self.cooldown;
    }

    /// Record a failed model call. Returns `true` when this failure
    /// opened the breaker. A failed half-open probe re-opens with a
    /// doubled cooldown — the upstream proved it is still sick, so the
    /// next probe waits longer.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive_failures += 1;
        let (should_open, escalate) = match self.state {
            // A failed half-open probe re-opens immediately, escalated.
            BreakerState::HalfOpen => (true, true),
            BreakerState::Closed => (self.consecutive_failures >= self.threshold, false),
            BreakerState::Open => (false, false),
        };
        if should_open {
            if escalate {
                self.current_cooldown = self.current_cooldown.max(1).saturating_mul(2);
            }
            self.state = BreakerState::Open;
            self.cooldown_remaining = self.current_cooldown.max(1);
            self.trips += 1;
        }
        should_open
    }
}

/// How much of the full pipeline stood behind an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DegradationLevel {
    /// The first generated query executed cleanly.
    #[default]
    Full,
    /// A repair round produced the executed query.
    Repaired,
    /// Repair was exhausted (or the breaker was open); the answer is a
    /// direct lookup of the top retrieved metric.
    Degraded,
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradationLevel::Full => "full",
            DegradationLevel::Repaired => "repaired",
            DegradationLevel::Degraded => "degraded",
        })
    }
}

/// What recovery did during one `ask`, surfaced in
/// [`crate::PipelineTrace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RecoveryStats {
    /// Model calls attempted (including retries and repairs).
    pub attempts: usize,
    /// Repair rounds run after sandbox rejections.
    pub repairs: usize,
    /// Transient-failure retries.
    pub retries: usize,
    /// Breaker openings during this ask.
    pub breaker_trips: usize,
    /// Whether the answer came from the degraded fallback.
    pub degraded: bool,
    /// The deterministic backoff schedule that *would* have been slept,
    /// in order (recorded for the trace; no wall-clock is touched).
    pub backoff_schedule_ms: Vec<u64>,
    /// Data-plane faults (storage, retrieval index) absorbed during
    /// this ask.
    pub data_faults: usize,
    /// Vector-index fallbacks (HNSW → IVF → flat) taken after index
    /// corruption.
    pub index_demotions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let policy = RecoveryPolicy {
            breaker_threshold: 3,
            breaker_cooldown: 2,
            ..RecoveryPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure()); // third one trips
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(&RecoveryPolicy::default());
        b.record_failure();
        b.record_failure();
        b.record_success();
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_refuses_then_half_opens() {
        let policy = RecoveryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: 2,
            ..RecoveryPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow()); // cooldown tick 1
        assert!(b.allow()); // cooldown exhausted → half-open probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_outcome_decides_state() {
        let policy = RecoveryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: 1,
            ..RecoveryPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.record_failure();
        assert!(b.allow()); // cooldown 1 → straight to half-open
        assert!(b.record_failure()); // failed probe re-opens (counts as a trip)
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The failed probe doubled the cooldown (1 → 2): one refusal
        // before the next probe is admitted.
        assert!(!b.allow());
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_success_fully_closes_and_resets_failure_count() {
        let policy = RecoveryPolicy {
            breaker_threshold: 2,
            breaker_cooldown: 1,
            ..RecoveryPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.record_failure();
        b.record_failure(); // trips
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow()); // half-open probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        // The streak really is reset: it takes the full threshold of
        // fresh failures to trip again.
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn failed_half_open_probes_escalate_the_cooldown() {
        let policy = RecoveryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: 2,
            ..RecoveryPolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.record_failure(); // trip #1, cooldown 2
        assert_eq!(b.current_cooldown(), 2);
        assert!(!b.allow());
        assert!(b.allow()); // probe #1
        b.record_failure(); // re-open with cooldown 4
        assert_eq!(b.current_cooldown(), 4);
        for i in 0..3 {
            assert!(!b.allow(), "refusal {i} of the doubled cooldown");
        }
        assert!(b.allow()); // probe #2
        b.record_failure(); // re-open with cooldown 8
        assert_eq!(b.current_cooldown(), 8);
        // A success anywhere restores the base cooldown.
        for _ in 0..7 {
            assert!(!b.allow());
        }
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.current_cooldown(), 2);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn latched_open_breaker_never_admits() {
        let mut b = CircuitBreaker::latched_open();
        for _ in 0..1_000 {
            assert!(!b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 0, "a latched breaker never counts trips");
    }

    #[test]
    fn backoff_schedule_doubles_from_base() {
        let p = RecoveryPolicy {
            backoff_base_ms: 100,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff_ms(0), 100);
        assert_eq!(p.backoff_ms(1), 200);
        assert_eq!(p.backoff_ms(2), 400);
    }

    #[test]
    fn jittered_backoff_is_bounded_and_reproducible() {
        let p = RecoveryPolicy {
            backoff_base_ms: 100,
            backoff_jitter_seed: Some(0x5eed),
            ..RecoveryPolicy::default()
        };
        for retry in 0..8 {
            let nominal = 100u64 << retry;
            let j = p.backoff_ms(retry);
            assert!(
                (nominal / 2..=nominal).contains(&j),
                "retry {retry}: {j} outside [{}, {nominal}]",
                nominal / 2
            );
            // Same policy, same retry: same draw.
            assert_eq!(j, p.backoff_ms(retry));
        }
    }

    #[test]
    fn disabled_policy_bounds_everything_to_zero() {
        let p = RecoveryPolicy::disabled();
        assert!(!p.enabled);
        assert_eq!(p.max_repair_rounds, 0);
        assert_eq!(p.max_retries, 0);
    }

    #[test]
    fn degradation_levels_render() {
        assert_eq!(DegradationLevel::Full.to_string(), "full");
        assert_eq!(DegradationLevel::Repaired.to_string(), "repaired");
        assert_eq!(DegradationLevel::Degraded.to_string(), "degraded");
        assert_eq!(DegradationLevel::default(), DegradationLevel::Full);
    }
}

//! # dio-copilot
//!
//! **Data Intelligence for Operators Copilot** — the paper's primary
//! contribution: a natural-language interface for retrieval and
//! analytics over operator data.
//!
//! The pipeline reproduces Figure 2 of the paper end-to-end:
//!
//! 1. **Domain-specific database** ([`dio_catalog::DomainDb`]): 3000+
//!    metric descriptions plus bespoke expert functions;
//! 2. **Context extraction** ([`extractor`]): embed the question
//!    (sentence-embedder substitute for all-MiniLM-L6-v2), cosine-search
//!    the vector store (FAISS substitute), keep the top-29 samples;
//! 3. **Relevant-metric identification**: prompt the foundation model
//!    to name the metrics in context that answer the question;
//! 4. **Few-shot code generation**: prompt the model with 20 expert
//!    exemplars to emit PromQL (and dashboard panel queries);
//! 5. **Sandboxed execution** ([`dio_sandbox`]): vet and run the
//!    generated query against the metrics store for a *numerically
//!    accurate* answer;
//! 6. **Dashboard generation** ([`dio_dashboard`]);
//! 7. **Expert feedback** ([`dio_feedback`]): raise-hand files an
//!    issue; expert resolutions grow the domain DB and the few-shot
//!    pool, and the copilot re-indexes.
//!
//! ```no_run
//! use dio_copilot::{CopilotBuilder, CopilotConfig};
//! # let db = dio_catalog::DomainDb::standard();
//! # let store = dio_tsdb::MetricStore::new();
//! let mut copilot = CopilotBuilder::new(db, store).build();
//! let response = copilot.ask("How many PDU sessions are currently active?", 0);
//! println!("{}", response.render());
//! ```

pub mod answer;
pub mod config;
pub mod error;
pub mod extractor;
pub mod obs;
pub mod pipeline;
pub mod recovery;
pub mod session;
pub mod trace;

pub use answer::{CopilotResponse, RelevantMetric};
pub use config::CopilotConfig;
pub use error::CopilotError;
pub use extractor::{ContextExtractor, RetrievalMode, RetrievalStats};
pub use pipeline::{CopilotBuilder, DioCopilot};
pub use recovery::{
    BreakerState, CircuitBreaker, DegradationLevel, RecoveryPolicy, RecoveryStats,
};
pub use session::{ChatSession, Turn};
pub use trace::{PipelineTrace, ShardTiming, StageAggregate, StageTiming};

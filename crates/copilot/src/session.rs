//! Multi-turn chat sessions.
//!
//! The paper's UI (Figure 1b) is a chat: operators ask follow-ups like
//! *"and at the SMF?"* that only make sense against the previous turn.
//! [`ChatSession`] wraps a [`DioCopilot`] with deterministic follow-up
//! resolution: an elliptical question is rewritten against the previous
//! *resolved* question before entering the pipeline, so every stage
//! downstream (retrieval, the model, the sandbox) sees a self-contained
//! query.

use crate::answer::CopilotResponse;
use crate::pipeline::DioCopilot;

/// One conversation turn.
#[derive(Debug, Clone)]
pub struct Turn {
    /// What the user typed.
    pub raw: String,
    /// The self-contained question after follow-up resolution.
    pub resolved: String,
    /// The copilot's response.
    pub response: CopilotResponse,
}

/// A stateful conversation over one copilot.
pub struct ChatSession<'a> {
    copilot: &'a mut DioCopilot,
    turns: Vec<Turn>,
}

/// Leading phrases that mark a follow-up.
const FOLLOWUP_PREFIXES: &[&str] = &[
    "and ",
    "what about ",
    "how about ",
    "same for ",
    "also ",
    "now ",
];

/// Network-function mentions that a follow-up can swap.
const NF_WORDS: &[&str] = &["amf", "smf", "nrf", "nssf", "n3iwf", "upf"];

impl<'a> ChatSession<'a> {
    /// Start a session on a copilot.
    pub fn new(copilot: &'a mut DioCopilot) -> Self {
        ChatSession {
            copilot,
            turns: Vec::new(),
        }
    }

    /// Conversation history.
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Ask a question; elliptical follow-ups are resolved against the
    /// previous turn.
    pub fn ask(&mut self, question: &str, ts: i64) -> &Turn {
        let resolved = match self.turns.last() {
            Some(prev) => resolve_followup(question, &prev.resolved),
            None => question.to_string(),
        };
        let response = self.copilot.ask(&resolved, ts);
        self.turns.push(Turn {
            raw: question.to_string(),
            resolved,
            response,
        });
        self.turns.last().expect("just pushed")
    }
}

/// Rewrite `question` against `previous` when it is elliptical;
/// otherwise return it unchanged.
///
/// Two resolution rules cover the overwhelmingly common operator
/// follow-ups:
///
/// 1. **Entity swap** — "and at the SMF?" keeps the previous question
///    but substitutes the network function (and clears any previous
///    NF-specific counter context by plain word replacement).
/// 2. **Fragment splice** — "what about failures due to congestion?"
///    replaces the *tail* of the previous question (after its subject
///    phrase) when no NF is mentioned; implemented as: previous question
///    with its final punctuation dropped, plus the fragment introduced
///    by "— specifically".
pub fn resolve_followup(question: &str, previous: &str) -> String {
    let trimmed = question.trim();
    let lower = trimmed.to_lowercase();

    let fragment = FOLLOWUP_PREFIXES
        .iter()
        .find_map(|p| lower.strip_prefix(p))
        .map(|rest| rest.trim_end_matches(['?', '.', '!']).trim().to_string());

    let Some(fragment) = fragment else {
        // Not prefixed: treat very short questions with a leading
        // preposition as entity swaps too ("at the SMF?").
        if lower.starts_with("at the ") || lower.starts_with("for the ") || lower.starts_with("on the ") {
            let frag = lower
                .trim_end_matches(['?', '.', '!'])
                .trim()
                .to_string();
            return splice(previous, &frag);
        }
        return trimmed.to_string();
    };

    splice(previous, &fragment)
}

fn splice(previous: &str, fragment: &str) -> String {
    // Entity swap: fragment mentions an NF → substitute it into the
    // previous question.
    let frag_nf = NF_WORDS
        .iter()
        .find(|nf| fragment.split_whitespace().any(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric()).eq_ignore_ascii_case(nf)
        }));
    if let Some(nf) = frag_nf {
        let mut out_words: Vec<String> = Vec::new();
        let mut swapped = false;
        for w in previous.split_whitespace() {
            let bare = w.trim_matches(|c: char| !c.is_alphanumeric());
            if NF_WORDS.iter().any(|p| bare.eq_ignore_ascii_case(p)) {
                out_words.push(w.replace(bare, &nf.to_uppercase()));
                swapped = true;
            } else {
                out_words.push(w.to_string());
            }
        }
        if swapped {
            return out_words.join(" ");
        }
        // Previous had no NF mention: append the location phrase.
        return format!(
            "{} at the {}?",
            previous.trim_end_matches(['?', '.', '!']),
            nf.to_uppercase()
        );
    }

    // Fragment splice: carry the previous question, narrow by fragment.
    format!(
        "{} — specifically {}?",
        previous.trim_end_matches(['?', '.', '!']),
        fragment
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_questions_pass_through() {
        let prev = "How many paging attempts did the AMF handle?";
        assert_eq!(
            resolve_followup("How many PDU sessions are active?", prev),
            "How many PDU sessions are active?"
        );
    }

    #[test]
    fn nf_swap_followup() {
        let prev = "How many initial registration attempts did the AMF handle?";
        assert_eq!(
            resolve_followup("And at the SMF?", prev),
            "How many initial registration attempts did the SMF handle?"
        );
        assert_eq!(
            resolve_followup("at the UPF?", prev),
            "How many initial registration attempts did the UPF handle?"
        );
    }

    #[test]
    fn nf_append_when_previous_has_no_nf() {
        let prev = "How many N4 session establishment attempts were recorded?";
        assert_eq!(
            resolve_followup("what about the UPF?", prev),
            "How many N4 session establishment attempts were recorded at the UPF?"
        );
    }

    #[test]
    fn fragment_splice_followup() {
        let prev = "How many initial registration attempts did the AMF handle?";
        let out = resolve_followup("what about failures due to congestion?", prev);
        assert!(out.starts_with("How many initial registration attempts did the AMF handle"));
        assert!(out.contains("specifically failures due to congestion"));
    }

    #[test]
    fn resolution_is_deterministic() {
        let prev = "What is the paging success rate at the AMF?";
        let a = resolve_followup("and the smf?", prev);
        let b = resolve_followup("and the smf?", prev);
        assert_eq!(a, b);
        assert!(a.contains("SMF"));
    }
}

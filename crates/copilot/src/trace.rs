//! Per-stage pipeline timing (the measurable counterpart of the
//! paper's Figure 2 architecture diagram).
//!
//! Since the `dio-obs` integration this is a thin *view* over the span
//! tracer: the pipeline records spans against a per-`ask` trace and
//! [`PipelineTrace::from_spans`] projects them into the serialisable
//! per-stage shape reports consume. Every entry is keyed by its
//! `span_id`, so same-named spans from concurrent shards stay distinct
//! (the old name-only view silently collapsed them), and span
//! attributes ride along — [`PipelineTrace::shard_breakdown`] surfaces
//! the per-shard fan-out the bench artifacts publish.

use crate::recovery::RecoveryStats;
use dio_obs::SpanRecord;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One stage invocation's wall-clock timing. Durations are `u64`
/// microseconds everywhere (saturating on conversion) — enough for
/// ~584k years, and immune to the silent truncation a `u128` invited in
/// downstream report code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`retrieve`, `identify`, `generate`, `execute`,
    /// `shard_read`, `dashboard`, ...).
    pub stage: String,
    /// Duration in microseconds.
    pub micros: u64,
    /// The underlying span's ID — distinguishes concurrent same-named
    /// spans (one `shard_read` per shard touched).
    pub span_id: u64,
    /// The parent span's ID (`None` for spans recorded directly under
    /// the trace root, and for synthetic entries).
    pub parent_span_id: Option<u64>,
    /// Start offset from the trace begin, microseconds.
    pub start_micros: u64,
    /// Span attributes, e.g. `[("shard", "3"), ("path", "gather")]`.
    pub attrs: Vec<(String, String)>,
}

impl StageTiming {
    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Aggregate over every invocation of one stage within a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAggregate {
    /// Stage name.
    pub stage: String,
    /// How many times the stage ran (> 1 inside the repair loop).
    pub invocations: usize,
    /// Total microseconds across all invocations.
    pub total_micros: u64,
}

/// Aggregate of the spans one shard contributed to a trace — the
/// per-shard breakdown of a scatter-gather execute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTiming {
    /// The shard ID (the `shard` span attribute).
    pub shard: String,
    /// Routing path that touched it (`pushdown`, `gather`,
    /// `gather_all`).
    pub path: String,
    /// Spans this shard contributed.
    pub invocations: usize,
    /// Total microseconds across them.
    pub total_micros: u64,
}

/// Trace of one `ask` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Per-invocation stage timings in recording order, keyed by
    /// `span_id`. A stage name may repeat; use [`PipelineTrace::stage`]
    /// for the aggregate view.
    pub stages: Vec<StageTiming>,
    /// What the recovery machinery did (attempts, repairs, backoff
    /// schedule, breaker trips, degradation).
    pub recovery: RecoveryStats,
}

impl PipelineTrace {
    /// Project tracer spans (plus recovery stats) into a trace.
    pub fn from_spans(spans: &[SpanRecord], recovery: RecoveryStats) -> Self {
        PipelineTrace {
            stages: spans
                .iter()
                .map(|s| StageTiming {
                    stage: s.name.clone(),
                    micros: s.micros,
                    span_id: s.span_id,
                    parent_span_id: s.parent_span_id,
                    start_micros: s.start_micros,
                    attrs: s.attrs.clone(),
                })
                .collect(),
            recovery,
        }
    }

    /// Time a closure and record it as one invocation of `stage`
    /// (synthetic entry: no span identity).
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stages.push(StageTiming {
            stage: stage.to_string(),
            micros: dio_obs::micros_u64(start.elapsed()),
            span_id: 0,
            parent_span_id: None,
            start_micros: 0,
            attrs: Vec::new(),
        });
        out
    }

    /// Total traced time in microseconds (saturating).
    pub fn total_micros(&self) -> u64 {
        self.stages
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.micros))
    }

    /// Aggregate timing of one stage across all its invocations, if it
    /// ran at all. Unlike a first-match lookup, repair-loop re-entries
    /// are counted, not hidden.
    pub fn stage(&self, name: &str) -> Option<StageAggregate> {
        let mut agg: Option<StageAggregate> = None;
        for s in self.stages.iter().filter(|s| s.stage == name) {
            let a = agg.get_or_insert_with(|| StageAggregate {
                stage: name.to_string(),
                invocations: 0,
                total_micros: 0,
            });
            a.invocations += 1;
            a.total_micros = a.total_micros.saturating_add(s.micros);
        }
        agg
    }

    /// Number of times `name` ran.
    pub fn invocations(&self, name: &str) -> usize {
        self.stages.iter().filter(|s| s.stage == name).count()
    }

    /// Aggregates for every stage, in first-appearance order.
    pub fn aggregates(&self) -> Vec<StageAggregate> {
        let mut order: Vec<&str> = Vec::new();
        for s in &self.stages {
            if !order.contains(&s.stage.as_str()) {
                order.push(&s.stage);
            }
        }
        order
            .into_iter()
            .filter_map(|name| self.stage(name))
            .collect()
    }

    /// Per-shard aggregates over every span tagged with a `shard`
    /// attribute, in first-appearance order. Empty when the trace never
    /// touched a sharded store.
    pub fn shard_breakdown(&self) -> Vec<ShardTiming> {
        let mut out: Vec<ShardTiming> = Vec::new();
        for s in &self.stages {
            let Some(shard) = s.attr("shard") else {
                continue;
            };
            let path = s.attr("path").unwrap_or("").to_string();
            match out.iter_mut().find(|t| t.shard == shard && t.path == path) {
                Some(t) => {
                    t.invocations += 1;
                    t.total_micros = t.total_micros.saturating_add(s.micros);
                }
                None => out.push(ShardTiming {
                    shard: shard.to_string(),
                    path,
                    invocations: 1,
                    total_micros: s.micros,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(stage: &str, micros: u64, span_id: u64) -> StageTiming {
        StageTiming {
            stage: stage.into(),
            micros,
            span_id,
            parent_span_id: None,
            start_micros: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn records_stages_in_order() {
        let mut t = PipelineTrace::default();
        let x = t.time("retrieve", || 42);
        assert_eq!(x, 42);
        t.time("generate", || ());
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].stage, "retrieve");
        assert_eq!(t.stages[1].stage, "generate");
        assert!(t.stage("retrieve").is_some());
        assert!(t.stage("missing").is_none());
        assert!(t.total_micros() >= t.stages[0].micros);
    }

    #[test]
    fn duplicate_stages_aggregate_and_keep_entries() {
        let t = PipelineTrace {
            stages: vec![
                timing("generate", 10, 1),
                timing("execute", 5, 2),
                timing("generate", 30, 3),
                timing("execute", 7, 4),
            ],
            recovery: RecoveryStats::default(),
        };
        // Per-invocation entries survive…
        assert_eq!(t.stages.len(), 4);
        assert_eq!(t.invocations("execute"), 2);
        // …and the lookup aggregates instead of returning the first hit.
        let gen = t.stage("generate").unwrap();
        assert_eq!(gen.invocations, 2);
        assert_eq!(gen.total_micros, 40);
        let aggs = t.aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].stage, "generate");
        assert_eq!(aggs[1].total_micros, 12);
        assert_eq!(t.total_micros(), 52);
    }

    #[test]
    fn builds_from_tracer_spans_keyed_by_span_id() {
        let tracer = dio_obs::Tracer::new();
        let root = tracer.begin_trace("q");
        let r = tracer.child_of(&root);
        tracer.record_span(&r, "retrieve", 0, 100, &[]);
        let execute = tracer.child_of(&root);
        // Two concurrent shard reads under one execute: same name,
        // distinct span IDs — the per-span view must keep both.
        let s1 = tracer.child_of(&execute);
        tracer.record_span(&s1, "shard_read", 5, 20, &[("shard", "0"), ("path", "gather")]);
        let s2 = tracer.child_of(&execute);
        tracer.record_span(&s2, "shard_read", 5, 30, &[("shard", "1"), ("path", "gather")]);
        tracer.record_span(&execute, "execute", 4, 60, &[]);
        let stats = RecoveryStats {
            repairs: 1,
            ..RecoveryStats::default()
        };
        let t = PipelineTrace::from_spans(&tracer.spans(root.trace_id), stats.clone());
        assert_eq!(t.stages.len(), 4);
        assert_eq!(t.invocations("shard_read"), 2);
        let ids: Vec<u64> = t
            .stages
            .iter()
            .filter(|s| s.stage == "shard_read")
            .map(|s| s.span_id)
            .collect();
        assert_ne!(ids[0], ids[1]);
        assert_eq!(t.stage("shard_read").unwrap().total_micros, 50);
        let shards = t.shard_breakdown();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].shard, "0");
        assert_eq!(shards[0].path, "gather");
        assert_eq!(shards[1].total_micros, 30);
        assert_eq!(t.recovery, stats);
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        let t = PipelineTrace {
            stages: vec![timing("a", u64::MAX, 1), timing("a", 10, 2)],
            recovery: RecoveryStats::default(),
        };
        assert_eq!(t.total_micros(), u64::MAX);
        assert_eq!(t.stage("a").unwrap().total_micros, u64::MAX);
    }
}

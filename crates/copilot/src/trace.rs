//! Per-stage pipeline timing (the measurable counterpart of the
//! paper's Figure 2 architecture diagram).

use crate::recovery::RecoveryStats;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One stage's wall-clock timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`retrieve`, `identify`, `generate`, `execute`,
    /// `dashboard`).
    pub stage: String,
    /// Duration in microseconds.
    pub micros: u128,
}

/// Trace of one `ask` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Stage timings in execution order.
    pub stages: Vec<StageTiming>,
    /// What the recovery machinery did (attempts, repairs, backoff
    /// schedule, breaker trips, degradation).
    pub recovery: RecoveryStats,
}

impl PipelineTrace {
    /// Time a closure and record it as `stage`.
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stages.push(StageTiming {
            stage: stage.to_string(),
            micros: start.elapsed().as_micros(),
        });
        out
    }

    /// Total traced time in microseconds.
    pub fn total_micros(&self) -> u128 {
        self.stages.iter().map(|s| s.micros).sum()
    }

    /// Timing of one stage, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_stages_in_order() {
        let mut t = PipelineTrace::default();
        let x = t.time("retrieve", || 42);
        assert_eq!(x, 42);
        t.time("generate", || ());
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].stage, "retrieve");
        assert_eq!(t.stages[1].stage, "generate");
        assert!(t.stage("retrieve").is_some());
        assert!(t.stage("missing").is_none());
        assert!(t.total_micros() >= t.stages[0].micros);
    }
}

//! Per-stage pipeline timing (the measurable counterpart of the
//! paper's Figure 2 architecture diagram).
//!
//! Since the `dio-obs` integration this is a thin *view* over the span
//! tracer: the pipeline records spans against a per-`ask` correlation
//! ID and [`PipelineTrace::from_spans`] projects them into the
//! serialisable per-stage shape reports consume. Repeated stages (the
//! repair loop re-enters `generate`/`execute`) keep one entry per
//! invocation; [`PipelineTrace::stage`] aggregates them.

use crate::recovery::RecoveryStats;
use dio_obs::SpanRecord;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One stage invocation's wall-clock timing. Durations are `u64`
/// microseconds everywhere (saturating on conversion) — enough for
/// ~584k years, and immune to the silent truncation a `u128` invited in
/// downstream report code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`retrieve`, `identify`, `generate`, `execute`,
    /// `dashboard`).
    pub stage: String,
    /// Duration in microseconds.
    pub micros: u64,
}

/// Aggregate over every invocation of one stage within a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAggregate {
    /// Stage name.
    pub stage: String,
    /// How many times the stage ran (> 1 inside the repair loop).
    pub invocations: usize,
    /// Total microseconds across all invocations.
    pub total_micros: u64,
}

/// Trace of one `ask` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Per-invocation stage timings in execution order. A stage name
    /// may repeat; use [`PipelineTrace::stage`] for the aggregate view.
    pub stages: Vec<StageTiming>,
    /// What the recovery machinery did (attempts, repairs, backoff
    /// schedule, breaker trips, degradation).
    pub recovery: RecoveryStats,
}

impl PipelineTrace {
    /// Project tracer spans (plus recovery stats) into a trace.
    pub fn from_spans(spans: &[SpanRecord], recovery: RecoveryStats) -> Self {
        PipelineTrace {
            stages: spans
                .iter()
                .map(|s| StageTiming {
                    stage: s.name.clone(),
                    micros: s.micros,
                })
                .collect(),
            recovery,
        }
    }

    /// Time a closure and record it as one invocation of `stage`.
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stages.push(StageTiming {
            stage: stage.to_string(),
            micros: dio_obs::micros_u64(start.elapsed()),
        });
        out
    }

    /// Total traced time in microseconds (saturating).
    pub fn total_micros(&self) -> u64 {
        self.stages
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.micros))
    }

    /// Aggregate timing of one stage across all its invocations, if it
    /// ran at all. Unlike a first-match lookup, repair-loop re-entries
    /// are counted, not hidden.
    pub fn stage(&self, name: &str) -> Option<StageAggregate> {
        let mut agg: Option<StageAggregate> = None;
        for s in self.stages.iter().filter(|s| s.stage == name) {
            let a = agg.get_or_insert_with(|| StageAggregate {
                stage: name.to_string(),
                invocations: 0,
                total_micros: 0,
            });
            a.invocations += 1;
            a.total_micros = a.total_micros.saturating_add(s.micros);
        }
        agg
    }

    /// Number of times `name` ran.
    pub fn invocations(&self, name: &str) -> usize {
        self.stages.iter().filter(|s| s.stage == name).count()
    }

    /// Aggregates for every stage, in first-appearance order.
    pub fn aggregates(&self) -> Vec<StageAggregate> {
        let mut order: Vec<&str> = Vec::new();
        for s in &self.stages {
            if !order.contains(&s.stage.as_str()) {
                order.push(&s.stage);
            }
        }
        order
            .into_iter()
            .filter_map(|name| self.stage(name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_stages_in_order() {
        let mut t = PipelineTrace::default();
        let x = t.time("retrieve", || 42);
        assert_eq!(x, 42);
        t.time("generate", || ());
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].stage, "retrieve");
        assert_eq!(t.stages[1].stage, "generate");
        assert!(t.stage("retrieve").is_some());
        assert!(t.stage("missing").is_none());
        assert!(t.total_micros() >= t.stages[0].micros);
    }

    #[test]
    fn duplicate_stages_aggregate_and_keep_entries() {
        let t = PipelineTrace {
            stages: vec![
                StageTiming { stage: "generate".into(), micros: 10 },
                StageTiming { stage: "execute".into(), micros: 5 },
                StageTiming { stage: "generate".into(), micros: 30 },
                StageTiming { stage: "execute".into(), micros: 7 },
            ],
            recovery: RecoveryStats::default(),
        };
        // Per-invocation entries survive…
        assert_eq!(t.stages.len(), 4);
        assert_eq!(t.invocations("execute"), 2);
        // …and the lookup aggregates instead of returning the first hit.
        let gen = t.stage("generate").unwrap();
        assert_eq!(gen.invocations, 2);
        assert_eq!(gen.total_micros, 40);
        let aggs = t.aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].stage, "generate");
        assert_eq!(aggs[1].total_micros, 12);
        assert_eq!(t.total_micros(), 52);
    }

    #[test]
    fn builds_from_tracer_spans() {
        let tracer = dio_obs::Tracer::new();
        let id = tracer.begin("q");
        tracer.record_span(id, "retrieve", 100);
        tracer.record_span(id, "execute", 20);
        tracer.record_span(id, "execute", 30);
        let stats = RecoveryStats {
            repairs: 1,
            ..RecoveryStats::default()
        };
        let t = PipelineTrace::from_spans(&tracer.spans(id), stats.clone());
        assert_eq!(t.stages.len(), 3);
        assert_eq!(t.stage("execute").unwrap().total_micros, 50);
        assert_eq!(t.recovery, stats);
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        let t = PipelineTrace {
            stages: vec![
                StageTiming { stage: "a".into(), micros: u64::MAX },
                StageTiming { stage: "a".into(), micros: 10 },
            ],
            recovery: RecoveryStats::default(),
        };
        assert_eq!(t.total_micros(), u64::MAX);
        assert_eq!(t.stage("a").unwrap().total_micros, u64::MAX);
    }
}

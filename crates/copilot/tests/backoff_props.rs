//! Property tests for the recovery policy's seeded backoff jitter:
//! jittered intervals stay inside the documented bounds, the schedule
//! is a pure function of `(seed, retry)` (reproducible), and the
//! unseeded default is the exact doubling schedule the rest of the
//! test suite pins.

use dio_copilot::RecoveryPolicy;
use proptest::prelude::*;

proptest! {
    /// Every jittered interval lands in `[nominal/2, nominal]` where
    /// `nominal = base · 2^retry` (saturating), for arbitrary seeds,
    /// bases, and retry indices.
    #[test]
    fn jitter_stays_within_half_to_full_nominal(
        seed in any::<u64>(),
        base in 0u64..100_000,
        retry in 0usize..24,
    ) {
        let p = RecoveryPolicy {
            backoff_base_ms: base,
            backoff_jitter_seed: Some(seed),
            ..RecoveryPolicy::default()
        };
        let nominal = base.saturating_mul(1u64 << retry.min(16));
        let j = p.backoff_ms(retry);
        prop_assert!(j >= nominal / 2, "{j} below floor {}", nominal / 2);
        prop_assert!(j <= nominal, "{j} above ceiling {nominal}");
    }

    /// The whole schedule is reproducible: two policies sharing a seed
    /// agree on every interval, and re-asking the same policy never
    /// changes an answer (no hidden RNG state).
    #[test]
    fn same_seed_reproduces_the_whole_schedule(
        seed in any::<u64>(),
        base in 1u64..100_000,
    ) {
        let a = RecoveryPolicy {
            backoff_base_ms: base,
            backoff_jitter_seed: Some(seed),
            ..RecoveryPolicy::default()
        };
        let b = a.clone();
        for retry in 0..12 {
            let first = a.backoff_ms(retry);
            prop_assert_eq!(first, b.backoff_ms(retry));
            prop_assert_eq!(first, a.backoff_ms(retry));
        }
    }

    /// Without a seed the schedule is the exact deterministic doubling
    /// ladder — the compatibility contract the pipeline tests pin
    /// (`[100, 200, 400, …]`).
    #[test]
    fn unseeded_schedule_is_pure_doubling(
        base in 0u64..100_000,
        retry in 0usize..24,
    ) {
        let p = RecoveryPolicy {
            backoff_base_ms: base,
            ..RecoveryPolicy::default()
        };
        prop_assert_eq!(p.backoff_ms(retry), base.saturating_mul(1u64 << retry.min(16)));
    }
}

//! Core catalog data types.

use crate::nf::NetworkFunction;
use serde::{Deserialize, Serialize};

/// Wire format / width of a counter, as vendor docs state it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterType {
    /// Monotone 64-bit counter.
    Counter64,
    /// Monotone 32-bit counter (legacy counters in vendor docs).
    Counter32,
    /// Point-in-time gauge.
    Gauge,
}

impl CounterType {
    /// Phrase used in generated documentation.
    pub fn doc_phrase(&self) -> &'static str {
        match self {
            CounterType::Counter64 => "64-bit counter",
            CounterType::Counter32 => "32-bit counter",
            CounterType::Gauge => "gauge",
        }
    }

    /// True for monotone counters.
    pub fn is_counter(&self) -> bool {
        !matches!(self, CounterType::Gauge)
    }
}

/// Measurement unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// Octets.
    Bytes,
    /// Packets.
    Packets,
    /// Milliseconds (accumulated durations).
    Milliseconds,
    /// Current sessions / registrations / connections.
    Entities,
}

impl Unit {
    /// Phrase used in generated documentation.
    pub fn doc_phrase(&self) -> &'static str {
        match self {
            Unit::Count => "events",
            Unit::Bytes => "octets",
            Unit::Packets => "packets",
            Unit::Milliseconds => "milliseconds",
            Unit::Entities => "entities",
        }
    }
}

/// The role a metric plays within its procedure group — what the
/// benchmark's derived entities (success rates, failure ratios) are
/// built from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricRole {
    /// Procedure attempts / requests received.
    Attempt,
    /// Procedure completions.
    Success,
    /// Failures with a specific cause tag.
    Failure {
        /// 5GMM/5GSM-style cause slug, e.g. `congestion`.
        cause: String,
    },
    /// A protocol message counter (tx or rx).
    Message {
        /// Message name slug, e.g. `registration_accept`.
        message: String,
        /// `true` when counting transmitted messages, `false` received.
        sent: bool,
    },
    /// Accumulated procedure duration in milliseconds.
    DurationTotal,
    /// A timer/impairment event tied to the procedure (guard-timer
    /// expiry, retry, abnormal release) or a platform event counter.
    Event {
        /// Event slug, e.g. `guard_timer_expiry`.
        event: String,
    },
    /// Traffic volume (bytes/packets/drops) on an interface.
    Traffic {
        /// Interface slug, e.g. `n3`.
        interface: String,
        /// Direction slug: `ul` or `dl`.
        direction: String,
        /// What is counted: `bytes`, `packets`, `dropped_packets`.
        what: String,
    },
    /// A point-in-time occupancy gauge (active sessions, registered UEs).
    ActiveGauge,
}

/// Hints the TSDB synthesiser uses to produce representative data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficHint {
    /// Mean event rate per second (counters) or mean level (gauges).
    pub base_rate: f64,
    /// For `Success`/`Failure` roles: fraction of the attempt rate.
    pub couple_ratio: Option<f64>,
}

/// One catalog metric with its vendor documentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDef {
    /// Specialised glued metric name, e.g. `amfcc_n1_auth_request`.
    pub name: String,
    /// Producing network function.
    pub nf: NetworkFunction,
    /// Service within the NF, e.g. `cc` (call control).
    pub service: String,
    /// Procedure slug this metric belongs to, e.g. `initial_registration`.
    pub procedure: String,
    /// Human-readable procedure name, e.g. `initial registration`.
    pub procedure_display: String,
    /// Role within the procedure group.
    pub role: MetricRole,
    /// Counter type / width.
    pub counter_type: CounterType,
    /// Unit of measurement.
    pub unit: Unit,
    /// Multi-sentence vendor documentation.
    pub description: String,
    /// 3GPP spec reference, e.g. `3GPP TS 24.501`.
    pub spec_ref: String,
    /// Synthesiser hint.
    pub traffic: TrafficHint,
}

impl MetricDef {
    /// The text sample fed to the embedder: name plus documentation,
    /// exactly the segmentation §4 describes.
    pub fn text_sample(&self) -> String {
        format!("{}: {}", self.name, self.description)
    }
}

/// A procedure and all the metrics it generates, kept together so
/// benchmark questions about derived entities can find the counters
/// they need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcedureGroup {
    /// Producing network function.
    pub nf: NetworkFunction,
    /// Service slug.
    pub service: String,
    /// Procedure slug.
    pub procedure: String,
    /// Human-readable procedure name.
    pub display: String,
    /// Name of the attempt counter, when the procedure has one.
    pub attempt: Option<String>,
    /// Name of the success counter, when the procedure has one.
    pub success: Option<String>,
    /// `(cause, metric name)` failure counters.
    pub failures: Vec<(String, String)>,
    /// All other metric names in the group (messages, durations, traffic,
    /// gauges).
    pub other: Vec<String>,
}

impl ProcedureGroup {
    /// Every metric name in the group.
    pub fn all_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        if let Some(a) = &self.attempt {
            names.push(a);
        }
        if let Some(s) = &self.success {
            names.push(s);
        }
        names.extend(self.failures.iter().map(|(_, n)| n.as_str()));
        names.extend(self.other.iter().map(|n| n.as_str()));
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_type_phrases() {
        assert_eq!(CounterType::Counter64.doc_phrase(), "64-bit counter");
        assert!(CounterType::Counter64.is_counter());
        assert!(!CounterType::Gauge.is_counter());
    }

    #[test]
    fn text_sample_combines_name_and_description() {
        let m = MetricDef {
            name: "amfcc_n1_auth_request".into(),
            nf: NetworkFunction::Amf,
            service: "cc".into(),
            procedure: "authentication".into(),
            procedure_display: "authentication".into(),
            role: MetricRole::Attempt,
            counter_type: CounterType::Counter64,
            unit: Unit::Count,
            description: "The number of authentication requests sent by AMF.".into(),
            spec_ref: "3GPP TS 24.501".into(),
            traffic: TrafficHint {
                base_rate: 10.0,
                couple_ratio: None,
            },
        };
        let t = m.text_sample();
        assert!(t.starts_with("amfcc_n1_auth_request: "));
        assert!(t.contains("authentication requests"));
    }

    #[test]
    fn group_all_names_collects_everything() {
        let g = ProcedureGroup {
            nf: NetworkFunction::Amf,
            service: "cc".into(),
            procedure: "p".into(),
            display: "p".into(),
            attempt: Some("a".into()),
            success: Some("s".into()),
            failures: vec![("timeout".into(), "f1".into())],
            other: vec!["o1".into(), "o2".into()],
        };
        assert_eq!(g.all_names(), vec!["a", "s", "f1", "o1", "o2"]);
    }
}

//! Expansion of the procedure grammar into the full metric catalog.

use crate::nf::NetworkFunction;
use crate::procedures::{
    ProcKind, Procedure, ProcedureCatalog, EVENT_VARIANTS, FAILURE_CAUSES, MESSAGE_VARIANTS,
    RESOURCE_METRICS, SBI_APIS, SBI_VARIANTS, SLICES,
};
use crate::types::{CounterType, MetricDef, MetricRole, ProcedureGroup, TrafficHint, Unit};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Catalog generation options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Emit per-S-NSSAI variants for slice-aware procedures.
    pub slice_variants: bool,
    /// Emit SBI HTTP counters.
    pub sbi_counters: bool,
    /// Minimum failure causes per transactional procedure.
    pub causes_min: usize,
    /// Maximum failure causes per transactional procedure.
    pub causes_max: usize,
    /// Seed that perturbs rates, ratios, and cause subsets.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            slice_variants: true,
            sbi_counters: true,
            causes_min: 22,
            causes_max: 40,
            seed: 0xca7a_1035_eed5_0001,
        }
    }
}

/// The generated catalog: flat metric list plus procedure grouping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    /// Every metric, in deterministic generation order.
    pub metrics: Vec<MetricDef>,
    /// Procedure groups referencing metric names.
    pub groups: Vec<ProcedureGroup>,
}

impl Catalog {
    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricDef> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metrics were generated.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

/// Stable per-string hash used to derive rates/ratios deterministically.
fn mix(seed: u64, s: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Uniform float in `[lo, hi)` from a hash.
fn uniform(h: u64, lo: f64, hi: f64) -> f64 {
    lo + (h >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
}

fn prefix(p: &Procedure) -> String {
    format!("{}{}", p.nf.abbrev(), p.service)
}

fn name_with_iface(p: &Procedure, tail: &str) -> String {
    match p.interface {
        Some(ifc) => format!("{}_{}_{}", prefix(p), ifc, tail),
        None => format!("{}_{}", prefix(p), tail),
    }
}

fn section(h: u64) -> String {
    format!(
        "{}.{}.{}",
        4 + (h % 6),
        1 + ((h >> 8) % 9),
        1 + ((h >> 16) % 9)
    )
}

fn base_rate_for(intensity: u8, h: u64) -> f64 {
    let base = match intensity {
        0 => 0.4,
        1 => 4.0,
        _ => 25.0,
    };
    base * uniform(h, 0.6, 1.6)
}

fn gauge_level_for(intensity: u8, h: u64) -> f64 {
    let base = match intensity {
        0 => 60.0,
        1 => 4_000.0,
        _ => 40_000.0,
    };
    base * uniform(h, 0.5, 1.5)
}

/// Generate the full catalog from the built-in grammar.
pub fn generate_catalog(config: &CatalogConfig) -> Catalog {
    let grammar = ProcedureCatalog::builtin();
    let mut metrics: Vec<MetricDef> = Vec::new();
    let mut groups: Vec<ProcedureGroup> = Vec::new();
    let mut names: HashSet<String> = HashSet::new();

    let mut push = |metrics: &mut Vec<MetricDef>, names: &mut HashSet<String>, m: MetricDef| -> bool {
        if names.contains(&m.name) {
            return false;
        }
        names.insert(m.name.clone());
        metrics.push(m);
        true
    };

    for proc in grammar.procedures() {
        let ph = mix(config.seed, &format!("{}/{}/{}", proc.nf.abbrev(), proc.service, proc.slug));
        let mut group = ProcedureGroup {
            nf: proc.nf,
            service: proc.service.to_string(),
            procedure: proc.slug.to_string(),
            display: proc.display.to_string(),
            attempt: None,
            success: None,
            failures: Vec::new(),
            other: Vec::new(),
        };

        match proc.kind {
            ProcKind::Transactional => {
                expand_transactional(config, proc, ph, &mut metrics, &mut names, &mut group, &mut push);
            }
            ProcKind::MessageOnly => {
                expand_messages(proc, ph, None, &mut metrics, &mut names, &mut group, &mut push);
            }
            ProcKind::Traffic => {
                expand_traffic(config, proc, ph, &mut metrics, &mut names, &mut group, &mut push);
            }
            ProcKind::GaugeGroup => {
                expand_gauges(proc, ph, &mut metrics, &mut names, &mut group, &mut push);
            }
        }

        groups.push(group);
    }

    if config.sbi_counters {
        expand_sbi(config, &mut metrics, &mut names, &mut groups, &mut push);
    }

    expand_resources(config, &mut metrics, &mut names, &mut groups, &mut push);

    Catalog { metrics, groups }
}

type PushFn<'a> = dyn FnMut(&mut Vec<MetricDef>, &mut HashSet<String>, MetricDef) -> bool + 'a;

#[allow(clippy::too_many_arguments)]
fn expand_transactional(
    config: &CatalogConfig,
    proc: &Procedure,
    ph: u64,
    metrics: &mut Vec<MetricDef>,
    names: &mut HashSet<String>,
    group: &mut ProcedureGroup,
    push: &mut PushFn<'_>,
) {
    let rate = base_rate_for(proc.intensity, ph);
    let success_ratio = uniform(mix(ph, "sr"), 0.90, 0.995);
    let sec = section(ph);

    // Attempt counter.
    let attempt_name = name_with_iface(proc, &format!("{}_attempt", proc.slug));
    let attempt_desc = format!(
        "The number of {} procedure attempts handled by {}. Incremented each time the {} starts the {} procedure. \
         Part of the {} service statistics. The procedure is defined in section {} of {}. 64-bit counter.",
        proc.display,
        proc.nf.upper(),
        proc.nf.upper(),
        proc.display,
        proc.service_display,
        sec,
        proc.spec,
    );
    push(
        metrics,
        names,
        MetricDef {
            name: attempt_name.clone(),
            nf: proc.nf,
            service: proc.service.to_string(),
            procedure: proc.slug.to_string(),
            procedure_display: proc.display.to_string(),
            role: MetricRole::Attempt,
            counter_type: CounterType::Counter64,
            unit: Unit::Count,
            description: attempt_desc,
            spec_ref: proc.spec.to_string(),
            traffic: TrafficHint {
                base_rate: rate,
                couple_ratio: None,
            },
        },
    );
    group.attempt = Some(attempt_name.clone());

    // Success counter.
    let success_name = name_with_iface(proc, &format!("{}_success", proc.slug));
    let success_desc = format!(
        "The number of {} procedures completed successfully by {}. Incremented when the {} procedure concludes \
         without error. Used together with {} to compute the {} success rate. Defined in section {} of {}. 64-bit counter.",
        proc.display,
        proc.nf.upper(),
        proc.display,
        attempt_name,
        proc.display,
        sec,
        proc.spec,
    );
    push(
        metrics,
        names,
        MetricDef {
            name: success_name.clone(),
            nf: proc.nf,
            service: proc.service.to_string(),
            procedure: proc.slug.to_string(),
            procedure_display: proc.display.to_string(),
            role: MetricRole::Success,
            counter_type: CounterType::Counter64,
            unit: Unit::Count,
            description: success_desc,
            spec_ref: proc.spec.to_string(),
            traffic: TrafficHint {
                base_rate: rate * success_ratio,
                couple_ratio: Some(success_ratio),
            },
        },
    );
    group.success = Some(success_name);

    // Failure-cause counters: a deterministic subset of the pool. The
    // subset (and therefore the metric-name set) is a function of the
    // procedure identity only, never of `config.seed`, so different
    // seeds perturb rates without changing the schema.
    let nh = mix(
        0x57ab_1e00,
        &format!("{}/{}/{}", proc.nf.abbrev(), proc.service, proc.slug),
    );
    let span = config.causes_max.saturating_sub(config.causes_min).max(1);
    let n_causes = (config.causes_min + (mix(nh, "nc") as usize % span)).min(FAILURE_CAUSES.len());
    let offset = mix(nh, "co") as usize % FAILURE_CAUSES.len();
    let fail_total = 1.0 - success_ratio;
    // Hash-weighted shares over the chosen causes, normalised.
    let mut shares: Vec<f64> = (0..n_causes)
        .map(|i| uniform(mix(ph, &format!("cw{i}")), 0.2, 1.0))
        .collect();
    let sum: f64 = shares.iter().sum();
    for s in &mut shares {
        *s = *s / sum * fail_total;
    }
    for i in 0..n_causes {
        let (cause_slug, cause_disp) = FAILURE_CAUSES[(offset + i) % FAILURE_CAUSES.len()];
        let fname = name_with_iface(proc, &format!("{}_failure_{}", proc.slug, cause_slug));
        let fdesc = format!(
            "The number of {} procedures that failed at {} with cause '{}'. Incremented when the {} procedure is \
             aborted or rejected with this cause value. Cause values are defined in {}. 64-bit counter.",
            proc.display,
            proc.nf.upper(),
            cause_disp,
            proc.display,
            proc.spec,
        );
        if push(
            metrics,
            names,
            MetricDef {
                name: fname.clone(),
                nf: proc.nf,
                service: proc.service.to_string(),
                procedure: proc.slug.to_string(),
                procedure_display: proc.display.to_string(),
                role: MetricRole::Failure {
                    cause: cause_slug.to_string(),
                },
                counter_type: CounterType::Counter64,
                unit: Unit::Count,
                description: fdesc,
                spec_ref: proc.spec.to_string(),
                traffic: TrafficHint {
                    base_rate: rate * shares[i],
                    couple_ratio: Some(shares[i]),
                },
            },
        ) {
            group.failures.push((cause_slug.to_string(), fname));
        }
    }

    // Duration accumulator.
    let mean_ms = uniform(mix(ph, "dur"), 20.0, 500.0);
    let dname = name_with_iface(proc, &format!("{}_duration_ms_total", proc.slug));
    let ddesc = format!(
        "The accumulated duration, in milliseconds, of all completed {} procedures at {}. Divide by {} to obtain \
         the mean procedure duration. 64-bit counter measuring milliseconds.",
        proc.display,
        proc.nf.upper(),
        name_with_iface(proc, &format!("{}_success", proc.slug)),
    );
    if push(
        metrics,
        names,
        MetricDef {
            name: dname.clone(),
            nf: proc.nf,
            service: proc.service.to_string(),
            procedure: proc.slug.to_string(),
            procedure_display: proc.display.to_string(),
            role: MetricRole::DurationTotal,
            counter_type: CounterType::Counter64,
            unit: Unit::Milliseconds,
            description: ddesc,
            spec_ref: proc.spec.to_string(),
            traffic: TrafficHint {
                base_rate: rate * success_ratio * mean_ms,
                couple_ratio: Some(success_ratio * mean_ms),
            },
        },
    ) {
        group.other.push(dname);
    }

    // Timer/impairment event counters.
    for (ev_slug, ev_disp) in EVENT_VARIANTS {
        let ratio = uniform(mix(ph, ev_slug), 0.002, 0.03);
        let ename = name_with_iface(proc, &format!("{}_{}", proc.slug, ev_slug));
        let edesc = format!(
            "The number of {} the {} procedure at {}. Incremented by the procedure state machine; a rising rate \
             indicates peer or transport problems. Timers for the procedure are defined in {}. 64-bit counter.",
            ev_disp,
            proc.display,
            proc.nf.upper(),
            proc.spec,
        );
        if push(
            metrics,
            names,
            MetricDef {
                name: ename.clone(),
                nf: proc.nf,
                service: proc.service.to_string(),
                procedure: proc.slug.to_string(),
                procedure_display: proc.display.to_string(),
                role: MetricRole::Event {
                    event: ev_slug.to_string(),
                },
                counter_type: CounterType::Counter64,
                unit: Unit::Count,
                description: edesc,
                spec_ref: proc.spec.to_string(),
                traffic: TrafficHint {
                    base_rate: rate * ratio,
                    couple_ratio: Some(ratio),
                },
            },
        ) {
            group.other.push(ename);
        }
    }

    // Per-message counters.
    expand_messages(proc, ph, Some(rate), metrics, names, group, push);

    // Per-slice attempt/success variants.
    if config.slice_variants && proc.slice_aware {
        for (slice_slug, slice_disp) in SLICES {
            let share = uniform(mix(ph, &format!("slice_{slice_slug}")), 0.1, 0.5);
            for (role, suffix, ratio) in [
                (MetricRole::Attempt, "attempt", share),
                (MetricRole::Success, "success", share * success_ratio),
            ] {
                let sname = name_with_iface(
                    proc,
                    &format!("{}_{}_snssai_{}", proc.slug, suffix, slice_slug),
                );
                let sdesc = format!(
                    "The number of {} procedure {}s at {} for PDU sessions or registrations on the {} network \
                     slice. Per-slice breakdown of {}. S-NSSAI values are defined in 3GPP TS 23.003. 64-bit counter.",
                    proc.display,
                    suffix,
                    proc.nf.upper(),
                    slice_disp,
                    name_with_iface(proc, &format!("{}_{}", proc.slug, suffix)),
                );
                if push(
                    metrics,
                    names,
                    MetricDef {
                        name: sname.clone(),
                        nf: proc.nf,
                        service: proc.service.to_string(),
                        procedure: proc.slug.to_string(),
                        procedure_display: proc.display.to_string(),
                        role: role.clone(),
                        counter_type: CounterType::Counter64,
                        unit: Unit::Count,
                        description: sdesc,
                        spec_ref: proc.spec.to_string(),
                        traffic: TrafficHint {
                            base_rate: rate * ratio,
                            couple_ratio: Some(ratio),
                        },
                    },
                ) {
                    group.other.push(sname);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand_messages(
    proc: &Procedure,
    ph: u64,
    rate_hint: Option<f64>,
    metrics: &mut Vec<MetricDef>,
    names: &mut HashSet<String>,
    group: &mut ProcedureGroup,
    push: &mut PushFn<'_>,
) {
    let rate = rate_hint.unwrap_or_else(|| base_rate_for(proc.intensity, ph));
    for (msg_slug, msg_disp) in proc.messages {
        for (var_slug, var_disp) in MESSAGE_VARIANTS {
            let ratio = match *var_slug {
                "sent" | "received" => 1.0,
                "retransmitted" => 0.02,
                "duplicate" => 0.004,
                "dropped_overload" => 0.003,
                _ => 0.002, // malformed
            };
            let mname = name_with_iface(proc, &format!("{}_{}", msg_slug, var_slug));
            let mdesc = format!(
                "The number of {} messages {} by {}. The {} message is part of the {} procedure, defined in \
                 section {} of {}. 64-bit counter.",
                msg_disp,
                var_disp,
                proc.nf.upper(),
                msg_disp,
                proc.display,
                section(mix(ph, msg_slug)),
                proc.spec,
            );
            if push(
                metrics,
                names,
                MetricDef {
                    name: mname.clone(),
                    nf: proc.nf,
                    service: proc.service.to_string(),
                    procedure: proc.slug.to_string(),
                    procedure_display: proc.display.to_string(),
                    role: MetricRole::Message {
                        message: msg_slug.to_string(),
                        sent: *var_slug == "sent",
                    },
                    counter_type: CounterType::Counter64,
                    unit: Unit::Count,
                    description: mdesc,
                    spec_ref: proc.spec.to_string(),
                    traffic: TrafficHint {
                        base_rate: rate * ratio,
                        couple_ratio: Some(ratio),
                    },
                },
            ) {
                group.other.push(mname);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand_traffic(
    config: &CatalogConfig,
    proc: &Procedure,
    ph: u64,
    metrics: &mut Vec<MetricDef>,
    names: &mut HashSet<String>,
    group: &mut ProcedureGroup,
    push: &mut PushFn<'_>,
) {
    let iface = proc.interface.unwrap_or("n3");
    let whats: &[(&str, &str, Unit, f64)] = &[
        ("bytes", "octets forwarded", Unit::Bytes, 1.0e7),
        ("packets", "packets forwarded", Unit::Packets, 1.0e4),
        ("dropped_packets", "packets dropped", Unit::Packets, 30.0),
        ("error_packets", "packets discarded due to errors", Unit::Packets, 2.0),
    ];
    let dirs: &[(&str, &str)] = &[("ul", "uplink"), ("dl", "downlink")];
    for (dir_slug, dir_disp) in dirs {
        for (what_slug, what_disp, unit, scale) in whats {
            let rate = scale * uniform(mix(ph, &format!("{dir_slug}{what_slug}")), 0.5, 1.5);
            let tname = format!("{}_{}_{}_{}", prefix(proc), iface, dir_slug, what_slug);
            let tdesc = format!(
                "The total number of {} in the {} direction on the {} reference point at {}. Measures user-plane \
                 {} traffic. The {} interface is defined in {}. 64-bit counter.",
                what_disp,
                dir_disp,
                iface.to_uppercase(),
                proc.nf.upper(),
                dir_disp,
                iface.to_uppercase(),
                proc.spec,
            );
            if push(
                metrics,
                names,
                MetricDef {
                    name: tname.clone(),
                    nf: proc.nf,
                    service: proc.service.to_string(),
                    procedure: proc.slug.to_string(),
                    procedure_display: proc.display.to_string(),
                    role: MetricRole::Traffic {
                        interface: iface.to_string(),
                        direction: dir_slug.to_string(),
                        what: what_slug.to_string(),
                    },
                    counter_type: CounterType::Counter64,
                    unit: *unit,
                    description: tdesc,
                    spec_ref: proc.spec.to_string(),
                    traffic: TrafficHint {
                        base_rate: rate,
                        couple_ratio: None,
                    },
                },
            ) {
                group.other.push(tname);
            }
        }
        // Per-5QI byte/packet counters for slice-aware traffic families.
        if config.slice_variants && proc.slice_aware {
            for qi in [1u8, 2, 5, 7, 9] {
                for (what_slug, what_disp, unit, scale) in &whats[..2] {
                    let rate =
                        scale * uniform(mix(ph, &format!("{dir_slug}5qi{qi}{what_slug}")), 0.05, 0.4);
                    let qname = format!(
                        "{}_{}_{}_5qi{}_{}",
                        prefix(proc),
                        iface,
                        dir_slug,
                        qi,
                        what_slug
                    );
                    let qdesc = format!(
                        "The total number of {} in the {} direction on the {} reference point at {} for QoS flows \
                         with 5QI {}. Per-QoS-class breakdown of user-plane traffic. 5QI characteristics are \
                         defined in 3GPP TS 23.501 table 5.7.4-1. 64-bit counter.",
                        what_disp,
                        dir_disp,
                        iface.to_uppercase(),
                        proc.nf.upper(),
                        qi,
                    );
                    if push(
                        metrics,
                        names,
                        MetricDef {
                            name: qname.clone(),
                            nf: proc.nf,
                            service: proc.service.to_string(),
                            procedure: proc.slug.to_string(),
                            procedure_display: proc.display.to_string(),
                            role: MetricRole::Traffic {
                                interface: iface.to_string(),
                                direction: dir_slug.to_string(),
                                what: format!("5qi{}_{}", qi, what_slug),
                            },
                            counter_type: CounterType::Counter64,
                            unit: *unit,
                            description: qdesc,
                            spec_ref: proc.spec.to_string(),
                            traffic: TrafficHint {
                                base_rate: rate,
                                couple_ratio: None,
                            },
                        },
                    ) {
                        group.other.push(qname);
                    }
                }
            }
        }
    }
}

fn expand_gauges(
    proc: &Procedure,
    ph: u64,
    metrics: &mut Vec<MetricDef>,
    names: &mut HashSet<String>,
    group: &mut ProcedureGroup,
    push: &mut PushFn<'_>,
) {
    let level = gauge_level_for(proc.intensity, ph);
    for (var_slug, var_disp, scale) in [
        ("current", "current number", 1.0),
        ("peak", "peak number since the last counter reset", 1.3),
        ("mean", "mean number over the reporting interval", 0.95),
    ] {
        let gname = format!("{}_{}_{}", prefix(proc), proc.slug, var_slug);
        let gdesc = format!(
            "The {} of {} at {}. Point-in-time occupancy statistic sampled at the reporting interval. \
             Related concepts are defined in {}. Gauge.",
            var_disp,
            proc.display,
            proc.nf.upper(),
            proc.spec,
        );
        if push(
            metrics,
            names,
            MetricDef {
                name: gname.clone(),
                nf: proc.nf,
                service: proc.service.to_string(),
                procedure: proc.slug.to_string(),
                procedure_display: proc.display.to_string(),
                role: MetricRole::ActiveGauge,
                counter_type: CounterType::Gauge,
                unit: Unit::Entities,
                description: gdesc,
                spec_ref: proc.spec.to_string(),
                traffic: TrafficHint {
                    base_rate: level * scale,
                    couple_ratio: None,
                },
            },
        ) {
            group.other.push(gname);
        }
    }
}

fn expand_sbi(
    config: &CatalogConfig,
    metrics: &mut Vec<MetricDef>,
    names: &mut HashSet<String>,
    groups: &mut Vec<ProcedureGroup>,
    push: &mut PushFn<'_>,
) {
    for (nf, api_slug, api_disp) in SBI_APIS {
        let ph = mix(config.seed, api_slug);
        let rate = base_rate_for(2, ph);
        let mut group = ProcedureGroup {
            nf: *nf,
            service: "sbi".to_string(),
            procedure: api_slug.to_string(),
            display: format!("{api_disp} service-based interface"),
            attempt: None,
            success: None,
            failures: Vec::new(),
            other: Vec::new(),
        };
        for (var_slug, var_disp) in SBI_VARIANTS {
            let ratio = match *var_slug {
                "requests_received" | "requests_sent" => 1.0,
                "responses_2xx" => 0.96,
                "responses_3xx" => 0.002,
                "responses_4xx" => 0.025,
                "responses_5xx" => 0.01,
                "timeouts" => 0.005,
                _ => 0.008, // retries
            };
            let sname = format!("{}sbi_{}_{}", nf.abbrev(), api_slug, var_slug);
            let sdesc = format!(
                "The number of {} observed by the {} service-based interface ({}) at {}. Service operations are \
                 defined in the {} OpenAPI of 3GPP TS 29.5xx series. 64-bit counter.",
                var_disp,
                api_disp,
                api_slug,
                nf.upper(),
                api_disp,
            );
            if push(
                metrics,
                names,
                MetricDef {
                    name: sname.clone(),
                    nf: *nf,
                    service: "sbi".to_string(),
                    procedure: api_slug.to_string(),
                    procedure_display: group.display.clone(),
                    role: MetricRole::Message {
                        message: var_slug.to_string(),
                        sent: *var_slug == "requests_sent",
                    },
                    counter_type: CounterType::Counter64,
                    unit: Unit::Count,
                    description: sdesc,
                    spec_ref: "3GPP TS 29.500".to_string(),
                    traffic: TrafficHint {
                        base_rate: rate * ratio,
                        couple_ratio: Some(ratio),
                    },
                },
            ) {
                group.other.push(sname);
            }
        }
        groups.push(group);
    }
}

fn expand_resources(
    config: &CatalogConfig,
    metrics: &mut Vec<MetricDef>,
    names: &mut HashSet<String>,
    groups: &mut Vec<ProcedureGroup>,
    push: &mut PushFn<'_>,
) {
    for nf in NetworkFunction::ALL {
        let mut group = ProcedureGroup {
            nf,
            service: "platform".to_string(),
            procedure: "platform_resources".to_string(),
            display: format!("{} platform resources", nf.upper()),
            attempt: None,
            success: None,
            failures: Vec::new(),
            other: Vec::new(),
        };
        for (res_slug, res_desc, is_gauge) in RESOURCE_METRICS {
            let h = mix(config.seed, &format!("{}:{}", nf.abbrev(), res_slug));
            let rname = format!("{}plat_{}", nf.abbrev(), res_slug);
            let rdesc = format!(
                "The {} for the {} ({}). Platform-level statistic exported by the workload runtime, not defined \
                 in 3GPP specifications. {}.",
                res_desc,
                nf.upper(),
                nf.full_name(),
                if *is_gauge { "Gauge" } else { "64-bit counter" },
            );
            if push(
                metrics,
                names,
                MetricDef {
                    name: rname.clone(),
                    nf,
                    service: "platform".to_string(),
                    procedure: "platform_resources".to_string(),
                    procedure_display: group.display.clone(),
                    role: if *is_gauge {
                        MetricRole::ActiveGauge
                    } else {
                        MetricRole::Event {
                            event: res_slug.to_string(),
                        }
                    },
                    counter_type: if *is_gauge {
                        CounterType::Gauge
                    } else {
                        CounterType::Counter64
                    },
                    unit: Unit::Count,
                    description: rdesc,
                    spec_ref: "vendor platform documentation".to_string(),
                    traffic: TrafficHint {
                        base_rate: if *is_gauge {
                            uniform(h, 10.0, 90.0)
                        } else {
                            uniform(h, 0.001, 0.1)
                        },
                        couple_ratio: None,
                    },
                },
            ) {
                group.other.push(rname);
            }
        }
        groups.push(group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        generate_catalog(&CatalogConfig::default())
    }

    #[test]
    fn generates_more_than_3000_metrics() {
        let c = catalog();
        assert!(
            c.len() >= 3000,
            "paper evaluates on >3000 metrics, generated {}",
            c.len()
        );
    }

    #[test]
    fn metric_names_are_unique() {
        let c = catalog();
        let mut names: Vec<&str> = c.metrics.iter().map(|m| m.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn covers_all_six_network_functions() {
        let c = catalog();
        for nf in NetworkFunction::ALL {
            assert!(
                c.metrics.iter().any(|m| m.nf == nf),
                "no metrics for {nf}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = catalog();
        let b = catalog();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    fn paper_style_auth_request_counter_exists() {
        let c = catalog();
        // §3.1's example is amfcc_n1_auth_request; our grammar puts
        // authentication under the security service.
        let m = c.get("amfsec_n1_auth_request_sent").expect("auth request counter");
        assert!(m.description.contains("AUTHENTICATION REQUEST"));
        assert!(m.description.contains("3GPP TS 24.501"));
        assert!(m.description.contains("64-bit counter"));
    }

    #[test]
    fn groups_reference_existing_metrics() {
        let c = catalog();
        let names: HashSet<&str> = c.metrics.iter().map(|m| m.name.as_str()).collect();
        for g in &c.groups {
            for n in g.all_names() {
                assert!(names.contains(n), "group references unknown metric {n}");
            }
        }
    }

    #[test]
    fn success_rate_never_exceeds_attempt_rate() {
        let c = catalog();
        for g in &c.groups {
            if let (Some(a), Some(s)) = (&g.attempt, &g.success) {
                let ar = c.get(a).unwrap().traffic.base_rate;
                let sr = c.get(s).unwrap().traffic.base_rate;
                assert!(sr <= ar, "{s} rate {sr} > {a} rate {ar}");
            }
        }
    }

    #[test]
    fn failure_shares_sum_below_failure_budget() {
        let c = catalog();
        for g in &c.groups {
            if let Some(a) = &g.attempt {
                let ar = c.get(a).unwrap().traffic.base_rate;
                let fsum: f64 = g
                    .failures
                    .iter()
                    .map(|(_, n)| c.get(n).unwrap().traffic.base_rate)
                    .sum();
                assert!(
                    fsum <= ar * 0.11,
                    "failures of {} exceed budget: {fsum} vs attempt {ar}",
                    g.procedure
                );
            }
        }
    }

    #[test]
    fn transactional_groups_have_attempt_success_and_causes() {
        let c = catalog();
        let reg = c
            .groups
            .iter()
            .find(|g| g.procedure == "initial_registration")
            .unwrap();
        assert!(reg.attempt.is_some());
        assert!(reg.success.is_some());
        assert!(reg.failures.len() >= 10);
        assert!(!reg.other.is_empty());
    }

    #[test]
    fn descriptions_are_multi_sentence_and_reference_specs() {
        let c = catalog();
        for m in c.metrics.iter().take(200) {
            assert!(
                m.description.matches('.').count() >= 2,
                "description too short for {}: {}",
                m.name,
                m.description
            );
            assert!(m.description.contains("3GPP") || m.spec_ref.contains("3GPP"));
        }
    }

    #[test]
    fn disabling_options_shrinks_catalog() {
        let full = catalog();
        let small = generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        });
        assert!(small.len() < full.len());
    }

    #[test]
    fn gauges_are_marked_gauge() {
        let c = catalog();
        let g = c.get("amfcc_registered_subscribers_current").unwrap();
        assert_eq!(g.counter_type, CounterType::Gauge);
        assert_eq!(g.role, MetricRole::ActiveGauge);
    }

    #[test]
    fn different_seed_changes_rates_not_names() {
        let a = generate_catalog(&CatalogConfig::default());
        let b = generate_catalog(&CatalogConfig {
            seed: 12345,
            ..CatalogConfig::default()
        });
        // Names derive from the grammar; rates derive from the seed.
        let names_a: Vec<&str> = a.metrics.iter().map(|m| m.name.as_str()).collect();
        let names_b: Vec<&str> = b.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names_a, names_b);
        assert!(a
            .metrics
            .iter()
            .zip(&b.metrics)
            .any(|(x, y)| (x.traffic.base_rate - y.traffic.base_rate).abs() > 1e-9));
    }
}

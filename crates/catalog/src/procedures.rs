//! Per-NF procedure grammars.
//!
//! Each [`Procedure`] describes one 3GPP procedure (or traffic/gauge
//! family) a network function implements. The generator expands these
//! into the full metric catalog: attempt/success/failure-cause counters,
//! per-message counters, duration accumulators, traffic counters, and
//! occupancy gauges.

use crate::nf::NetworkFunction;

/// What family of metrics a procedure expands into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcKind {
    /// attempt + success + per-cause failures + duration + messages.
    Transactional,
    /// Only per-message counters (e.g. NAS transport).
    MessageOnly,
    /// Interface traffic counters (bytes/packets/drops per direction).
    Traffic,
    /// Occupancy gauges (current + peak).
    GaugeGroup,
}

/// One procedure (or metric family) in the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Owning network function.
    pub nf: NetworkFunction,
    /// Service slug within the NF (used in metric-name prefixes), e.g.
    /// `cc` for AMF call control.
    pub service: &'static str,
    /// Human-readable service name.
    pub service_display: &'static str,
    /// Procedure slug used in metric names.
    pub slug: &'static str,
    /// Human-readable procedure name used in documentation and in
    /// benchmark questions.
    pub display: &'static str,
    /// Reference-point / interface tag in names, e.g. `n1`.
    pub interface: Option<&'static str>,
    /// 3GPP spec, e.g. `3GPP TS 24.501`.
    pub spec: &'static str,
    /// Protocol messages exchanged by the procedure (slug, display).
    pub messages: &'static [(&'static str, &'static str)],
    /// Expansion family.
    pub kind: ProcKind,
    /// Whether per-slice (S-NSSAI) variants are emitted.
    pub slice_aware: bool,
    /// Relative traffic intensity class: 0 = rare, 1 = moderate, 2 = busy.
    pub intensity: u8,
}

/// Failure-cause pool, modelled on 5GMM/5GSM cause families. Each
/// transactional procedure uses a deterministic subset.
pub const FAILURE_CAUSES: &[(&str, &str)] = &[
    ("congestion", "congestion"),
    ("timeout", "timer expiry"),
    ("auth_failure", "authentication failure"),
    ("protocol_error", "protocol error, unspecified"),
    ("resource_unavailable", "insufficient resources"),
    ("ue_unreachable", "UE unreachable"),
    ("invalid_request", "semantically incorrect message"),
    ("slice_unavailable", "requested slice not available"),
    ("policy_reject", "rejected by policy"),
    ("network_failure", "network failure"),
    ("encoding_error", "invalid mandatory information"),
    ("context_not_found", "UE context not found"),
    ("plmn_not_allowed", "PLMN not allowed"),
    ("tracking_area_not_allowed", "tracking area not allowed"),
    ("roaming_not_allowed", "roaming not allowed in this tracking area"),
    ("no_suitable_cells", "no suitable cells in tracking area"),
    ("max_sessions_reached", "maximum number of PDU sessions reached"),
    ("dnn_not_supported", "missing or unknown DNN"),
    ("pdu_type_unsupported", "unknown PDU session type"),
    ("ambr_exceeded", "session AMBR exceeded"),
    ("peer_not_responding", "peer entity not responding"),
    ("association_released", "PFCP association released"),
    ("rule_creation_failed", "rule creation or modification failure"),
    ("tunnel_setup_failed", "GTP-U tunnel establishment failure"),
    ("security_mode_reject", "security mode rejected, unspecified"),
    ("integrity_failure", "integrity check failure"),
    ("redirection_failed", "redirection to EPC failed"),
    ("service_not_subscribed", "requested service option not subscribed"),
    ("ue_identity_unknown", "UE identity cannot be derived by the network"),
    ("implicit_deregistration", "implicitly deregistered"),
    ("illegal_ue", "illegal UE"),
    ("illegal_me", "illegal ME"),
    ("services_not_allowed", "5GS services not allowed"),
    ("serving_network_not_authorized", "serving network not authorized"),
    ("payload_not_forwarded", "payload was not forwarded"),
    ("dnn_congestion", "DNN based congestion control"),
    ("insufficient_slice_resources", "insufficient resources for specific slice"),
    ("pti_mismatch", "PTI mismatch"),
    ("regular_deactivation", "regular deactivation"),
    ("reactivation_requested", "reactivation requested"),
];

/// Per-message counter variants emitted for every protocol message.
pub const MESSAGE_VARIANTS: &[(&str, &str)] = &[
    ("sent", "sent"),
    ("received", "received"),
    ("retransmitted", "retransmitted"),
    ("malformed", "discarded as malformed"),
    ("duplicate", "discarded as duplicates"),
    ("dropped_overload", "dropped due to overload protection"),
];

/// Per-procedure timer/impairment event counters emitted for every
/// transactional procedure.
pub const EVENT_VARIANTS: &[(&str, &str)] = &[
    ("guard_timer_expiry", "guard timer expiries during"),
    ("retry", "retries of"),
    ("abnormal_release", "abnormal releases during"),
];

/// Per-NF platform resource metrics (name suffix, description, is_gauge).
pub const RESOURCE_METRICS: &[(&str, &str, bool)] = &[
    ("cpu_usage_percent", "current CPU utilisation of the NF workload, in percent", true),
    ("memory_usage_bytes", "current resident memory of the NF workload, in bytes", true),
    ("heap_in_use_bytes", "heap memory currently in use by the NF workload, in bytes", true),
    ("open_file_descriptors", "file descriptors currently open by the NF workload", true),
    ("worker_threads_current", "worker threads currently alive in the NF workload", true),
    ("process_restarts_total", "restarts of the NF workload since deployment", false),
    ("config_reloads_total", "configuration reloads applied by the NF workload", false),
    ("log_errors_total", "error-severity log lines emitted by the NF workload", false),
];

/// S-NSSAI slice variants for slice-aware procedures.
pub const SLICES: &[(&str, &str)] = &[
    ("embb", "eMBB (SST 1)"),
    ("urllc", "URLLC (SST 2)"),
    ("miot", "mIoT (SST 3)"),
];

/// SBI (service-based interface) APIs per NF, each expanded into
/// HTTP-level counters.
pub const SBI_APIS: &[(NetworkFunction, &str, &str)] = &[
    (NetworkFunction::Amf, "namf_comm", "Namf_Communication"),
    (NetworkFunction::Amf, "namf_evts", "Namf_EventExposure"),
    (NetworkFunction::Amf, "namf_loc", "Namf_Location"),
    (NetworkFunction::Amf, "namf_mt", "Namf_MT"),
    (NetworkFunction::Smf, "nsmf_pdusession", "Nsmf_PDUSession"),
    (NetworkFunction::Smf, "nsmf_evts", "Nsmf_EventExposure"),
    (NetworkFunction::Smf, "nsmf_nidd", "Nsmf_NIDD"),
    (NetworkFunction::Nrf, "nnrf_nfm", "Nnrf_NFManagement"),
    (NetworkFunction::Nrf, "nnrf_disc", "Nnrf_NFDiscovery"),
    (NetworkFunction::Nrf, "nnrf_oauth", "Nnrf_AccessToken"),
    (NetworkFunction::Nssf, "nnssf_nsselection", "Nnssf_NSSelection"),
    (NetworkFunction::Nssf, "nnssf_nssaiavail", "Nnssf_NSSAIAvailability"),
    (NetworkFunction::N3iwf, "nn3iwf_prov", "Nn3iwf_Provisioning"),
    (NetworkFunction::Upf, "nupf_evts", "Nupf_EventExposure"),
];

/// HTTP counter variants for each SBI API.
pub const SBI_VARIANTS: &[(&str, &str)] = &[
    ("requests_received", "HTTP requests received"),
    ("requests_sent", "HTTP requests sent"),
    ("responses_2xx", "HTTP 2xx responses"),
    ("responses_3xx", "HTTP 3xx responses"),
    ("responses_4xx", "HTTP 4xx responses"),
    ("responses_5xx", "HTTP 5xx responses"),
    ("timeouts", "HTTP request timeouts"),
    ("retries", "HTTP request retries"),
];

macro_rules! msgs {
    ($(($slug:literal, $disp:literal)),* $(,)?) => {
        &[$(($slug, $disp)),*]
    };
}

/// The full procedure grammar.
#[derive(Debug, Clone)]
pub struct ProcedureCatalog {
    procedures: Vec<Procedure>,
}

impl ProcedureCatalog {
    /// Build the built-in grammar (deterministic, no I/O).
    pub fn builtin() -> Self {
        ProcedureCatalog {
            procedures: builtin_procedures(),
        }
    }

    /// All procedures.
    pub fn procedures(&self) -> &[Procedure] {
        &self.procedures
    }

    /// Procedures of one NF.
    pub fn for_nf(&self, nf: NetworkFunction) -> Vec<&Procedure> {
        self.procedures.iter().filter(|p| p.nf == nf).collect()
    }
}

fn builtin_procedures() -> Vec<Procedure> {
    use NetworkFunction::*;
    use ProcKind::*;

    let mut v = Vec::new();
    let mut p = |nf: NetworkFunction,
                 service: &'static str,
                 service_display: &'static str,
                 slug: &'static str,
                 display: &'static str,
                 interface: Option<&'static str>,
                 spec: &'static str,
                 messages: &'static [(&'static str, &'static str)],
                 kind: ProcKind,
                 slice_aware: bool,
                 intensity: u8| {
        v.push(Procedure {
            nf,
            service,
            service_display,
            slug,
            display,
            interface,
            spec,
            messages,
            kind,
            slice_aware,
            intensity,
        });
    };

    // ---------------- AMF ----------------
    p(Amf, "cc", "call control", "initial_registration", "initial registration", Some("n1"),
      "3GPP TS 23.502",
      msgs![("registration_request", "REGISTRATION REQUEST"), ("registration_accept", "REGISTRATION ACCEPT"),
            ("registration_complete", "REGISTRATION COMPLETE"), ("registration_reject", "REGISTRATION REJECT")],
      Transactional, true, 2);
    p(Amf, "cc", "call control", "mobility_registration_update", "mobility registration update", Some("n1"),
      "3GPP TS 23.502",
      msgs![("registration_request", "REGISTRATION REQUEST"), ("registration_accept", "REGISTRATION ACCEPT")],
      Transactional, true, 2);
    p(Amf, "cc", "call control", "periodic_registration_update", "periodic registration update", Some("n1"),
      "3GPP TS 23.502",
      msgs![("registration_request", "REGISTRATION REQUEST"), ("registration_accept", "REGISTRATION ACCEPT")],
      Transactional, false, 1);
    p(Amf, "cc", "call control", "emergency_registration", "emergency registration", Some("n1"),
      "3GPP TS 23.502",
      msgs![("registration_request", "REGISTRATION REQUEST"), ("registration_accept", "REGISTRATION ACCEPT")],
      Transactional, false, 0);
    p(Amf, "cc", "call control", "ue_initiated_deregistration", "UE initiated deregistration", Some("n1"),
      "3GPP TS 23.502",
      msgs![("deregistration_request", "DEREGISTRATION REQUEST"), ("deregistration_accept", "DEREGISTRATION ACCEPT")],
      Transactional, false, 1);
    p(Amf, "cc", "call control", "network_initiated_deregistration", "network initiated deregistration", Some("n1"),
      "3GPP TS 23.502",
      msgs![("deregistration_request", "DEREGISTRATION REQUEST"), ("deregistration_accept", "DEREGISTRATION ACCEPT")],
      Transactional, false, 0);
    p(Amf, "cc", "call control", "service_request", "service request", Some("n1"),
      "3GPP TS 24.501",
      msgs![("service_request", "SERVICE REQUEST"), ("service_accept", "SERVICE ACCEPT"), ("service_reject", "SERVICE REJECT")],
      Transactional, true, 2);
    p(Amf, "cc", "call control", "paging", "paging", Some("n2"),
      "3GPP TS 38.413",
      msgs![("paging_request", "PAGING")],
      Transactional, false, 2);
    p(Amf, "cc", "call control", "ue_configuration_update", "UE configuration update", Some("n1"),
      "3GPP TS 24.501",
      msgs![("configuration_update_command", "CONFIGURATION UPDATE COMMAND"),
            ("configuration_update_complete", "CONFIGURATION UPDATE COMPLETE")],
      Transactional, false, 1);
    p(Amf, "sec", "security", "authentication", "authentication", Some("n1"),
      "3GPP TS 24.501",
      msgs![("auth_request", "AUTHENTICATION REQUEST"), ("auth_response", "AUTHENTICATION RESPONSE"),
            ("auth_reject", "AUTHENTICATION REJECT"), ("auth_failure", "AUTHENTICATION FAILURE")],
      Transactional, false, 2);
    p(Amf, "sec", "security", "security_mode_control", "security mode control", Some("n1"),
      "3GPP TS 24.501",
      msgs![("security_mode_command", "SECURITY MODE COMMAND"), ("security_mode_complete", "SECURITY MODE COMPLETE"),
            ("security_mode_reject", "SECURITY MODE REJECT")],
      Transactional, false, 2);
    p(Amf, "sec", "security", "identity_request", "identity request", Some("n1"),
      "3GPP TS 24.501",
      msgs![("identity_request", "IDENTITY REQUEST"), ("identity_response", "IDENTITY RESPONSE")],
      Transactional, false, 1);
    p(Amf, "mm", "mobility management", "n2_handover_preparation", "N2 handover preparation", Some("n2"),
      "3GPP TS 38.413",
      msgs![("handover_required", "HANDOVER REQUIRED"), ("handover_request", "HANDOVER REQUEST"),
            ("handover_request_ack", "HANDOVER REQUEST ACKNOWLEDGE")],
      Transactional, true, 1);
    p(Amf, "mm", "mobility management", "n2_handover_execution", "N2 handover execution", Some("n2"),
      "3GPP TS 38.413",
      msgs![("handover_command", "HANDOVER COMMAND"), ("handover_notify", "HANDOVER NOTIFY")],
      Transactional, true, 1);
    p(Amf, "mm", "mobility management", "xn_handover_path_switch", "Xn handover path switch", Some("n2"),
      "3GPP TS 38.413",
      msgs![("path_switch_request", "PATH SWITCH REQUEST"), ("path_switch_request_ack", "PATH SWITCH REQUEST ACKNOWLEDGE")],
      Transactional, true, 1);
    p(Amf, "mm", "mobility management", "ue_context_setup", "UE context setup", Some("n2"),
      "3GPP TS 38.413",
      msgs![("initial_context_setup_request", "INITIAL CONTEXT SETUP REQUEST"),
            ("initial_context_setup_response", "INITIAL CONTEXT SETUP RESPONSE")],
      Transactional, false, 2);
    p(Amf, "mm", "mobility management", "ue_context_release", "UE context release", Some("n2"),
      "3GPP TS 38.413",
      msgs![("ue_context_release_command", "UE CONTEXT RELEASE COMMAND"),
            ("ue_context_release_complete", "UE CONTEXT RELEASE COMPLETE")],
      Transactional, false, 2);
    p(Amf, "lcs", "location services", "lcs_ni_lr", "LCS network induced location request", None,
      "3GPP TS 23.273",
      msgs![("provide_location_request", "PROVIDE LOCATION REQUEST"),
            ("provide_location_response", "PROVIDE LOCATION RESPONSE")],
      Transactional, false, 0);
    p(Amf, "lcs", "location services", "lcs_mt_lr", "LCS mobile terminated location request", None,
      "3GPP TS 23.273",
      msgs![("provide_location_request", "PROVIDE LOCATION REQUEST"),
            ("provide_location_response", "PROVIDE LOCATION RESPONSE")],
      Transactional, false, 0);
    p(Amf, "lcs", "location services", "lcs_mo_lr", "LCS mobile originated location request", None,
      "3GPP TS 23.273",
      msgs![("location_services_request", "MO-LR REQUEST"), ("location_services_response", "MO-LR RESPONSE")],
      Transactional, false, 0);
    p(Amf, "cc", "call control", "ul_nas_transport", "uplink NAS transport", Some("n1"),
      "3GPP TS 24.501",
      msgs![("ul_nas_transport", "UL NAS TRANSPORT")],
      MessageOnly, false, 2);
    p(Amf, "cc", "call control", "dl_nas_transport", "downlink NAS transport", Some("n1"),
      "3GPP TS 24.501",
      msgs![("dl_nas_transport", "DL NAS TRANSPORT")],
      MessageOnly, false, 2);
    p(Amf, "mm", "mobility management", "ngap_transport", "NGAP signalling transport", Some("n2"),
      "3GPP TS 38.413",
      msgs![("ngap_initial_ue_message", "INITIAL UE MESSAGE"), ("ngap_error_indication", "ERROR INDICATION")],
      MessageOnly, false, 2);
    p(Amf, "cc", "call control", "registered_subscribers", "registered subscribers", None,
      "3GPP TS 23.501",
      msgs![],
      GaugeGroup, true, 2);
    p(Amf, "cc", "call control", "connected_ues", "connected UEs in CM-CONNECTED state", None,
      "3GPP TS 23.501",
      msgs![],
      GaugeGroup, false, 2);
    p(Amf, "mm", "mobility management", "ngap_associations", "NGAP associations with gNodeBs", Some("n2"),
      "3GPP TS 38.412",
      msgs![],
      GaugeGroup, false, 1);

    // ---------------- SMF ----------------
    p(Smf, "pdu", "PDU session management", "pdu_session_establishment", "PDU session establishment", Some("n11"),
      "3GPP TS 24.501",
      msgs![("pdu_session_establishment_request", "PDU SESSION ESTABLISHMENT REQUEST"),
            ("pdu_session_establishment_accept", "PDU SESSION ESTABLISHMENT ACCEPT"),
            ("pdu_session_establishment_reject", "PDU SESSION ESTABLISHMENT REJECT")],
      Transactional, true, 2);
    p(Smf, "pdu", "PDU session management", "pdu_session_modification", "PDU session modification", Some("n11"),
      "3GPP TS 24.501",
      msgs![("pdu_session_modification_request", "PDU SESSION MODIFICATION REQUEST"),
            ("pdu_session_modification_command", "PDU SESSION MODIFICATION COMMAND"),
            ("pdu_session_modification_reject", "PDU SESSION MODIFICATION REJECT")],
      Transactional, true, 1);
    p(Smf, "pdu", "PDU session management", "pdu_session_release", "PDU session release", Some("n11"),
      "3GPP TS 24.501",
      msgs![("pdu_session_release_request", "PDU SESSION RELEASE REQUEST"),
            ("pdu_session_release_command", "PDU SESSION RELEASE COMMAND"),
            ("pdu_session_release_complete", "PDU SESSION RELEASE COMPLETE")],
      Transactional, true, 2);
    p(Smf, "pdu", "PDU session management", "ip_address_allocation", "IP address allocation", None,
      "3GPP TS 23.501",
      msgs![],
      Transactional, false, 2);
    p(Smf, "pdu", "PDU session management", "qos_flow_setup", "QoS flow setup", Some("n11"),
      "3GPP TS 23.501",
      msgs![],
      Transactional, true, 1);
    p(Smf, "pdu", "PDU session management", "qos_flow_modification", "QoS flow modification", Some("n11"),
      "3GPP TS 23.501",
      msgs![],
      Transactional, false, 1);
    p(Smf, "n4", "N4 interface", "n4_session_establishment", "N4 session establishment", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_establishment_request", "PFCP SESSION ESTABLISHMENT REQUEST"),
            ("session_establishment_response", "PFCP SESSION ESTABLISHMENT RESPONSE")],
      Transactional, false, 2);
    p(Smf, "n4", "N4 interface", "n4_session_modification", "N4 session modification", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_modification_request", "PFCP SESSION MODIFICATION REQUEST"),
            ("session_modification_response", "PFCP SESSION MODIFICATION RESPONSE")],
      Transactional, false, 2);
    p(Smf, "n4", "N4 interface", "n4_session_release", "N4 session release", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_deletion_request", "PFCP SESSION DELETION REQUEST"),
            ("session_deletion_response", "PFCP SESSION DELETION RESPONSE")],
      Transactional, false, 2);
    p(Smf, "n4", "N4 interface", "n4_association_setup", "N4 association setup", Some("n4"),
      "3GPP TS 29.244",
      msgs![("association_setup_request", "PFCP ASSOCIATION SETUP REQUEST"),
            ("association_setup_response", "PFCP ASSOCIATION SETUP RESPONSE")],
      Transactional, false, 0);
    p(Smf, "n4", "N4 interface", "n4_heartbeat", "N4 heartbeat", Some("n4"),
      "3GPP TS 29.244",
      msgs![("heartbeat_request", "PFCP HEARTBEAT REQUEST"), ("heartbeat_response", "PFCP HEARTBEAT RESPONSE")],
      MessageOnly, false, 1);
    p(Smf, "chg", "charging", "charging_data_request", "charging data request", None,
      "3GPP TS 32.255",
      msgs![("charging_data_request", "CHARGING DATA REQUEST"), ("charging_data_response", "CHARGING DATA RESPONSE")],
      Transactional, false, 1);
    p(Smf, "pol", "policy control", "policy_association_establishment", "policy association establishment", Some("n7"),
      "3GPP TS 29.512",
      msgs![],
      Transactional, false, 1);
    p(Smf, "pol", "policy control", "policy_association_update", "policy association update", Some("n7"),
      "3GPP TS 29.512",
      msgs![],
      Transactional, false, 1);
    p(Smf, "pdu", "PDU session management", "active_pdu_sessions", "active PDU sessions", None,
      "3GPP TS 23.501",
      msgs![],
      GaugeGroup, true, 2);
    p(Smf, "pdu", "PDU session management", "allocated_ipv4_addresses", "allocated IPv4 addresses", None,
      "3GPP TS 23.501",
      msgs![],
      GaugeGroup, false, 2);
    p(Smf, "pdu", "PDU session management", "active_qos_flows", "active QoS flows", None,
      "3GPP TS 23.501",
      msgs![],
      GaugeGroup, false, 2);
    p(Smf, "n4", "N4 interface", "n4_associations", "active N4 associations", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      GaugeGroup, false, 0);

    // ---------------- NRF ----------------
    p(Nrf, "nfm", "NF management", "nf_registration", "NF registration", None,
      "3GPP TS 29.510",
      msgs![("nf_register_request", "NFRegister request"), ("nf_register_response", "NFRegister response")],
      Transactional, false, 1);
    p(Nrf, "nfm", "NF management", "nf_profile_update", "NF profile update", None,
      "3GPP TS 29.510",
      msgs![("nf_update_request", "NFUpdate request"), ("nf_update_response", "NFUpdate response")],
      Transactional, false, 1);
    p(Nrf, "nfm", "NF management", "nf_deregistration", "NF deregistration", None,
      "3GPP TS 29.510",
      msgs![("nf_deregister_request", "NFDeregister request"), ("nf_deregister_response", "NFDeregister response")],
      Transactional, false, 0);
    p(Nrf, "nfm", "NF management", "nf_heartbeat", "NF heartbeat", None,
      "3GPP TS 29.510",
      msgs![("nf_heartbeat_request", "NFUpdate heartbeat request"), ("nf_heartbeat_response", "NFUpdate heartbeat response")],
      Transactional, false, 2);
    p(Nrf, "disc", "NF discovery", "nf_discovery", "NF discovery", None,
      "3GPP TS 29.510",
      msgs![("nf_discovery_request", "NFDiscover request"), ("nf_discovery_response", "NFDiscover response")],
      Transactional, false, 2);
    p(Nrf, "oauth", "access token", "access_token_request", "access token request", None,
      "3GPP TS 29.510",
      msgs![("access_token_request", "AccessToken request"), ("access_token_response", "AccessToken response")],
      Transactional, false, 1);
    p(Nrf, "nfm", "NF management", "nf_status_subscription", "NF status subscription", None,
      "3GPP TS 29.510",
      msgs![("status_subscribe_request", "NFStatusSubscribe request"),
            ("status_notify", "NFStatusNotify")],
      Transactional, false, 1);
    p(Nrf, "nfm", "NF management", "nf_status_unsubscription", "NF status unsubscription", None,
      "3GPP TS 29.510",
      msgs![("status_unsubscribe_request", "NFStatusUnsubscribe request")],
      Transactional, false, 0);
    p(Nrf, "nfm", "NF management", "registered_nf_profiles", "registered NF profiles", None,
      "3GPP TS 29.510",
      msgs![],
      GaugeGroup, false, 1);
    p(Nrf, "nfm", "NF management", "active_subscriptions", "active status subscriptions", None,
      "3GPP TS 29.510",
      msgs![],
      GaugeGroup, false, 1);

    // ---------------- NSSF ----------------
    p(Nssf, "nss", "slice selection", "network_slice_selection", "network slice selection", None,
      "3GPP TS 29.531",
      msgs![("nsselection_get", "NSSelection GET"), ("nsselection_response", "NSSelection response")],
      Transactional, true, 2);
    p(Nssf, "nss", "slice selection", "nssai_availability_update", "NSSAI availability update", None,
      "3GPP TS 29.531",
      msgs![("nssaiavailability_put", "NSSAIAvailability PUT"), ("nssaiavailability_response", "NSSAIAvailability response")],
      Transactional, false, 1);
    p(Nssf, "nss", "slice selection", "nssai_availability_subscribe", "NSSAI availability subscription", None,
      "3GPP TS 29.531",
      msgs![("nssaiavailability_subscribe", "NSSAIAvailability subscribe")],
      Transactional, false, 0);
    p(Nssf, "nss", "slice selection", "configured_snssais", "configured S-NSSAIs", None,
      "3GPP TS 23.501",
      msgs![],
      GaugeGroup, false, 0);

    // ---------------- N3IWF ----------------
    p(N3iwf, "iwk", "untrusted access interworking", "ikev2_sa_initiation", "IKEv2 SA initiation", Some("nwu"),
      "3GPP TS 24.502",
      msgs![("ike_sa_init_request", "IKE_SA_INIT request"), ("ike_sa_init_response", "IKE_SA_INIT response")],
      Transactional, false, 1);
    p(N3iwf, "iwk", "untrusted access interworking", "ikev2_authentication", "IKEv2 authentication", Some("nwu"),
      "3GPP TS 24.502",
      msgs![("ike_auth_request", "IKE_AUTH request"), ("ike_auth_response", "IKE_AUTH response")],
      Transactional, false, 1);
    p(N3iwf, "iwk", "untrusted access interworking", "ipsec_child_sa_setup", "IPsec child SA setup", Some("nwu"),
      "3GPP TS 24.502",
      msgs![("create_child_sa_request", "CREATE_CHILD_SA request"), ("create_child_sa_response", "CREATE_CHILD_SA response")],
      Transactional, false, 1);
    p(N3iwf, "iwk", "untrusted access interworking", "nwu_registration", "registration over untrusted non-3GPP access", Some("nwu"),
      "3GPP TS 23.502",
      msgs![("nwu_registration_request", "REGISTRATION REQUEST over NWu"),
            ("nwu_registration_accept", "REGISTRATION ACCEPT over NWu")],
      Transactional, false, 1);
    p(N3iwf, "iwk", "untrusted access interworking", "nwu_pdu_session_establishment", "PDU session establishment over untrusted access", Some("nwu"),
      "3GPP TS 23.502",
      msgs![("nwu_pdu_establishment_request", "PDU SESSION ESTABLISHMENT REQUEST over NWu")],
      Transactional, false, 1);
    p(N3iwf, "iwk", "untrusted access interworking", "ue_connection_release", "UE connection release", Some("nwu"),
      "3GPP TS 24.502",
      msgs![("informational_delete", "INFORMATIONAL delete")],
      Transactional, false, 1);
    p(N3iwf, "iwk", "untrusted access interworking", "nwu_traffic", "NWu tunnelled traffic", Some("nwu"),
      "3GPP TS 24.502",
      msgs![],
      Traffic, false, 2);
    p(N3iwf, "iwk", "untrusted access interworking", "active_ipsec_tunnels", "active IPsec tunnels", Some("nwu"),
      "3GPP TS 24.502",
      msgs![],
      GaugeGroup, false, 1);

    // ---------------- UPF ----------------
    p(Upf, "up", "user plane", "n3_traffic", "N3 interface traffic", Some("n3"),
      "3GPP TS 29.281",
      msgs![],
      Traffic, true, 2);
    p(Upf, "up", "user plane", "n6_traffic", "N6 interface traffic", Some("n6"),
      "3GPP TS 23.501",
      msgs![],
      Traffic, true, 2);
    p(Upf, "up", "user plane", "n9_traffic", "N9 interface traffic", Some("n9"),
      "3GPP TS 29.281",
      msgs![],
      Traffic, false, 1);
    p(Upf, "n4c", "N4 control", "n4_session_establishment", "N4 session establishment", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_establishment_request", "PFCP SESSION ESTABLISHMENT REQUEST"),
            ("session_establishment_response", "PFCP SESSION ESTABLISHMENT RESPONSE")],
      Transactional, false, 2);
    p(Upf, "n4c", "N4 control", "n4_session_modification", "N4 session modification", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_modification_request", "PFCP SESSION MODIFICATION REQUEST"),
            ("session_modification_response", "PFCP SESSION MODIFICATION RESPONSE")],
      Transactional, false, 2);
    p(Upf, "n4c", "N4 control", "n4_session_release", "N4 session release", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_deletion_request", "PFCP SESSION DELETION REQUEST"),
            ("session_deletion_response", "PFCP SESSION DELETION RESPONSE")],
      Transactional, false, 2);
    p(Upf, "n4c", "N4 control", "pdr_install", "packet detection rule installation", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      Transactional, false, 2);
    p(Upf, "n4c", "N4 control", "far_install", "forwarding action rule installation", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      Transactional, false, 2);
    p(Upf, "n4c", "N4 control", "qer_install", "QoS enforcement rule installation", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      Transactional, false, 1);
    p(Upf, "n4c", "N4 control", "urr_install", "usage reporting rule installation", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      Transactional, false, 1);
    p(Upf, "n4c", "N4 control", "usage_reporting", "usage reporting", Some("n4"),
      "3GPP TS 29.244",
      msgs![("session_report_request", "PFCP SESSION REPORT REQUEST"),
            ("session_report_response", "PFCP SESSION REPORT RESPONSE")],
      Transactional, false, 1);
    p(Upf, "up", "user plane", "gtpu_echo", "GTP-U echo", Some("n3"),
      "3GPP TS 29.281",
      msgs![("echo_request", "GTP-U ECHO REQUEST"), ("echo_response", "GTP-U ECHO RESPONSE")],
      MessageOnly, false, 1);
    p(Upf, "up", "user plane", "active_n4_sessions", "active N4 sessions", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      GaugeGroup, false, 2);
    p(Upf, "up", "user plane", "active_gtpu_tunnels", "active GTP-U tunnels", Some("n3"),
      "3GPP TS 29.281",
      msgs![],
      GaugeGroup, false, 2);
    p(Upf, "up", "user plane", "installed_pdrs", "installed packet detection rules", Some("n4"),
      "3GPP TS 29.244",
      msgs![],
      GaugeGroup, false, 2);

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_procedures_for_every_nf() {
        let cat = ProcedureCatalog::builtin();
        for nf in NetworkFunction::ALL {
            assert!(
                !cat.for_nf(nf).is_empty(),
                "no procedures for {nf}"
            );
        }
    }

    #[test]
    fn slugs_are_unique_within_nf_and_service() {
        let cat = ProcedureCatalog::builtin();
        let mut seen = std::collections::HashSet::new();
        for p in cat.procedures() {
            assert!(
                seen.insert((p.nf, p.service, p.slug)),
                "duplicate procedure {}/{}/{}",
                p.nf,
                p.service,
                p.slug
            );
        }
    }

    #[test]
    fn transactional_procedures_exist_per_nf() {
        let cat = ProcedureCatalog::builtin();
        for nf in NetworkFunction::ALL {
            assert!(
                cat.for_nf(nf)
                    .iter()
                    .any(|p| p.kind == ProcKind::Transactional),
                "{nf} lacks transactional procedures"
            );
        }
    }

    #[test]
    fn paper_example_procedures_present() {
        let cat = ProcedureCatalog::builtin();
        // §3.1 documents amfcc_n1_auth_request; §4.2.3 discusses
        // the LCS NI-LR procedure and initial registration.
        assert!(cat.procedures().iter().any(|p| p.slug == "authentication" && p.nf == NetworkFunction::Amf));
        assert!(cat.procedures().iter().any(|p| p.slug == "lcs_ni_lr"));
        assert!(cat.procedures().iter().any(|p| p.slug == "initial_registration"));
    }

    #[test]
    fn failure_cause_pool_is_large_and_unique() {
        assert!(FAILURE_CAUSES.len() >= 25);
        let mut slugs: Vec<&str> = FAILURE_CAUSES.iter().map(|(s, _)| *s).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), FAILURE_CAUSES.len());
    }

    #[test]
    fn intensity_levels_are_bounded() {
        for p in ProcedureCatalog::builtin().procedures() {
            assert!(p.intensity <= 2);
        }
    }
}

//! 5G-core network functions covered by the catalog.

use serde::{Deserialize, Serialize};

/// The network functions the paper's vNF provider covers (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NetworkFunction {
    /// Access and Mobility Management Function.
    Amf,
    /// Session Management Function.
    Smf,
    /// NF Repository Function.
    Nrf,
    /// Non-3GPP Inter-Working Function.
    N3iwf,
    /// Network Slice Selection Function.
    Nssf,
    /// User Plane Function.
    Upf,
    /// The DIO copilot itself, as a telemetry producer (self-observation
    /// via `dio-obs`). Not part of [`NetworkFunction::ALL`], which stays
    /// the six 5G-core NFs the synthetic world is built from.
    Dio,
}

impl NetworkFunction {
    /// All covered 5G-core NFs in canonical order.
    pub const ALL: [NetworkFunction; 6] = [
        NetworkFunction::Amf,
        NetworkFunction::Smf,
        NetworkFunction::Nrf,
        NetworkFunction::N3iwf,
        NetworkFunction::Nssf,
        NetworkFunction::Upf,
    ];

    /// Lower-case abbreviation used as the metric-name prefix.
    pub fn abbrev(&self) -> &'static str {
        match self {
            NetworkFunction::Amf => "amf",
            NetworkFunction::Smf => "smf",
            NetworkFunction::Nrf => "nrf",
            NetworkFunction::N3iwf => "n3iwf",
            NetworkFunction::Nssf => "nssf",
            NetworkFunction::Upf => "upf",
            NetworkFunction::Dio => "dio",
        }
    }

    /// Upper-case abbreviation used in descriptions.
    pub fn upper(&self) -> &'static str {
        match self {
            NetworkFunction::Amf => "AMF",
            NetworkFunction::Smf => "SMF",
            NetworkFunction::Nrf => "NRF",
            NetworkFunction::N3iwf => "N3IWF",
            NetworkFunction::Nssf => "NSSF",
            NetworkFunction::Upf => "UPF",
            NetworkFunction::Dio => "DIO",
        }
    }

    /// Spelled-out name.
    pub fn full_name(&self) -> &'static str {
        match self {
            NetworkFunction::Amf => "Access and Mobility Management Function",
            NetworkFunction::Smf => "Session Management Function",
            NetworkFunction::Nrf => "NF Repository Function",
            NetworkFunction::N3iwf => "Non-3GPP Inter-Working Function",
            NetworkFunction::Nssf => "Network Slice Selection Function",
            NetworkFunction::Upf => "User Plane Function",
            NetworkFunction::Dio => "Data-Insight-Outlook Copilot",
        }
    }

    /// Parse from an abbreviation (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "amf" => Some(NetworkFunction::Amf),
            "smf" => Some(NetworkFunction::Smf),
            "nrf" => Some(NetworkFunction::Nrf),
            "n3iwf" => Some(NetworkFunction::N3iwf),
            "nssf" => Some(NetworkFunction::Nssf),
            "upf" => Some(NetworkFunction::Upf),
            "dio" => Some(NetworkFunction::Dio),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetworkFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.upper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrev_round_trips_through_parse() {
        for nf in NetworkFunction::ALL {
            assert_eq!(NetworkFunction::parse(nf.abbrev()), Some(nf));
            assert_eq!(NetworkFunction::parse(nf.upper()), Some(nf));
        }
        assert_eq!(NetworkFunction::parse("xyz"), None);
    }

    #[test]
    fn display_is_upper() {
        assert_eq!(NetworkFunction::Amf.to_string(), "AMF");
        assert_eq!(NetworkFunction::N3iwf.to_string(), "N3IWF");
    }

    #[test]
    fn all_contains_six_distinct() {
        let mut v = NetworkFunction::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 6);
    }
}

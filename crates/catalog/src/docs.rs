//! Vendor-documentation rendering and segmentation.
//!
//! §4 of the paper: "The text from the documentation for different
//! metrics, made available by the vNF provider, is extracted and
//! segmented into text samples containing the names and detailed
//! description of each of the counters." This module simulates both
//! directions: it renders the generated catalog into a monolithic
//! vendor-manual text, and segments such text back into per-metric
//! [`DocSample`]s.

use crate::generator::Catalog;
use serde::{Deserialize, Serialize};

/// One segmented text sample: a metric (or function) name plus its
/// detailed description — the unit of embedding and retrieval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocSample {
    /// The counter or function name.
    pub name: String,
    /// The descriptive text.
    pub text: String,
}

impl DocSample {
    /// The string fed to the embedder.
    pub fn embedding_text(&self) -> String {
        format!("{}: {}", self.name, self.text)
    }
}

/// Render the catalog as a vendor manual: one section per metric, with a
/// header line and the description body.
pub fn render_manual(catalog: &Catalog) -> String {
    let mut out = String::new();
    for m in &catalog.metrics {
        out.push_str("## ");
        out.push_str(&m.name);
        out.push('\n');
        out.push_str(&m.description);
        out.push_str("\n\n");
    }
    out
}

/// Segment a vendor manual (as produced by [`render_manual`], or any
/// text using `## <counter-name>` headers) into per-metric samples.
pub fn segment_manual(manual: &str) -> Vec<DocSample> {
    let mut samples = Vec::new();
    let mut current_name: Option<String> = None;
    let mut current_text = String::new();
    for line in manual.lines() {
        if let Some(header) = line.strip_prefix("## ") {
            if let Some(name) = current_name.take() {
                samples.push(DocSample {
                    name,
                    text: current_text.trim().to_string(),
                });
            }
            current_name = Some(header.trim().to_string());
            current_text.clear();
        } else if current_name.is_some() {
            current_text.push_str(line);
            current_text.push('\n');
        }
    }
    if let Some(name) = current_name {
        samples.push(DocSample {
            name,
            text: current_text.trim().to_string(),
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_catalog, CatalogConfig};

    #[test]
    fn render_then_segment_round_trips() {
        let catalog = generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        });
        let manual = render_manual(&catalog);
        let samples = segment_manual(&manual);
        assert_eq!(samples.len(), catalog.len());
        for (s, m) in samples.iter().zip(&catalog.metrics) {
            assert_eq!(s.name, m.name);
            assert_eq!(s.text, m.description);
        }
    }

    #[test]
    fn segment_handles_empty_and_garbage() {
        assert!(segment_manual("").is_empty());
        assert!(segment_manual("no headers here\njust prose\n").is_empty());
    }

    #[test]
    fn segment_handles_trailing_section() {
        let samples = segment_manual("## a\ntext a\n## b\ntext b");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].name, "b");
        assert_eq!(samples[1].text, "text b");
    }

    #[test]
    fn embedding_text_prefixes_name() {
        let s = DocSample {
            name: "m1".into(),
            text: "does things".into(),
        };
        assert_eq!(s.embedding_text(), "m1: does things");
    }
}

//! Bespoke expert function definitions (paper §3.1).
//!
//! "Sometimes, it is not straightforward to amalgamate various counters
//! to compute a specific outcome; such a process might necessitate
//! specialist-crafted functions or queries." Each [`FunctionDef`] is a
//! named, documented PromQL template with typed parameters; the copilot
//! retrieves them like metric descriptions and the code generator can
//! instantiate them.

use serde::{Deserialize, Serialize};

/// One parameter of an expert function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionParam {
    /// Placeholder name used in the body, e.g. `success`.
    pub name: String,
    /// What the caller must bind it to.
    pub description: String,
}

/// A specialist-contributed function over catalog metrics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// Function name, e.g. `success_rate`.
    pub name: String,
    /// What the function computes (fed to the embedder).
    pub description: String,
    /// Parameters bound at instantiation time.
    pub params: Vec<FunctionParam>,
    /// PromQL body with `$param` placeholders.
    pub body: String,
    /// Description of the output.
    pub output: String,
    /// Contributor attribution (paper §3.4: expert data "is … attributed
    /// to the relevant expert as its source").
    pub author: String,
}

impl FunctionDef {
    /// Instantiate the body, replacing each `$param` with its binding.
    /// Returns `None` when a binding is missing.
    pub fn instantiate(&self, bindings: &[(&str, &str)]) -> Option<String> {
        let mut body = self.body.clone();
        for p in &self.params {
            let placeholder = format!("${}", p.name);
            let value = bindings.iter().find(|(n, _)| *n == p.name)?.1;
            body = body.replace(&placeholder, value);
        }
        Some(body)
    }

    /// The text sample fed to the embedder.
    pub fn text_sample(&self) -> String {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|p| format!("{} ({})", p.name, p.description))
            .collect();
        format!(
            "function {}: {} Parameters: {}. Output: {}",
            self.name,
            self.description,
            params.join("; "),
            self.output
        )
    }
}

/// The built-in expert function library.
pub fn builtin_functions() -> Vec<FunctionDef> {
    let f = |name: &str,
             description: &str,
             params: &[(&str, &str)],
             body: &str,
             output: &str,
             author: &str| FunctionDef {
        name: name.to_string(),
        description: description.to_string(),
        params: params
            .iter()
            .map(|(n, d)| FunctionParam {
                name: n.to_string(),
                description: d.to_string(),
            })
            .collect(),
        body: body.to_string(),
        output: output.to_string(),
        author: author.to_string(),
    };

    vec![
        f(
            "success_rate",
            "Computes the percentage success rate of a procedure from its success and attempt counters. \
             Standard KPI used on operator dashboards for registration, authentication, PDU session and \
             handover procedures.",
            &[
                ("success", "the procedure success counter metric name"),
                ("attempt", "the procedure attempt counter metric name"),
            ],
            "100 * sum($success) / sum($attempt)",
            "success rate in percent (0-100)",
            "expert:radio-core-team",
        ),
        f(
            "failure_ratio",
            "Computes the fraction of procedure attempts that failed with a specific cause, from a \
             per-cause failure counter and the attempt counter.",
            &[
                ("failure", "the per-cause failure counter metric name"),
                ("attempt", "the procedure attempt counter metric name"),
            ],
            "sum($failure) / sum($attempt)",
            "failure ratio as a fraction (0-1)",
            "expert:radio-core-team",
        ),
        f(
            "per_second_rate",
            "Computes the per-second increase rate of a counter over a five minute window, the standard \
             way to turn a monotone counter into a rate for dashboards.",
            &[("metric", "the counter metric name")],
            "sum(rate($metric[5m]))",
            "events per second",
            "expert:observability-team",
        ),
        f(
            "throughput_gbps",
            "Computes user-plane throughput in gigabits per second from a byte counter, over a five \
             minute window. Multiplies the byte rate by eight and divides by one billion.",
            &[("bytes", "the byte counter metric name")],
            "sum(rate($bytes[5m])) * 8 / 1e9",
            "throughput in Gbps",
            "expert:user-plane-team",
        ),
        f(
            "mean_procedure_duration_ms",
            "Computes the mean procedure duration in milliseconds by dividing the accumulated duration \
             counter by the procedure success counter.",
            &[
                ("duration", "the accumulated duration counter (milliseconds)"),
                ("success", "the procedure success counter"),
            ],
            "sum($duration) / sum($success)",
            "mean duration in milliseconds",
            "expert:radio-core-team",
        ),
        f(
            "drop_ratio",
            "Computes the packet drop ratio on a user-plane interface from dropped-packet and \
             forwarded-packet counters.",
            &[
                ("dropped", "the dropped packets counter"),
                ("packets", "the forwarded packets counter"),
            ],
            "sum($dropped) / sum($packets)",
            "drop ratio as a fraction (0-1)",
            "expert:user-plane-team",
        ),
        f(
            "availability_percent",
            "Estimates service availability as the percentage of HTTP requests answered without a \
             server error on a service-based interface.",
            &[
                ("errors", "the 5xx response counter for the SBI API"),
                ("requests", "the received request counter for the SBI API"),
            ],
            "100 * (1 - sum($errors) / sum($requests))",
            "availability in percent (0-100)",
            "expert:sbi-platform-team",
        ),
        f(
            "retransmission_ratio",
            "Computes the ratio of retransmitted messages to sent messages for a protocol message, a \
             signal of transport problems on the reference point.",
            &[
                ("retransmitted", "the retransmitted message counter"),
                ("sent", "the sent message counter"),
            ],
            "sum($retransmitted) / sum($sent)",
            "retransmission ratio as a fraction (0-1)",
            "expert:transport-team",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_library_is_nonempty_and_unique() {
        let fns = builtin_functions();
        assert!(fns.len() >= 8);
        let mut names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fns.len());
    }

    #[test]
    fn instantiate_replaces_all_placeholders() {
        let fns = builtin_functions();
        let sr = fns.iter().find(|f| f.name == "success_rate").unwrap();
        let q = sr
            .instantiate(&[
                ("success", "amfcc_n1_initial_registration_success"),
                ("attempt", "amfcc_n1_initial_registration_attempt"),
            ])
            .unwrap();
        assert_eq!(
            q,
            "100 * sum(amfcc_n1_initial_registration_success) / sum(amfcc_n1_initial_registration_attempt)"
        );
        assert!(!q.contains('$'));
    }

    #[test]
    fn instantiate_missing_binding_is_none() {
        let fns = builtin_functions();
        let sr = fns.iter().find(|f| f.name == "success_rate").unwrap();
        assert!(sr.instantiate(&[("success", "x")]).is_none());
    }

    #[test]
    fn text_sample_mentions_params_and_output() {
        let fns = builtin_functions();
        let t = fns[0].text_sample();
        assert!(t.contains("function success_rate"));
        assert!(t.contains("attempt"));
        assert!(t.contains("Output"));
    }

    #[test]
    fn every_function_has_author_attribution() {
        for f in builtin_functions() {
            assert!(f.author.starts_with("expert:"), "{} lacks attribution", f.name);
        }
    }
}

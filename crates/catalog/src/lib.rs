//! # dio-catalog
//!
//! The domain-specific database substrate (paper §3.1).
//!
//! The paper builds DIO copilot on "more than 3000 metrics and statistics"
//! produced by a major virtual-network-function provider for the 5G core,
//! spanning AMF, SMF, NRF, N3IWF, NSSF, and UPF, with per-counter vendor
//! documentation ("The number of authentication requests sent by AMF. The
//! AUTHENTICATION REQUEST message is defined in section 8.2.1 of 3GPP TS
//! 24.501. 64-bit counter"). That documentation is proprietary, so this
//! crate *generates* a structurally faithful catalog:
//!
//! * [`generator::generate_catalog`] expands per-NF procedure grammars
//!   (registration, authentication, PDU-session establishment, NF
//!   discovery, …) into 3000+ [`MetricDef`]s, each with a specialised
//!   glued name, a multi-sentence description, a 3GPP spec reference,
//!   a counter type, and traffic-shape hints for the synthesiser;
//! * procedures stay grouped ([`ProcedureGroup`]) so the benchmark can
//!   ask about derived entities ("initial registration procedure success
//!   rate") that need several counters combined;
//! * [`functions`] holds bespoke expert function definitions (success
//!   rate, per-second rate, traffic gbps…) — the "function definitions"
//!   the paper adds to the domain DB;
//! * [`docs`] renders and segments the synthetic vendor documentation
//!   the way §4 describes ("text … is extracted and segmented into text
//!   samples");
//! * [`DomainDb`] is the runtime store the copilot retrieves from, and
//!   the thing the expert-feedback loop appends to.

pub mod docs;
pub mod functions;
pub mod generator;
pub mod nf;
pub mod procedures;
pub mod store;
pub mod types;

pub use docs::DocSample;
pub use functions::FunctionDef;
pub use generator::{generate_catalog, Catalog, CatalogConfig};
pub use nf::NetworkFunction;
pub use procedures::{Procedure, ProcedureCatalog};
pub use store::DomainDb;
pub use types::{CounterType, MetricDef, MetricRole, ProcedureGroup, TrafficHint, Unit};

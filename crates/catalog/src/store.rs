//! The runtime domain-specific database (paper §3.1).
//!
//! Holds metric definitions and expert function definitions, supports
//! lookup by name, produces the text samples the context extractor
//! embeds, and accepts expert contributions at runtime (the §3.4
//! feedback loop "is then added to the domain-specific database and
//! attributed to the relevant expert as its source").

use crate::docs::DocSample;
use crate::functions::{builtin_functions, FunctionDef};
use crate::generator::{generate_catalog, Catalog, CatalogConfig};
use crate::types::{MetricDef, ProcedureGroup};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An entry's provenance: shipped with the vendor docs or contributed
/// by an expert through the feedback loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Part of the generated vendor catalog.
    Vendor,
    /// Contributed by a named expert via the feedback loop.
    Expert {
        /// Expert identity, e.g. `expert:alice`.
        author: String,
    },
}

/// The domain-specific database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainDb {
    metrics: BTreeMap<String, (MetricDef, Provenance)>,
    functions: BTreeMap<String, (FunctionDef, Provenance)>,
    groups: Vec<ProcedureGroup>,
    /// Free-form expert notes (question → guidance), added via feedback.
    notes: Vec<ExpertNote>,
}

/// A free-form expert note: retrievable context that is neither a metric
/// nor a function — e.g. "to compute LCS NI-LR success rate, use …".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertNote {
    /// Short title used as the sample name.
    pub title: String,
    /// The guidance text.
    pub text: String,
    /// Contributing expert.
    pub author: String,
}

impl DomainDb {
    /// Build from a generated catalog plus the built-in function library.
    pub fn from_catalog(catalog: Catalog) -> Self {
        let mut metrics = BTreeMap::new();
        for m in catalog.metrics {
            metrics.insert(m.name.clone(), (m, Provenance::Vendor));
        }
        let mut functions = BTreeMap::new();
        for f in builtin_functions() {
            functions.insert(f.name.clone(), (f, Provenance::Vendor));
        }
        DomainDb {
            metrics,
            functions,
            groups: catalog.groups,
            notes: Vec::new(),
        }
    }

    /// Build with the default catalog configuration.
    pub fn standard() -> Self {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig::default()))
    }

    /// Number of metric definitions.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }

    /// Number of function definitions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Number of expert notes.
    pub fn note_count(&self) -> usize {
        self.notes.len()
    }

    /// Look up a metric definition.
    pub fn metric(&self, name: &str) -> Option<&MetricDef> {
        self.metrics.get(name).map(|(m, _)| m)
    }

    /// Look up a metric's provenance.
    pub fn metric_provenance(&self, name: &str) -> Option<&Provenance> {
        self.metrics.get(name).map(|(_, p)| p)
    }

    /// Look up a function definition.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.get(name).map(|(f, _)| f)
    }

    /// Iterate all metric definitions in name order.
    pub fn metrics(&self) -> impl Iterator<Item = &MetricDef> {
        self.metrics.values().map(|(m, _)| m)
    }

    /// Iterate all function definitions in name order.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.functions.values().map(|(f, _)| f)
    }

    /// Procedure groups from the generated catalog.
    pub fn groups(&self) -> &[ProcedureGroup] {
        &self.groups
    }

    /// Add (or replace) a metric contributed by an expert.
    pub fn add_expert_metric(&mut self, metric: MetricDef, author: &str) {
        self.metrics.insert(
            metric.name.clone(),
            (
                metric,
                Provenance::Expert {
                    author: author.to_string(),
                },
            ),
        );
    }

    /// Add (or replace) a function contributed by an expert.
    pub fn add_expert_function(&mut self, function: FunctionDef, author: &str) {
        self.functions.insert(
            function.name.clone(),
            (
                function,
                Provenance::Expert {
                    author: author.to_string(),
                },
            ),
        );
    }

    /// Add a free-form expert note.
    pub fn add_expert_note(&mut self, note: ExpertNote) {
        self.notes.push(note);
    }

    /// All text samples for embedding: one per metric, one per function,
    /// one per expert note — the corpus the context extractor indexes.
    pub fn text_samples(&self) -> Vec<DocSample> {
        let mut out: Vec<DocSample> = Vec::with_capacity(self.metrics.len() + self.functions.len());
        for (m, _) in self.metrics.values() {
            out.push(DocSample {
                name: m.name.clone(),
                text: m.description.clone(),
            });
        }
        for (f, _) in self.functions.values() {
            out.push(DocSample {
                name: format!("function:{}", f.name),
                text: f.text_sample(),
            });
        }
        for n in &self.notes {
            out.push(DocSample {
                name: format!("note:{}", n.title),
                text: format!("{} (contributed by {})", n.text, n.author),
            });
        }
        out
    }

    /// Metric names only (what the DIN-SQL baseline gets as "schema").
    pub fn metric_names(&self) -> Vec<&str> {
        self.metrics.keys().map(|s| s.as_str()).collect()
    }

    /// Serialise the whole domain DB (vendor entries, expert
    /// contributions, provenance, notes) to JSON — persistence across
    /// copilot restarts.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("domain db serialises")
    }

    /// Restore a domain DB from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::NetworkFunction;
    use crate::types::{CounterType, MetricRole, TrafficHint, Unit};

    fn small_db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig {
            slice_variants: false,
            sbi_counters: false,
            ..CatalogConfig::default()
        }))
    }

    fn dummy_metric(name: &str) -> MetricDef {
        MetricDef {
            name: name.to_string(),
            nf: NetworkFunction::Amf,
            service: "cc".into(),
            procedure: "custom".into(),
            procedure_display: "custom".into(),
            role: MetricRole::Attempt,
            counter_type: CounterType::Counter64,
            unit: Unit::Count,
            description: "An expert-contributed counter.".into(),
            spec_ref: "3GPP TS 23.501".into(),
            traffic: TrafficHint {
                base_rate: 1.0,
                couple_ratio: None,
            },
        }
    }

    #[test]
    fn standard_db_matches_paper_scale() {
        let db = DomainDb::standard();
        assert!(db.metric_count() >= 3000);
        assert!(db.function_count() >= 8);
    }

    #[test]
    fn lookup_and_provenance() {
        let db = small_db();
        let name = db.metric_names()[0].to_string();
        assert!(db.metric(&name).is_some());
        assert_eq!(db.metric_provenance(&name), Some(&Provenance::Vendor));
        assert!(db.metric("nope").is_none());
    }

    #[test]
    fn expert_contribution_is_attributed() {
        let mut db = small_db();
        db.add_expert_metric(dummy_metric("custom_expert_counter"), "expert:alice");
        assert!(db.metric("custom_expert_counter").is_some());
        assert_eq!(
            db.metric_provenance("custom_expert_counter"),
            Some(&Provenance::Expert {
                author: "expert:alice".to_string()
            })
        );
    }

    #[test]
    fn text_samples_cover_metrics_functions_and_notes() {
        let mut db = small_db();
        let base = db.text_samples().len();
        assert_eq!(base, db.metric_count() + db.function_count());
        db.add_expert_note(ExpertNote {
            title: "lcs-guidance".into(),
            text: "Use the network induced location request counters.".into(),
            author: "expert:bob".into(),
        });
        let samples = db.text_samples();
        assert_eq!(samples.len(), base + 1);
        assert!(samples.iter().any(|s| s.name == "note:lcs-guidance"));
        assert!(samples
            .iter()
            .find(|s| s.name == "note:lcs-guidance")
            .unwrap()
            .text
            .contains("expert:bob"));
    }

    #[test]
    fn metric_names_are_sorted_and_unique() {
        let db = small_db();
        let names = db.metric_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn domain_db_round_trips_through_json_with_provenance() {
        let mut db = small_db();
        db.add_expert_metric(dummy_metric("expert_added"), "expert:alice");
        db.add_expert_note(ExpertNote {
            title: "note".into(),
            text: "guidance".into(),
            author: "expert:bob".into(),
        });
        let json = db.to_json();
        let back = DomainDb::from_json(&json).unwrap();
        assert_eq!(back.metric_count(), db.metric_count());
        assert_eq!(back.note_count(), 1);
        assert_eq!(
            back.metric_provenance("expert_added"),
            Some(&Provenance::Expert {
                author: "expert:alice".into()
            })
        );
        assert!(DomainDb::from_json("{broken").is_err());
    }

    #[test]
    fn expert_function_can_extend_library() {
        let mut db = small_db();
        let f = FunctionDef {
            name: "ni_lr_success_rate".into(),
            description: "Success rate of the LCS network induced location request procedure.".into(),
            params: vec![],
            body: "100 * sum(amflcs_lcs_ni_lr_success) / sum(amflcs_lcs_ni_lr_attempt)".into(),
            output: "percent".into(),
            author: "expert:carol".into(),
        };
        db.add_expert_function(f, "expert:carol");
        assert!(db.function("ni_lr_success_rate").is_some());
        assert_eq!(db.function_count(), builtin_functions().len() + 1);
    }
}

//! Byte-level storage media for WALs and snapshots.
//!
//! [`Medium`] is the minimal append/load surface crash-consistent
//! persistence needs. [`MemMedium`] is the deterministic in-memory
//! implementation the tests and benches run against; [`ChaosMedium`]
//! wraps any medium and applies an [`Injector`](crate::Injector)
//! schedule to every operation — failing appends before any byte lands
//! (so a caller that saw `Ok` really has a durable record), tearing
//! writes, truncating or bit-flipping reads.

use crate::injector::{DataFaultKind, Injector};

/// A byte-level storage device. Append-oriented: WALs append frames,
/// snapshots truncate-and-append.
pub trait Medium {
    /// Read the entire contents.
    fn load(&mut self) -> std::io::Result<Vec<u8>>;
    /// Append `bytes` atomically from the caller's perspective: on
    /// `Err`, none of `bytes` may be considered durable (though a
    /// chaotic device may still have torn them onto the media).
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Discard all contents.
    fn truncate(&mut self) -> std::io::Result<()>;
    /// Current size in bytes.
    fn len(&self) -> usize;
    /// True when the medium holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory medium; the deterministic baseline device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemMedium {
    bytes: Vec<u8>,
}

impl MemMedium {
    /// An empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw contents (for crash tests that cut the byte stream).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the raw contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for MemMedium {
    fn from(bytes: Vec<u8>) -> Self {
        MemMedium { bytes }
    }
}

impl Medium for MemMedium {
    fn load(&mut self) -> std::io::Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }

    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self) -> std::io::Result<()> {
        self.bytes.clear();
        Ok(())
    }

    fn len(&self) -> usize {
        self.bytes.len()
    }
}

fn transient(op: &str, n: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected transient I/O fault on {op} op {n}"),
    )
}

/// Flip one bit of `bytes` in place, positioned by `aux`. No-op on an
/// empty buffer.
fn flip_bit(bytes: &mut [u8], aux: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = (aux as usize) % (bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
}

/// A medium that applies an injector's fault schedule to every
/// operation. Faults on `append` damage the stored bytes (a torn or
/// corrupted write the device acknowledged or not); faults on `load`
/// damage only the returned copy (a bad read — the media is fine).
#[derive(Debug)]
pub struct ChaosMedium<M> {
    inner: M,
    injector: Injector,
}

impl<M: Medium> ChaosMedium<M> {
    /// Wrap `inner` with the given schedule.
    pub fn new(inner: M, injector: Injector) -> Self {
        ChaosMedium { inner, injector }
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The fault schedule, for draining its event log.
    pub fn injector(&self) -> &Injector {
        &self.injector
    }

    /// Unwrap into the inner medium and the schedule.
    pub fn into_parts(self) -> (M, Injector) {
        (self.inner, self.injector)
    }
}

impl<M: Medium> Medium for ChaosMedium<M> {
    fn load(&mut self) -> std::io::Result<Vec<u8>> {
        let op = self.injector.ops();
        let fault = self.injector.decide();
        let mut bytes = match fault.map(|f| f.kind) {
            Some(DataFaultKind::TransientIo) => return Err(transient("load", op)),
            _ => self.inner.load()?,
        };
        match fault {
            Some(f) if f.kind == DataFaultKind::TruncatedRead && !bytes.is_empty() => {
                bytes.truncate((f.aux as usize) % bytes.len());
            }
            Some(f) if f.kind == DataFaultKind::BitFlip => flip_bit(&mut bytes, f.aux),
            Some(f) if f.kind == DataFaultKind::LatencySpike => {
                self.injector.note_latency_spike();
            }
            _ => {}
        }
        Ok(bytes)
    }

    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let op = self.injector.ops();
        match self.injector.decide() {
            Some(f) => match f.kind {
                // Fail before any byte lands: an `Err` append is never
                // partially durable, so acknowledged writes stay exact.
                DataFaultKind::TransientIo => Err(transient("append", op)),
                DataFaultKind::TruncatedRead => {
                    // A torn write: only a prefix reaches the media, and
                    // the device still reports failure (no ack).
                    let cut = if bytes.is_empty() {
                        0
                    } else {
                        (f.aux as usize) % bytes.len()
                    };
                    self.inner.append(&bytes[..cut])?;
                    Err(transient("append (torn)", op))
                }
                DataFaultKind::BitFlip => {
                    // A corrupted write the device acknowledged: the
                    // caller believes the record is durable, recovery
                    // must quarantine it by checksum.
                    let mut damaged = bytes.to_vec();
                    flip_bit(&mut damaged, f.aux);
                    self.inner.append(&damaged)
                }
                DataFaultKind::LatencySpike => {
                    self.injector.note_latency_spike();
                    self.inner.append(bytes)
                }
            },
            None => self.inner.append(bytes),
        }
    }

    fn truncate(&mut self) -> std::io::Result<()> {
        self.inner.truncate()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::ChaosConfig;

    fn only(kind_index: usize, p: f64, seed: u64) -> Injector {
        let mut weights = [0u32; 4];
        weights[kind_index] = 1;
        Injector::new(ChaosConfig {
            seed,
            fault_probability: p,
            weights,
            latency_spike_micros: 100,
        })
    }

    #[test]
    fn mem_medium_roundtrips() {
        let mut m = MemMedium::new();
        assert!(m.is_empty());
        m.append(b"abc").unwrap();
        m.append(b"def").unwrap();
        assert_eq!(m.load().unwrap(), b"abcdef");
        assert_eq!(m.len(), 6);
        m.truncate().unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn disabled_chaos_is_transparent() {
        let mut m = ChaosMedium::new(MemMedium::new(), Injector::new(ChaosConfig::disabled(1)));
        m.append(b"hello").unwrap();
        assert_eq!(m.load().unwrap(), b"hello");
        assert!(m.injector().log().is_empty());
    }

    #[test]
    fn transient_io_append_leaves_media_untouched() {
        let mut m = ChaosMedium::new(MemMedium::new(), only(1, 1.0, 2));
        assert!(m.append(b"record").is_err());
        assert_eq!(m.inner().bytes(), b"");
    }

    #[test]
    fn torn_append_writes_a_strict_prefix_and_errors() {
        let mut m = ChaosMedium::new(MemMedium::new(), only(2, 1.0, 3));
        let payload = b"0123456789";
        assert!(m.append(payload).is_err());
        let written = m.inner().bytes();
        assert!(written.len() < payload.len());
        assert_eq!(written, &payload[..written.len()]);
    }

    #[test]
    fn bit_flip_append_is_acknowledged_but_damaged() {
        let mut m = ChaosMedium::new(MemMedium::new(), only(3, 1.0, 4));
        m.append(b"0123456789").unwrap();
        let written = m.inner().bytes();
        assert_eq!(written.len(), 10);
        assert_ne!(written, b"0123456789");
        // Exactly one bit differs.
        let diff: u32 = written
            .iter()
            .zip(b"0123456789".iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn truncated_read_damages_the_copy_not_the_media() {
        let mut m = ChaosMedium::new(MemMedium::new(), only(2, 0.0, 5));
        m.append(b"0123456789").unwrap();
        // Re-wrap with p=1 so the next load is cut short.
        let (inner, _) = m.into_parts();
        let mut m = ChaosMedium::new(inner, only(2, 1.0, 5));
        let got = m.load().unwrap();
        assert!(got.len() < 10);
        assert_eq!(m.inner().bytes().len(), 10);
    }

    #[test]
    fn latency_spike_records_and_succeeds() {
        let mut m = ChaosMedium::new(MemMedium::new(), only(0, 1.0, 6));
        m.append(b"abc").unwrap();
        let _ = m.load().unwrap();
        assert_eq!(m.injector().injected_latency_micros(), 200);
        assert_eq!(m.inner().bytes(), b"abc");
    }
}

//! Checksummed, length-prefixed record framing.
//!
//! Every durable record is written as one frame:
//!
//! ```text
//! +------+------+----------------+----------------+---------+
//! | 0xD1 | 0x0C | len (u32 LE)   | crc32 (u32 LE) | payload |
//! +------+------+----------------+----------------+---------+
//! ```
//!
//! [`decode_all`] scans a byte stream frame by frame and classifies
//! every anomaly instead of aborting: a frame whose checksum fails (or
//! whose header is garbled) is *quarantined* and the scan resynchronises
//! on the next magic marker; a final frame cut short by a torn write is
//! reported as clean truncation. Payloads are expected to be text
//! (JSON): the magic byte `0xD1` cannot appear inside UTF-8 encoded
//! ASCII, which keeps resynchronisation free of false positives.

use crate::crc32::crc32;

/// Frame magic marker.
pub const MAGIC: [u8; 2] = [0xD1, 0x0C];

/// Bytes of magic + length + checksum preceding each payload.
pub const FRAME_HEADER_LEN: usize = 10;

/// Encode one payload as a framed record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a scan of a framed byte stream found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanReport {
    /// Payloads of every frame that passed its checksum, in order.
    pub records: Vec<Vec<u8>>,
    /// Frame indexes (0-based, counting every frame attempt) that were
    /// quarantined for a bad magic, bad length, or checksum mismatch.
    pub corrupt_at: Vec<usize>,
    /// The stream ended inside a frame — a torn final write. The
    /// partial frame is discarded; everything before it is intact.
    pub truncated_tail: bool,
}

impl ScanReport {
    /// Number of quarantined frames.
    pub fn corrupt_frames(&self) -> usize {
        self.corrupt_at.len()
    }

    /// True when every byte decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.corrupt_at.is_empty() && !self.truncated_tail
    }
}

/// Position of the next magic marker at or after `from`, if any.
fn find_magic(bytes: &[u8], from: usize) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(MAGIC.len())
        .position(|w| w == MAGIC)
        .map(|p| from + p)
}

/// Scan `bytes` into records, quarantining corruption and detecting a
/// torn tail. Never panics, never loses an intact record that precedes
/// the damage.
pub fn decode_all(bytes: &[u8]) -> ScanReport {
    let mut report = ScanReport::default();
    let mut pos = 0usize;
    let mut frame_idx = 0usize;
    while pos < bytes.len() {
        // Not at a magic marker: quarantine the garbage run and resync.
        if bytes[pos..].len() < MAGIC.len() || bytes[pos..pos + MAGIC.len()] != MAGIC {
            match find_magic(bytes, pos + 1) {
                Some(next) => {
                    report.corrupt_at.push(frame_idx);
                    frame_idx += 1;
                    pos = next;
                    continue;
                }
                None => {
                    // Garbage to end of stream. If it is shorter than a
                    // magic marker it may be a torn header byte.
                    if bytes.len() - pos < MAGIC.len() {
                        report.truncated_tail = true;
                    } else {
                        report.corrupt_at.push(frame_idx);
                    }
                    return report;
                }
            }
        }
        // Header incomplete: torn write at the end of the stream.
        if bytes.len() - pos < FRAME_HEADER_LEN {
            report.truncated_tail = true;
            return report;
        }
        let len = u32::from_le_bytes(bytes[pos + 2..pos + 6].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 6..pos + 10].try_into().unwrap());
        let payload_start = pos + FRAME_HEADER_LEN;
        if payload_start + len > bytes.len() {
            // Frame extends past the end: either a torn final write or a
            // corrupted length field. A later magic marker means more
            // data follows, so it must be corruption.
            match find_magic(bytes, pos + MAGIC.len()) {
                Some(next) => {
                    report.corrupt_at.push(frame_idx);
                    frame_idx += 1;
                    pos = next;
                    continue;
                }
                None => {
                    report.truncated_tail = true;
                    return report;
                }
            }
        }
        let payload = &bytes[payload_start..payload_start + len];
        if crc32(payload) == crc {
            report.records.push(payload.to_vec());
            pos = payload_start + len;
        } else {
            report.corrupt_at.push(frame_idx);
            pos = match find_magic(bytes, pos + MAGIC.len()) {
                Some(next) => next,
                None => return report,
            };
        }
        frame_idx += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(payloads: &[&str]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            out.extend_from_slice(&encode_record(p.as_bytes()));
        }
        out
    }

    #[test]
    fn roundtrips_multiple_records() {
        let s = stream(&["alpha", "", r#"{"k":"v"}"#]);
        let r = decode_all(&s);
        assert!(r.is_clean());
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0], b"alpha");
        assert_eq!(r.records[1], b"");
        assert_eq!(r.records[2], br#"{"k":"v"}"#);
    }

    #[test]
    fn empty_stream_is_clean() {
        assert!(decode_all(&[]).is_clean());
    }

    #[test]
    fn every_truncation_point_is_clean_prefix_or_torn_tail() {
        let payloads = ["first-record", "second", "third-one-longer"];
        let s = stream(&payloads);
        // Frame boundaries: records become visible exactly when their
        // full frame fits in the prefix.
        let mut boundary = Vec::new();
        let mut acc = 0;
        for p in &payloads {
            acc += FRAME_HEADER_LEN + p.len();
            boundary.push(acc);
        }
        for cut in 0..=s.len() {
            let r = decode_all(&s[..cut]);
            let expected = boundary.iter().filter(|&&b| b <= cut).count();
            assert_eq!(r.records.len(), expected, "cut at {cut}");
            assert_eq!(r.corrupt_frames(), 0, "cut at {cut} surfaced corruption");
            let at_boundary = cut == 0 || boundary.contains(&cut);
            assert_eq!(r.truncated_tail, !at_boundary, "cut at {cut}");
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec, payloads[i].as_bytes(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn bit_flip_quarantines_only_the_hit_frame() {
        let payloads = ["aaaa", "bbbb", "cccc"];
        let s = stream(&payloads);
        // Flip one bit in the middle record's payload.
        let mut broken = s.clone();
        let second_payload = FRAME_HEADER_LEN + 4 + FRAME_HEADER_LEN + 1;
        broken[second_payload] ^= 0x10;
        let r = decode_all(&broken);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0], b"aaaa");
        assert_eq!(r.records[1], b"cccc");
        assert_eq!(r.corrupt_frames(), 1);
        assert!(!r.truncated_tail);
    }

    #[test]
    fn garbled_magic_resyncs_to_next_record() {
        let mut s = stream(&["one", "two"]);
        s[0] = 0x00; // destroy the first frame's magic
        let r = decode_all(&s);
        assert_eq!(r.records, vec![b"two".to_vec()]);
        assert_eq!(r.corrupt_frames(), 1);
    }

    #[test]
    fn corrupt_length_field_does_not_swallow_later_records() {
        let mut s = stream(&["head", "tail"]);
        s[2] = 0xFF; // inflate the first frame's length
        let r = decode_all(&s);
        assert_eq!(r.records, vec![b"tail".to_vec()]);
        assert_eq!(r.corrupt_frames(), 1);
        assert!(!r.truncated_tail);
    }

    #[test]
    fn pure_garbage_is_quarantined_not_panicked() {
        let garbage: Vec<u8> = (0u8..=255).filter(|&b| b != 0xD1).cycle().take(300).collect();
        let r = decode_all(&garbage);
        assert!(r.records.is_empty());
        assert!(r.corrupt_frames() > 0 || r.truncated_tail);
    }
}

//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding every framed
//! record. Table-driven, computed once at first use; no external
//! dependencies so the leaf crate stays dependency-free.

use std::sync::OnceLock;

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (same parameters as zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"the quick brown fox".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}

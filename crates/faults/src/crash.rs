//! Seeded node crash/restart schedule — the process-level chaos layer.
//!
//! [`crate::Injector`] plants *data-plane* faults (torn writes, bit
//! flips) inside one process. A cluster drill also needs *node-level*
//! faults: kill a whole simulated node mid-write, then bring it back
//! and watch it rejoin. [`CrashSchedule`] plans those events with the
//! same discipline as the injector: every decision draws a fixed
//! number of RNG values (roll + pick) whether or not it fires, so the
//! schedule is a pure function of `(seed, op index)` and replays
//! exactly.
//!
//! The schedule keeps **at most one node down at a time**: when a node
//! is down, the next fired event restarts it; otherwise an up node is
//! killed. That matches the failure model the replication layer is
//! built to survive (single-node loss), so drills exercise
//! failover/rejoin cycles instead of unrecoverable multi-node outages.

use crate::injector::ChaosConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One planned node-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeFault {
    /// Kill the node: it loses all volatile state; its durable media
    /// (WAL bytes) survive for recovery.
    Crash {
        /// The node to kill.
        node: usize,
    },
    /// Restart a previously killed node: it recovers from its durable
    /// media and rejoins.
    Restart {
        /// The node to bring back.
        node: usize,
    },
}

impl NodeFault {
    /// The node the fault targets.
    pub fn node(&self) -> usize {
        match self {
            NodeFault::Crash { node } | NodeFault::Restart { node } => *node,
        }
    }
}

/// One fired event, for post-hoc analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFaultEvent {
    /// 0-based index of the cluster operation the fault preceded.
    pub op: usize,
    /// What fired.
    pub fault: NodeFault,
}

/// A seeded schedule of node crash/restart events over cluster
/// operations. Build one per drill via [`CrashSchedule::derived`] (or
/// [`crate::Injector::node_crashes`]).
#[derive(Debug)]
pub struct CrashSchedule {
    rng: ChaCha8Rng,
    probability: f64,
    down: Vec<bool>,
    ops: usize,
    log: Vec<NodeFaultEvent>,
}

impl CrashSchedule {
    /// Schedule over `n_nodes` nodes directly from `seed`, firing with
    /// `probability` per decision.
    pub fn new(seed: u64, probability: f64, n_nodes: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "crash probability {probability} outside [0,1]"
        );
        assert!(n_nodes > 0, "crash schedule needs at least one node");
        CrashSchedule {
            rng: ChaCha8Rng::seed_from_u64(seed),
            probability,
            down: vec![false; n_nodes],
            ops: 0,
            log: Vec::new(),
        }
    }

    /// Schedule derived from a [`ChaosConfig`]: the seed is mixed with
    /// the `"node-crash"` layer tag (like [`crate::Injector::derived`])
    /// and `fault_probability` gates each decision.
    pub fn derived(config: &ChaosConfig, n_nodes: usize) -> Self {
        let mut mixed = config.clone();
        // FNV-1a of "node-crash", matching the injector's layer mixing.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in "node-crash".bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        mixed.seed ^= h;
        Self::new(mixed.seed, mixed.fault_probability, n_nodes)
    }

    /// Decisions made so far.
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Every fired event, in op order.
    pub fn log(&self) -> &[NodeFaultEvent] {
        &self.log
    }

    /// Nodes the schedule currently believes are down.
    pub fn down_nodes(&self) -> Vec<usize> {
        self.down
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.then_some(i))
            .collect()
    }

    /// Decide the node fault (if any) preceding the next cluster
    /// operation. Always draws exactly two RNG values (roll, pick) so
    /// the schedule depends only on `(seed, op index)`.
    pub fn decide(&mut self) -> Option<NodeFault> {
        let op = self.ops;
        self.ops += 1;
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let pick: u64 = self.rng.gen_range(0..u64::MAX);
        if roll >= self.probability {
            return None;
        }
        let downed: Vec<usize> = self.down_nodes();
        let fault = if downed.is_empty() {
            let node = (pick % self.down.len() as u64) as usize;
            self.down[node] = true;
            NodeFault::Crash { node }
        } else {
            let node = downed[(pick % downed.len() as u64) as usize];
            self.down[node] = false;
            NodeFault::Restart { node }
        };
        self.log.push(NodeFaultEvent { op, fault });
        Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64, p: f64, nodes: usize, ops: usize) -> Vec<Option<NodeFault>> {
        let mut cs = CrashSchedule::new(seed, p, nodes);
        (0..ops).map(|_| cs.decide()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = run(7, 0.3, 4, 100);
        assert_eq!(a, run(7, 0.3, 4, 100));
        assert!(a.iter().any(Option::is_some));
        assert!(a.iter().any(Option::is_none));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(run(1, 0.5, 4, 80), run(2, 0.5, 4, 80));
    }

    #[test]
    fn at_most_one_node_down_and_crash_restart_alternate_per_node() {
        let mut cs = CrashSchedule::new(11, 1.0, 3);
        let mut down: Option<usize> = None;
        for _ in 0..50 {
            match cs.decide().expect("p=1 always fires") {
                NodeFault::Crash { node } => {
                    assert_eq!(down, None, "crashed while another node was down");
                    down = Some(node);
                }
                NodeFault::Restart { node } => {
                    assert_eq!(down, Some(node), "restarted a node that was not down");
                    down = None;
                }
            }
            assert!(cs.down_nodes().len() <= 1);
        }
    }

    #[test]
    fn zero_probability_never_fires_but_advances() {
        let mut cs = CrashSchedule::new(3, 0.0, 2);
        for _ in 0..20 {
            assert_eq!(cs.decide(), None);
        }
        assert_eq!(cs.ops(), 20);
        assert!(cs.log().is_empty());
    }

    #[test]
    fn derived_differs_from_raw_seed_but_reproduces() {
        let cfg = ChaosConfig::with_probability(9, 0.4);
        let mk = || {
            let mut cs = CrashSchedule::derived(&cfg, 4);
            (0..60).map(|_| cs.decide()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
        assert_ne!(mk(), run(9, 0.4, 4, 60));
    }

    #[test]
    fn single_node_cluster_cycles_kill_restart() {
        let mut cs = CrashSchedule::new(5, 1.0, 1);
        assert_eq!(cs.decide(), Some(NodeFault::Crash { node: 0 }));
        assert_eq!(cs.decide(), Some(NodeFault::Restart { node: 0 }));
        assert_eq!(cs.decide(), Some(NodeFault::Crash { node: 0 }));
    }
}

//! Seeded data-plane fault schedule.
//!
//! [`Injector`] mirrors `FaultyModel`'s design for storage operations:
//! every operation draws a fixed number of RNG values (roll + pick +
//! aux) whether or not a fault fires, so the schedule is a pure
//! function of `(seed, op index)` and outcomes never perturb it. Any
//! run replays exactly, which is what makes the chaos soak debuggable.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The data-plane failure modes the injector can plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataFaultKind {
    /// The operation succeeds but a latency spike is recorded.
    LatencySpike,
    /// The operation fails outright with a transient I/O error; a retry
    /// against the same medium succeeds.
    TransientIo,
    /// A read returns only a prefix of the stored bytes (a torn page or
    /// short read the caller did not check).
    TruncatedRead,
    /// One bit of the stored or returned bytes is flipped.
    BitFlip,
}

impl DataFaultKind {
    /// All kinds, in weight order.
    pub const ALL: [DataFaultKind; 4] = [
        DataFaultKind::LatencySpike,
        DataFaultKind::TransientIo,
        DataFaultKind::TruncatedRead,
        DataFaultKind::BitFlip,
    ];

    /// Stable snake-case label value for metrics.
    pub fn slug(&self) -> &'static str {
        match self {
            DataFaultKind::LatencySpike => "latency",
            DataFaultKind::TransientIo => "transient_io",
            DataFaultKind::TruncatedRead => "truncated_read",
            DataFaultKind::BitFlip => "bit_flip",
        }
    }
}

/// Configuration for a data-plane fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// RNG seed; the entire schedule derives from it (optionally mixed
    /// with a per-layer tag, see [`Injector::derived`]).
    pub seed: u64,
    /// Probability that any given storage operation is faulted.
    pub fault_probability: f64,
    /// Relative weights of each kind, indexed like [`DataFaultKind::ALL`].
    /// A zero weight disables that kind.
    pub weights: [u32; 4],
    /// Simulated extra latency recorded on a latency spike (µs).
    pub latency_spike_micros: u64,
}

impl ChaosConfig {
    /// Uniform mix of all four kinds at probability `p`.
    pub fn with_probability(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault probability {p} outside [0,1]");
        ChaosConfig {
            seed,
            fault_probability: p,
            weights: [1, 1, 1, 1],
            latency_spike_micros: 50_000,
        }
    }

    /// No faults at all; the schedule still advances deterministically.
    pub fn disabled(seed: u64) -> Self {
        Self::with_probability(seed, 0.0)
    }
}

/// A fault decision for one operation. `aux` is the operation-local
/// entropy used to place the damage (which byte to cut at, which bit to
/// flip) — pre-drawn so applying the fault costs no extra RNG values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// What to inject.
    pub kind: DataFaultKind,
    /// Operation-local entropy for placing the damage.
    pub aux: u64,
}

/// One injected fault, for post-hoc analysis and metric export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataFaultEvent {
    /// 0-based index of the storage operation the fault hit.
    pub op: usize,
    /// What was injected.
    pub kind: DataFaultKind,
}

/// FNV-1a over a layer tag, for deriving per-layer seeds.
fn fnv1a(tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A seeded fault schedule over storage operations.
#[derive(Debug)]
pub struct Injector {
    config: ChaosConfig,
    rng: ChaCha8Rng,
    ops: usize,
    log: Vec<DataFaultEvent>,
    injected_latency_micros: u64,
}

impl Injector {
    /// Schedule directly from `config.seed`.
    pub fn new(config: ChaosConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Injector {
            config,
            rng,
            ops: 0,
            log: Vec::new(),
            injected_latency_micros: 0,
        }
    }

    /// Schedule for one layer: the seed is mixed with a hash of the
    /// layer tag so "tsdb", "vecstore", and "feedback" injectors built
    /// from the same config fault independently but reproducibly.
    pub fn derived(config: &ChaosConfig, layer: &str) -> Self {
        let mut c = config.clone();
        c.seed ^= fnv1a(layer);
        Self::new(c)
    }

    /// The schedule configuration (post-derivation).
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Number of operations decided so far.
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Every fault injected so far, in op order.
    pub fn log(&self) -> &[DataFaultEvent] {
        &self.log
    }

    /// Total simulated latency injected by spikes (µs). Recorded, never
    /// slept — determinism forbids touching the clock.
    pub fn injected_latency_micros(&self) -> u64 {
        self.injected_latency_micros
    }

    /// Record a latency spike's cost. Called by whoever applies a
    /// [`DataFaultKind::LatencySpike`] decision.
    pub fn note_latency_spike(&mut self) {
        self.injected_latency_micros += self.config.latency_spike_micros;
    }

    /// The node-crash layer over this injector's schedule: a
    /// [`crate::CrashSchedule`] derived from the same config, planning
    /// whole-node kill/restart events for cluster drills while this
    /// injector keeps planting intra-node data faults.
    pub fn node_crashes(&self, n_nodes: usize) -> crate::CrashSchedule {
        crate::CrashSchedule::derived(&self.config, n_nodes)
    }

    /// Decide the fault for the next operation. Always draws exactly
    /// three RNG values (roll, pick, aux) so the schedule depends only
    /// on (seed, op index), never on which faults fired earlier or how
    /// callers reacted to them.
    pub fn decide(&mut self) -> Option<PlannedFault> {
        let op = self.ops;
        self.ops += 1;
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let pick: u64 = self.rng.gen_range(0..u64::MAX);
        let aux: u64 = self.rng.gen_range(0..u64::MAX);
        if roll >= self.config.fault_probability {
            return None;
        }
        let total: u64 = self.config.weights.iter().map(|w| *w as u64).sum();
        if total == 0 {
            return None;
        }
        let mut target = pick % total;
        for (kind, w) in DataFaultKind::ALL.iter().zip(self.config.weights.iter()) {
            if target < *w as u64 {
                self.log.push(DataFaultEvent { op, kind: *kind });
                return Some(PlannedFault { kind: *kind, aux });
            }
            target -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, p: f64, ops: usize) -> Vec<Option<PlannedFault>> {
        let mut inj = Injector::new(ChaosConfig::with_probability(seed, p));
        (0..ops).map(|_| inj.decide()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = schedule(42, 0.5, 100);
        let b = schedule(42, 0.5, 100);
        assert_eq!(a, b);
        assert!(a.iter().any(Option::is_some), "p=0.5 over 100 ops injected nothing");
        assert!(a.iter().any(Option::is_none), "p=0.5 faulted every op");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(schedule(1, 0.5, 100), schedule(2, 0.5, 100));
    }

    #[test]
    fn derived_layers_fault_independently_but_reproducibly() {
        let cfg = ChaosConfig::with_probability(7, 0.5);
        let mk = |layer: &str| {
            let mut inj = Injector::derived(&cfg, layer);
            (0..50).map(|_| inj.decide()).collect::<Vec<_>>()
        };
        assert_eq!(mk("tsdb"), mk("tsdb"));
        assert_ne!(mk("tsdb"), mk("vecstore"));
    }

    #[test]
    fn zero_probability_never_faults_but_still_advances() {
        let mut inj = Injector::new(ChaosConfig::disabled(3));
        for _ in 0..20 {
            assert_eq!(inj.decide(), None);
        }
        assert_eq!(inj.ops(), 20);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn weights_restrict_kinds() {
        let cfg = ChaosConfig {
            seed: 5,
            fault_probability: 1.0,
            weights: [0, 1, 0, 0], // only TransientIo
            latency_spike_micros: 0,
        };
        let mut inj = Injector::new(cfg);
        for _ in 0..20 {
            let f = inj.decide().expect("p=1 must fault");
            assert_eq!(f.kind, DataFaultKind::TransientIo);
        }
    }

    #[test]
    fn schedule_is_independent_of_outcomes() {
        // Whether callers react to a fault (retry, rebuild, …) never
        // touches the injector RNG, so the fault positions of two
        // differently-weighted schedules with the same seed coincide.
        let base = ChaosConfig {
            seed: 21,
            fault_probability: 0.4,
            weights: [1, 1, 1, 0],
            latency_spike_micros: 0,
        };
        let mut other = base.clone();
        other.weights = [1, 1, 1, 1];
        let mut a = Injector::new(base);
        let mut b = Injector::new(other);
        for _ in 0..60 {
            let _ = a.decide();
            let _ = b.decide();
        }
        let ops = |inj: &Injector| inj.log().iter().map(|e| e.op).collect::<Vec<_>>();
        assert_eq!(ops(&a), ops(&b));
    }

    #[test]
    fn latency_spikes_accumulate_without_sleeping() {
        let cfg = ChaosConfig {
            seed: 13,
            fault_probability: 1.0,
            weights: [1, 0, 0, 0], // only LatencySpike
            latency_spike_micros: 1_000,
        };
        let mut inj = Injector::new(cfg);
        for _ in 0..3 {
            let f = inj.decide().unwrap();
            assert_eq!(f.kind, DataFaultKind::LatencySpike);
            inj.note_latency_spike();
        }
        assert_eq!(inj.injected_latency_micros(), 3_000);
    }
}

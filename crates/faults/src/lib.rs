//! # dio-faults
//!
//! The data-plane counterpart of `dio-llm`'s `FaultyModel`: a shared
//! chaos layer for the stateful crates (`dio-tsdb`, `dio-vecstore`,
//! `dio-feedback`) plus the crash-consistent persistence primitives
//! they build on.
//!
//! Three pieces:
//!
//! * [`Injector`] — a seeded fault schedule over storage operations
//!   (latency spikes, transient I/O errors, truncated reads, bit
//!   flips). Like `FaultyModel`, the schedule is a pure function of
//!   `(seed, op index)`: every operation draws the same number of RNG
//!   values whether or not a fault fires, so outcomes never perturb
//!   the schedule and any run replays exactly.
//! * [`framing`] — checksummed, length-prefixed record framing for
//!   snapshots and write-ahead logs. A scan quarantines corrupt frames
//!   and distinguishes clean truncation (a torn final write) from
//!   mid-stream corruption, resynchronising on the record magic.
//! * [`Medium`] — the byte-level storage abstraction WALs and
//!   snapshots write through, with an in-memory implementation
//!   ([`MemMedium`]) and a chaos wrapper ([`ChaosMedium`]) that applies
//!   an injector's schedule to every load/append.
//!
//! This crate is a leaf: it must not depend on `dio-obs` (which pulls
//! in `dio-tsdb`), so fault *counting* is done by callers draining the
//! injector's event log into their own registries.

pub mod crash;
pub mod crc32;
pub mod framing;
pub mod injector;
pub mod medium;

pub use crash::{CrashSchedule, NodeFault, NodeFaultEvent};
pub use crc32::crc32;
pub use framing::{decode_all, encode_record, ScanReport, FRAME_HEADER_LEN, MAGIC};
pub use injector::{ChaosConfig, DataFaultEvent, DataFaultKind, Injector, PlannedFault};
pub use medium::{ChaosMedium, MemMedium, Medium};

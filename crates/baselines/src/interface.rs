//! The common evaluation surface.

use dio_llm::TokenUsage;
use serde::{Deserialize, Serialize};

/// A system's answer to one benchmark question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemAnswer {
    /// The query the system produced (empty when it answered directly).
    pub query: String,
    /// Single numeric answer, when execution produced one.
    pub numeric_answer: Option<f64>,
    /// All numeric values (multi-sample results).
    pub values: Vec<f64>,
    /// Execution/parse/policy failure, if any.
    pub error: Option<String>,
    /// Repair rounds the system ran before settling on this answer
    /// (always 0 for systems without a repair loop).
    pub repairs: usize,
    /// Whether the answer came from a degraded fallback rather than a
    /// generated query.
    pub degraded: bool,
    /// Token usage.
    pub usage: TokenUsage,
    /// Cost in US cents.
    pub cost_cents: f64,
}

/// Anything that can answer natural-language questions over the
/// operator store: DIO copilot and both baselines.
pub trait NlQuerySystem {
    /// System label used in result tables.
    fn system_name(&self) -> String;

    /// Answer a question with data evaluated at `ts`.
    fn answer(&mut self, question: &str, ts: i64) -> SystemAnswer;
}

impl NlQuerySystem for dio_copilot::DioCopilot {
    fn system_name(&self) -> String {
        format!("DIO copilot ({})", self.model_name())
    }

    fn answer(&mut self, question: &str, ts: i64) -> SystemAnswer {
        let r = self.ask(question, ts);
        SystemAnswer {
            query: r.query,
            numeric_answer: r.numeric_answer,
            values: r.values,
            error: r.error.map(|e| e.to_string()),
            repairs: r.trace.recovery.repairs,
            degraded: r.trace.recovery.degraded,
            usage: r.usage,
            cost_cents: r.cost_cents,
        }
    }
}

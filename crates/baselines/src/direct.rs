//! The bare foundation model baseline ("GPT-4" row of Table 3a).
//!
//! §4.2.1: "The same subset of metrics used in DIN-SQL prompt are used
//! in the prompt of this approach as well, without any examples." With
//! no few-shot exemplars the model falls back to its naive priors:
//! bare selectors, missing aggregations, missing unit factors — and
//! with names only (no vendor descriptions) it frequently picks or
//! fabricates the wrong counter entirely.

use crate::interface::{NlQuerySystem, SystemAnswer};
use dio_llm::{CompletionRequest, ContextItem, FoundationModel, PromptBuilder, TaskKind, TokenUsage};
use dio_sandbox::{Sandbox, SafetyPolicy};
use dio_tsdb::MetricStore;

/// The bare-model baseline.
pub struct DirectModelBaseline {
    schema: Vec<String>,
    model: Box<dyn FoundationModel>,
    sandbox: Sandbox,
    max_output_tokens: usize,
}

impl DirectModelBaseline {
    /// Build over the schema sample, model, and store.
    pub fn new(schema: Vec<String>, model: Box<dyn FoundationModel>, store: MetricStore) -> Self {
        DirectModelBaseline {
            schema,
            model,
            sandbox: Sandbox::new(store, SafetyPolicy::default()),
            max_output_tokens: 1000,
        }
    }

    /// Produce the Figure-1a-style conversational (non-executable)
    /// response for a question — what the bare chat model says when
    /// asked to answer directly instead of emitting a query.
    pub fn chat_response(&self, question: &str) -> String {
        let prompt = PromptBuilder::new()
            .system("You are a helpful assistant.")
            .context(self.schema_items())
            .question(question)
            .task(TaskKind::AnswerDirectly)
            .build(self.model.context_window(), self.max_output_tokens);
        match self.model.complete(&CompletionRequest {
            prompt,
            max_tokens: self.max_output_tokens,
            temperature: 0.0,
            timeout_ms: None,
        }) {
            Ok(c) => c.text,
            Err(e) => format!("(model error: {e})"),
        }
    }

    fn schema_items(&self) -> Vec<ContextItem> {
        self.schema
            .iter()
            .map(|n| ContextItem {
                name: n.clone(),
                text: String::new(),
                relevance: 0.0,
            })
            .collect()
    }
}

impl NlQuerySystem for DirectModelBaseline {
    fn system_name(&self) -> String {
        format!("bare model ({})", self.model.name())
    }

    fn answer(&mut self, question: &str, ts: i64) -> SystemAnswer {
        let mut usage = TokenUsage::default();
        let prompt = PromptBuilder::new()
            .system(
                "You translate operator analytics questions to PromQL. The CONTEXT lists the \
                 available metric names.",
            )
            .context(self.schema_items())
            .question(question)
            .task(TaskKind::GeneratePromql)
            .build(self.model.context_window(), self.max_output_tokens);
        let query = match self.model.complete(&CompletionRequest {
            prompt,
            max_tokens: self.max_output_tokens,
            temperature: 0.0,
            timeout_ms: None,
        }) {
            Ok(c) => {
                usage.add(c.usage);
                c.text.trim().to_string()
            }
            Err(e) => format!("# model error: {e}"),
        };
        let cost_cents = self.model.pricing().cost_cents(usage);
        match self.sandbox.execute(&query, ts) {
            Ok(o) => SystemAnswer {
                query: o.canonical_query,
                numeric_answer: o.value.as_scalar_like(),
                values: o.value.numeric_values(),
                error: None,
                repairs: 0,
                degraded: false,
                usage,
                cost_cents,
            },
            Err(e) => SystemAnswer {
                query,
                numeric_answer: None,
                values: Vec::new(),
                error: Some(e.to_string()),
                repairs: 0,
                degraded: false,
                usage,
                cost_cents,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_llm::{ModelProfile, SimulatedModel};
    use dio_tsdb::{Labels, Sample};

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for inst in ["amf-0", "amf-1"] {
            let l = Labels::from_pairs([
                ("__name__", "amfcc_n2_paging_attempt"),
                ("instance", inst),
            ]);
            for k in 0..=10i64 {
                st.append(l.clone(), Sample::new(k * 60_000, k as f64 * 50.0))
                    .unwrap();
            }
        }
        st
    }

    fn baseline(schema: Vec<String>) -> DirectModelBaseline {
        DirectModelBaseline::new(
            schema,
            Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            store(),
        )
    }

    #[test]
    fn bare_selector_fails_multi_instance_retrieval() {
        // Without few-shot, the naive answer is a bare selector, which
        // returns two samples — not a single numeric answer.
        let mut b = baseline(vec!["amfcc_n2_paging_attempt".into()]);
        let a = b.answer("How many paging attempts did the AMF handle?", 600_000);
        // Either a bare selector (2 values) or, when naive luck strikes,
        // the right sum. The naive path dominates.
        if a.numeric_answer.is_none() {
            assert_eq!(a.values.len(), 2);
        }
    }

    #[test]
    fn chat_response_is_hedged_prose() {
        let b = baseline(vec!["amfcc_n2_paging_attempt".into()]);
        let text = b.chat_response("How many PDU sessions are active?");
        assert!(text.contains("estimate") || text.contains("access"));
    }

    #[test]
    fn name_reports_model() {
        let b = baseline(vec![]);
        assert!(b.system_name().contains("bare model"));
    }

    #[test]
    fn cost_is_accounted() {
        let mut b = baseline(vec!["amfcc_n2_paging_attempt".into()]);
        let a = b.answer("How many paging attempts?", 600_000);
        assert!(a.usage.prompt_tokens > 0);
        assert!(a.cost_cents > 0.0);
    }
}

//! DIN-SQL-style decomposed prompting over operator data.
//!
//! DIN-SQL (Pourreza & Rafiei, 2023) decomposes text-to-SQL into schema
//! linking, query classification, generation, and self-correction. The
//! paper adapts it to operator data with two modifications (§4.2.1):
//! PromQL few-shot exemplars instead of SQL, and a 600-name random
//! schema sample instead of the full schema. This module mirrors that
//! adaptation over the simulated foundation model:
//!
//! 1. **Schema linking** — the model picks plausibly relevant names
//!    from the 600-name list (names only, no vendor descriptions: the
//!    central handicap relative to DIO's curated context);
//! 2. **Generation** — few-shot prompt over the linked names; when
//!    nothing links, the model fabricates names from the question plus
//!    whatever naming conventions the sample exposes;
//! 3. **Self-correction** — one repair pass: queries that execute to an
//!    empty result get their selectors re-linked against the schema,
//!    and un-aggregated expressions are wrapped in `sum(...)`.

use crate::interface::{NlQuerySystem, SystemAnswer};
use dio_llm::{
    CompletionRequest, ContextItem, FoundationModel, PromptBuilder, FewShotExample, TaskKind,
    TokenUsage,
};
use dio_sandbox::{Sandbox, SafetyPolicy};
use dio_tsdb::MetricStore;

/// The adapted DIN-SQL baseline.
pub struct DinSqlBaseline {
    schema: Vec<String>,
    exemplars: Vec<FewShotExample>,
    model: Box<dyn FoundationModel>,
    sandbox: Sandbox,
    max_output_tokens: usize,
    usage_total: TokenUsage,
}

impl DinSqlBaseline {
    /// Build over a schema sample, few-shot pool, model, and store.
    pub fn new(
        schema: Vec<String>,
        exemplars: Vec<FewShotExample>,
        model: Box<dyn FoundationModel>,
        store: MetricStore,
    ) -> Self {
        DinSqlBaseline {
            schema,
            exemplars,
            model,
            sandbox: Sandbox::new(store, SafetyPolicy::default()),
            max_output_tokens: 1000,
            usage_total: TokenUsage::default(),
        }
    }

    /// Accumulated token usage.
    pub fn usage(&self) -> TokenUsage {
        self.usage_total
    }

    fn schema_items(&self) -> Vec<ContextItem> {
        self.schema
            .iter()
            .map(|n| ContextItem {
                name: n.clone(),
                text: String::new(),
                relevance: 0.0,
            })
            .collect()
    }

    /// Stage 1: schema linking.
    fn link(&mut self, question: &str, usage: &mut TokenUsage) -> Vec<String> {
        let prompt = PromptBuilder::new()
            .system(
                "You translate operator analytics questions to PromQL. The CONTEXT lists the \
                 available metric names (schema).",
            )
            .context(self.schema_items())
            .question(question)
            .task(TaskKind::IdentifyMetrics)
            .build(self.model.context_window(), self.max_output_tokens);
        match self.model.complete(&CompletionRequest {
            prompt,
            max_tokens: self.max_output_tokens,
            temperature: 0.0,
            timeout_ms: None,
        }) {
            Ok(c) => {
                usage.add(c.usage);
                c.text
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty() && s != "none")
                    .collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// Stage 2: few-shot generation.
    fn generate(&mut self, question: &str, linked: &[String], usage: &mut TokenUsage) -> String {
        let context: Vec<ContextItem> = if linked.is_empty() {
            self.schema_items()
        } else {
            linked
                .iter()
                .map(|n| ContextItem {
                    name: n.clone(),
                    text: String::new(),
                    relevance: 1.0,
                })
                .collect()
        };
        let prompt = PromptBuilder::new()
            .system(
                "You translate operator analytics questions to PromQL. The CONTEXT lists the \
                 available metric names (schema).",
            )
            .context(context)
            .examples(self.exemplars.iter().cloned())
            .question(question)
            .task(TaskKind::GeneratePromql)
            .build(self.model.context_window(), self.max_output_tokens);
        match self.model.complete(&CompletionRequest {
            prompt,
            max_tokens: self.max_output_tokens,
            temperature: 0.0,
            timeout_ms: None,
        }) {
            Ok(c) => {
                usage.add(c.usage);
                c.text.trim().to_string()
            }
            Err(e) => format!("# model error: {e}"),
        }
    }

    /// Stage 3: self-correction — wrap bare selectors whose execution
    /// came back empty or multi-sample in `sum(...)`.
    fn self_correct(&self, query: &str, empty_or_multi: bool) -> Option<String> {
        if !empty_or_multi {
            return None;
        }
        let expr = dio_promql::parse(query).ok()?;
        // Only repair bare/unaggregated selectors.
        match expr {
            dio_promql::Expr::VectorSelector { .. } => Some(format!("sum({query})")),
            dio_promql::Expr::Call { ref func, .. } if func == "rate" => {
                Some(format!("sum({query})"))
            }
            _ => None,
        }
    }
}

impl NlQuerySystem for DinSqlBaseline {
    fn system_name(&self) -> String {
        format!("DIN-SQL ({})", self.model.name())
    }

    fn answer(&mut self, question: &str, ts: i64) -> SystemAnswer {
        let mut usage = TokenUsage::default();
        let linked = self.link(question, &mut usage);
        let mut query = self.generate(question, &linked, &mut usage);

        let mut outcome = self.sandbox.execute(&query, ts);
        // Self-correction pass.
        let needs_repair = match &outcome {
            Ok(o) => o.value.as_scalar_like().is_none(),
            Err(_) => true,
        };
        let mut repairs = 0usize;
        if let Some(fixed) = self.self_correct(&query, needs_repair) {
            repairs = 1;
            let retry = self.sandbox.execute(&fixed, ts);
            if retry.is_ok() {
                query = fixed;
                outcome = retry;
            }
        }

        let cost_cents = self.model.pricing().cost_cents(usage);
        self.usage_total.add(usage);
        match outcome {
            Ok(o) => SystemAnswer {
                query: o.canonical_query,
                numeric_answer: o.value.as_scalar_like(),
                values: o.value.numeric_values(),
                error: None,
                repairs,
                degraded: false,
                usage,
                cost_cents,
            },
            Err(e) => SystemAnswer {
                query,
                numeric_answer: None,
                values: Vec::new(),
                error: Some(e.to_string()),
                repairs,
                degraded: false,
                usage,
                cost_cents,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_llm::{ModelProfile, SimulatedModel};
    use dio_tsdb::{Labels, Sample};

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for (name, rate) in [
            ("amfcc_n1_initial_registration_attempt", 100.0),
            ("amfcc_n1_initial_registration_success", 90.0),
        ] {
            let l = Labels::from_pairs([("__name__", name), ("instance", "amf-0")]);
            for k in 0..=10i64 {
                st.append(l.clone(), Sample::new(k * 60_000, k as f64 * rate))
                    .unwrap();
            }
        }
        st
    }

    fn exemplars() -> Vec<FewShotExample> {
        vec![
            FewShotExample {
                question: "What is the paging success rate?".into(),
                metrics: vec!["amfcc_n2_paging_success".into(), "amfcc_n2_paging_attempt".into()],
                promql: "100 * sum(amfcc_n2_paging_success) / sum(amfcc_n2_paging_attempt)".into(),
            },
            FewShotExample {
                question: "How many service requests were handled?".into(),
                metrics: vec!["amfcc_n1_service_request_attempt".into()],
                promql: "sum(amfcc_n1_service_request_attempt)".into(),
            },
        ]
    }

    fn baseline(schema: Vec<String>) -> DinSqlBaseline {
        DinSqlBaseline::new(
            schema,
            exemplars(),
            Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())),
            store(),
        )
    }

    #[test]
    fn succeeds_when_names_are_in_schema() {
        let mut b = baseline(vec![
            "amfcc_n1_initial_registration_attempt".into(),
            "amfcc_n1_initial_registration_success".into(),
            "upfup_n3_ul_bytes".into(),
        ]);
        let a = b.answer(
            "What is the initial registration success rate at the AMF?",
            600_000,
        );
        assert!(a.error.is_none(), "{:?}", a.error);
        let v = a.numeric_answer.expect("numeric");
        assert!((v - 90.0).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn fabricates_and_fails_when_schema_misses_the_metric() {
        // Schema contains unrelated names only: linking fails, the
        // model fabricates from question words, execution finds no data.
        let mut b = baseline(vec![
            "upfup_n3_ul_bytes".into(),
            "nrfnfm_nf_heartbeat_attempt".into(),
        ]);
        let a = b.answer(
            "What is the LCS NI-LR procedure success rate at the AMF?",
            600_000,
        );
        assert!(a.numeric_answer.is_none(), "got {:?}", a.numeric_answer);
    }

    #[test]
    fn self_correction_wraps_bare_selector() {
        let b = baseline(vec![]);
        assert_eq!(
            b.self_correct("some_metric", true),
            Some("sum(some_metric)".into())
        );
        assert_eq!(b.self_correct("sum(some_metric)", true), None);
        assert_eq!(b.self_correct("some_metric", false), None);
        assert_eq!(
            b.self_correct("rate(m[5m])", true),
            Some("sum(rate(m[5m]))".into())
        );
    }

    #[test]
    fn usage_accumulates() {
        let mut b = baseline(vec!["amfcc_n1_initial_registration_attempt".into()]);
        b.answer("How many initial registration attempts?", 600_000);
        assert!(b.usage().prompt_tokens > 0);
    }

    #[test]
    fn name_reports_model() {
        let b = baseline(vec![]);
        assert!(b.system_name().contains("DIN-SQL"));
        assert!(b.system_name().contains("gpt-4-sim"));
    }
}

//! Uniform-random schema sampling (paper §4.2.1: "approximately 600 of
//! the metric names, that are selected in a uniformly random manner
//! among all the metrics, are provided in the prompt").

use dio_catalog::DomainDb;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sample `n` metric names uniformly without replacement (all names
/// when the catalog is smaller), sorted for prompt determinism.
pub fn sample_schema(db: &DomainDb, n: usize, seed: u64) -> Vec<String> {
    let mut names: Vec<String> = db.metric_names().into_iter().map(String::from).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    names.shuffle(&mut rng);
    names.truncate(n);
    names.sort_unstable();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_catalog::generator::{generate_catalog, CatalogConfig};

    fn db() -> DomainDb {
        DomainDb::from_catalog(generate_catalog(&CatalogConfig::default()))
    }

    #[test]
    fn samples_requested_count_without_duplicates() {
        let d = db();
        let s = sample_schema(&d, 600, 7);
        assert_eq!(s.len(), 600);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 600);
    }

    #[test]
    fn sampling_is_seeded() {
        let d = db();
        assert_eq!(sample_schema(&d, 100, 1), sample_schema(&d, 100, 1));
        assert_ne!(sample_schema(&d, 100, 1), sample_schema(&d, 100, 2));
    }

    #[test]
    fn oversampling_returns_everything() {
        let d = db();
        let all = sample_schema(&d, usize::MAX, 1);
        assert_eq!(all.len(), d.metric_count());
    }
}

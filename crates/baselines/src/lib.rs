//! # dio-baselines
//!
//! The comparison systems from the paper's §4.2.1, adapted to operator
//! data exactly as described there:
//!
//! * [`DinSqlBaseline`] — the DIN-SQL decomposed-prompting approach:
//!   the same few-shot exemplars as DIO copilot, but (because the full
//!   schema does not fit the context window) only "approximately 600 of
//!   the metric names, selected in a uniformly random manner", with no
//!   descriptions. Stages: schema linking → few-shot generation →
//!   self-correction.
//! * [`DirectModelBaseline`] — the bare foundation model: the same 600
//!   metric names, **no** few-shot examples.
//!
//! Both run their generated queries through the same sandbox and store
//! as DIO copilot, so execution accuracy is measured identically.
//!
//! The [`NlQuerySystem`] trait is the common surface the benchmark
//! harness evaluates; it is implemented by both baselines and by
//! [`dio_copilot::DioCopilot`].

pub mod dinsql;
pub mod direct;
pub mod interface;
pub mod schema;

pub use dinsql::DinSqlBaseline;
pub use direct::DirectModelBaseline;
pub use interface::{NlQuerySystem, SystemAnswer};
pub use schema::sample_schema;

//! A single time series: labels plus time-ordered samples.

use crate::labels::Labels;
use crate::sample::Sample;
use serde::{Deserialize, Serialize};

/// A labelled series with samples kept sorted by timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    labels: Labels,
    samples: Vec<Sample>,
}

impl Series {
    /// An empty series with the given identity.
    pub fn new(labels: Labels) -> Self {
        Series {
            labels,
            samples: Vec::new(),
        }
    }

    /// The series identity.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append a sample. Out-of-order appends (timestamp not strictly
    /// greater than the last) are rejected, mirroring Prometheus TSDB
    /// head-append rules.
    pub fn append(&mut self, sample: Sample) -> Result<(), AppendError> {
        if let Some(last) = self.samples.last() {
            if sample.timestamp_ms <= last.timestamp_ms {
                return Err(AppendError::OutOfOrder {
                    last: last.timestamp_ms,
                    attempted: sample.timestamp_ms,
                });
            }
        }
        self.samples.push(sample);
        Ok(())
    }

    /// The most recent sample at or before `ts` and within `lookback_ms`
    /// of it — Prometheus instant-vector selection.
    pub fn sample_at(&self, ts: i64, lookback_ms: i64) -> Option<Sample> {
        let idx = self.samples.partition_point(|s| s.timestamp_ms <= ts);
        if idx == 0 {
            return None;
        }
        let s = self.samples[idx - 1];
        if ts - s.timestamp_ms > lookback_ms {
            None
        } else {
            Some(s)
        }
    }

    /// Samples with timestamps in `(ts - range_ms, ts]` — Prometheus
    /// range-vector selection.
    pub fn window(&self, ts: i64, range_ms: i64) -> &[Sample] {
        let lo = self
            .samples
            .partition_point(|s| s.timestamp_ms <= ts - range_ms);
        let hi = self.samples.partition_point(|s| s.timestamp_ms <= ts);
        &self.samples[lo..hi]
    }

    /// Drop samples older than `min_ts` (retention enforcement).
    /// Returns how many samples were removed.
    pub fn drop_samples_before(&mut self, min_ts: i64) -> usize {
        let cut = self.samples.partition_point(|s| s.timestamp_ms < min_ts);
        self.samples.drain(..cut);
        cut
    }

    /// Timestamp of the first sample.
    pub fn first_timestamp(&self) -> Option<i64> {
        self.samples.first().map(|s| s.timestamp_ms)
    }

    /// Timestamp of the last sample.
    pub fn last_timestamp(&self) -> Option<i64> {
        self.samples.last().map(|s| s.timestamp_ms)
    }
}

/// Error from [`Series::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// The appended timestamp is not after the newest stored sample.
    OutOfOrder {
        /// Newest stored timestamp.
        last: i64,
        /// Rejected timestamp.
        attempted: i64,
    },
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::OutOfOrder { last, attempted } => write!(
                f,
                "out-of-order append: attempted ts {attempted} <= newest ts {last}"
            ),
        }
    }
}

impl std::error::Error for AppendError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(samples: &[(i64, f64)]) -> Series {
        let mut s = Series::new(Labels::name_only("m"));
        for &(t, v) in samples {
            s.append(Sample::new(t, v)).unwrap();
        }
        s
    }

    #[test]
    fn append_keeps_order() {
        let s = series_with(&[(1000, 1.0), (2000, 2.0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first_timestamp(), Some(1000));
        assert_eq!(s.last_timestamp(), Some(2000));
    }

    #[test]
    fn out_of_order_append_rejected() {
        let mut s = series_with(&[(2000, 1.0)]);
        let err = s.append(Sample::new(2000, 2.0)).unwrap_err();
        assert!(matches!(err, AppendError::OutOfOrder { .. }));
        assert!(s.append(Sample::new(1000, 2.0)).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sample_at_picks_latest_within_lookback() {
        let s = series_with(&[(1000, 1.0), (2000, 2.0), (3000, 3.0)]);
        assert_eq!(s.sample_at(2500, 5000), Some(Sample::new(2000, 2.0)));
        assert_eq!(s.sample_at(3000, 5000), Some(Sample::new(3000, 3.0)));
        // Exactly at the sample: included.
        assert_eq!(s.sample_at(1000, 5000), Some(Sample::new(1000, 1.0)));
    }

    #[test]
    fn sample_at_respects_lookback() {
        let s = series_with(&[(1000, 1.0)]);
        assert_eq!(s.sample_at(5000, 3000), None);
        assert_eq!(s.sample_at(4000, 3000), Some(Sample::new(1000, 1.0)));
    }

    #[test]
    fn sample_at_before_first_is_none() {
        let s = series_with(&[(1000, 1.0)]);
        assert_eq!(s.sample_at(999, 5000), None);
    }

    #[test]
    fn window_is_half_open() {
        let s = series_with(&[(1000, 1.0), (2000, 2.0), (3000, 3.0), (4000, 4.0)]);
        // (1000, 3000]
        let w = s.window(3000, 2000);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].timestamp_ms, 2000);
        assert_eq!(w[1].timestamp_ms, 3000);
    }

    #[test]
    fn window_empty_when_no_overlap() {
        let s = series_with(&[(1000, 1.0)]);
        assert!(s.window(5000, 1000).is_empty());
        assert!(s.window(500, 400).is_empty());
    }

    #[test]
    fn empty_series_behaviour() {
        let s = Series::new(Labels::name_only("m"));
        assert!(s.is_empty());
        assert_eq!(s.sample_at(1000, 1000), None);
        assert!(s.window(1000, 1000).is_empty());
        assert_eq!(s.first_timestamp(), None);
    }
}

//! A single time series: labels, sealed compressed chunks, and a
//! mutable append-only head.
//!
//! Samples live in two tiers. Appends go to a small in-order `head`
//! vector; every [`CHUNK_SIZE`](crate::chunk::CHUNK_SIZE) samples the
//! head is sealed into an immutable compressed [`Chunk`] (delta-of-
//! delta timestamps, XOR floats). Reads decode only the chunks that
//! overlap the requested time range — optionally through the shared
//! [`PageCache`] so repeated queries touch each chunk's codec once.

use crate::chunk::{Chunk, DecodedChunk, CHUNK_SIZE};
use crate::labels::Labels;
use crate::page_cache::PageCache;
use crate::sample::Sample;
use std::sync::Arc;

/// A labelled series: sealed chunks (time-ordered, non-overlapping)
/// followed by the mutable head.
#[derive(Debug, Clone)]
pub struct Series {
    labels: Labels,
    chunks: Vec<Chunk>,
    head: Vec<Sample>,
}

/// A series' full sample set decoded into columns, for the vectorized
/// executor. Timestamps are strictly increasing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesCols {
    /// Timestamp column (ms).
    pub ts: Vec<i64>,
    /// Value column.
    pub vals: Vec<f64>,
}

impl Series {
    /// An empty series with the given identity.
    pub fn new(labels: Labels) -> Self {
        Series {
            labels,
            chunks: Vec::new(),
            head: Vec::new(),
        }
    }

    /// Rebuild a series from recovered parts. Validates that chunks
    /// are in time order, non-overlapping, and strictly before every
    /// head sample; returns `None` when the parts do not line up (the
    /// caller quarantines).
    pub fn from_parts(labels: Labels, chunks: Vec<Chunk>, head: Vec<Sample>) -> Option<Series> {
        let mut last: Option<i64> = None;
        for c in &chunks {
            if last.is_some_and(|l| c.min_ts() <= l) {
                return None;
            }
            last = Some(c.max_ts());
        }
        for s in &head {
            if last.is_some_and(|l| s.timestamp_ms <= l) {
                return None;
            }
            last = Some(s.timestamp_ms);
        }
        Some(Series {
            labels,
            chunks,
            head,
        })
    }

    /// The series identity.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// Sealed chunks, oldest first.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Unsealed head samples (newer than every chunk).
    pub fn head(&self) -> &[Sample] {
        &self.head
    }

    /// All samples in time order, decoded. A materialising copy — the
    /// query engines use range-bounded reads instead; this is for
    /// snapshots, shard hand-off, and tests.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.len());
        for chunk in &self.chunks {
            let d = decode_infallible(chunk);
            out.extend(d.ts.iter().zip(&d.vals).map(|(&t, &v)| Sample::new(t, v)));
        }
        out.extend_from_slice(&self.head);
        out
    }

    /// All samples as columns, decoding sealed chunks through `cache`.
    pub fn cols(&self, cache: &PageCache) -> SeriesCols {
        let n = self.len();
        let mut cols = SeriesCols {
            ts: Vec::with_capacity(n),
            vals: Vec::with_capacity(n),
        };
        for chunk in &self.chunks {
            let d = cache.get(chunk).expect("sealed chunk decodes");
            cols.ts.extend_from_slice(&d.ts);
            cols.vals.extend_from_slice(&d.vals);
        }
        for s in &self.head {
            cols.ts.push(s.timestamp_ms);
            cols.vals.push(s.value);
        }
        cols
    }

    /// Samples at or after `min_ts` as columns, decoding only the
    /// sealed chunks that can reach that bound (chunk min/max metadata
    /// needs no decode). Left-partial chunks are included whole — the
    /// caller's binary searches tolerate extra early samples.
    pub fn cols_from(&self, min_ts: i64, cache: &PageCache) -> SeriesCols {
        let kept: usize = self
            .chunks
            .iter()
            .filter(|c| c.max_ts() >= min_ts)
            .map(|c| c.len())
            .sum::<usize>()
            + self.head.len();
        let mut cols = SeriesCols {
            ts: Vec::with_capacity(kept),
            vals: Vec::with_capacity(kept),
        };
        for chunk in &self.chunks {
            if chunk.max_ts() < min_ts {
                continue;
            }
            let d = cache.get(chunk).expect("sealed chunk decodes");
            cols.ts.extend_from_slice(&d.ts);
            cols.vals.extend_from_slice(&d.vals);
        }
        cols.ts.extend(self.head.iter().map(|s| s.timestamp_ms));
        cols.vals.extend(self.head.iter().map(|s| s.value));
        cols
    }

    /// Number of samples (no decode).
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum::<usize>() + self.head.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.chunks.is_empty()
    }

    /// Compressed bytes across sealed chunks (bench accounting).
    pub fn compressed_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.compressed_bytes()).sum()
    }

    /// Append a sample. Out-of-order appends (timestamp not strictly
    /// greater than the last) are rejected, mirroring Prometheus TSDB
    /// head-append rules. Every `CHUNK_SIZE` samples the head seals
    /// into a compressed chunk.
    pub fn append(&mut self, sample: Sample) -> Result<(), AppendError> {
        if let Some(last) = self.last_timestamp() {
            if sample.timestamp_ms <= last {
                return Err(AppendError::OutOfOrder {
                    last,
                    attempted: sample.timestamp_ms,
                });
            }
        }
        self.head.push(sample);
        if self.head.len() >= CHUNK_SIZE {
            self.chunks.push(Chunk::seal(&self.head));
            self.head.clear();
        }
        Ok(())
    }

    /// The most recent sample at or before `ts` and within `lookback_ms`
    /// of it — Prometheus instant-vector selection.
    pub fn sample_at(&self, ts: i64, lookback_ms: i64) -> Option<Sample> {
        self.sample_at_with(ts, lookback_ms, None)
    }

    /// [`Series::sample_at`] decoding through the page cache.
    pub fn sample_at_cached(&self, ts: i64, lookback_ms: i64, cache: &PageCache) -> Option<Sample> {
        self.sample_at_with(ts, lookback_ms, Some(cache))
    }

    fn sample_at_with(&self, ts: i64, lookback_ms: i64, cache: Option<&PageCache>) -> Option<Sample> {
        // Head first: it is the newest tier.
        let idx = self.head.partition_point(|s| s.timestamp_ms <= ts);
        let s = if idx > 0 {
            self.head[idx - 1]
        } else {
            // Newest chunk whose first timestamp is <= ts.
            let ci = self.chunks.partition_point(|c| c.min_ts() <= ts);
            if ci == 0 {
                return None;
            }
            let d = self.decode_at(ci - 1, cache);
            let i = d.ts.partition_point(|&t| t <= ts);
            debug_assert!(i > 0, "chunk min_ts <= ts implies a hit");
            Sample::new(d.ts[i - 1], d.vals[i - 1])
        };
        if ts - s.timestamp_ms > lookback_ms {
            None
        } else {
            Some(s)
        }
    }

    /// Samples with timestamps in `(ts - range_ms, ts]` — Prometheus
    /// range-vector selection. Decodes only overlapping chunks.
    pub fn window(&self, ts: i64, range_ms: i64) -> Vec<Sample> {
        self.window_with(ts, range_ms, None)
    }

    /// [`Series::window`] decoding through the page cache.
    pub fn window_cached(&self, ts: i64, range_ms: i64, cache: &PageCache) -> Vec<Sample> {
        self.window_with(ts, range_ms, Some(cache))
    }

    fn window_with(&self, ts: i64, range_ms: i64, cache: Option<&PageCache>) -> Vec<Sample> {
        let start = ts - range_ms; // exclusive
        let mut out = Vec::new();
        let first = self.chunks.partition_point(|c| c.max_ts() <= start);
        for ci in first..self.chunks.len() {
            if self.chunks[ci].min_ts() > ts {
                break;
            }
            let d = self.decode_at(ci, cache);
            let lo = d.ts.partition_point(|&t| t <= start);
            let hi = d.ts.partition_point(|&t| t <= ts);
            out.extend(
                d.ts[lo..hi]
                    .iter()
                    .zip(&d.vals[lo..hi])
                    .map(|(&t, &v)| Sample::new(t, v)),
            );
        }
        let lo = self.head.partition_point(|s| s.timestamp_ms <= start);
        let hi = self.head.partition_point(|s| s.timestamp_ms <= ts);
        out.extend_from_slice(&self.head[lo..hi]);
        out
    }

    fn decode_at(&self, idx: usize, cache: Option<&PageCache>) -> Arc<DecodedChunk> {
        let chunk = &self.chunks[idx];
        match cache {
            Some(c) => c.get(chunk).expect("sealed chunk decodes"),
            None => Arc::new(decode_infallible(chunk)),
        }
    }

    /// Drop samples older than `min_ts` (retention enforcement).
    /// Returns how many samples were removed. A partially covered
    /// chunk is decoded and its surviving tail resealed.
    pub fn drop_samples_before(&mut self, min_ts: i64) -> usize {
        let mut removed = 0;
        let dead = self.chunks.partition_point(|c| c.max_ts() < min_ts);
        for chunk in self.chunks.drain(..dead) {
            removed += chunk.len();
        }
        if let Some(first) = self.chunks.first() {
            if first.min_ts() < min_ts {
                let d = decode_infallible(first);
                let cut = d.ts.partition_point(|&t| t < min_ts);
                removed += cut;
                let rest: Vec<Sample> = d.ts[cut..]
                    .iter()
                    .zip(&d.vals[cut..])
                    .map(|(&t, &v)| Sample::new(t, v))
                    .collect();
                // max_ts >= min_ts, so at least one sample survives.
                self.chunks[0] = Chunk::seal(&rest);
            }
        }
        let cut = self.head.partition_point(|s| s.timestamp_ms < min_ts);
        self.head.drain(..cut);
        removed + cut
    }

    /// Timestamp of the first sample.
    pub fn first_timestamp(&self) -> Option<i64> {
        self.chunks
            .first()
            .map(|c| c.min_ts())
            .or_else(|| self.head.first().map(|s| s.timestamp_ms))
    }

    /// Timestamp of the last sample.
    pub fn last_timestamp(&self) -> Option<i64> {
        self.head
            .last()
            .map(|s| s.timestamp_ms)
            .or_else(|| self.chunks.last().map(|c| c.max_ts()))
    }
}

/// Chunks sealed in-process (or validated on ingest) always decode;
/// damage is caught earlier by CRC framing.
fn decode_infallible(chunk: &Chunk) -> DecodedChunk {
    chunk.decode().expect("sealed chunk decodes")
}

/// Error from [`Series::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// The appended timestamp is not after the newest stored sample.
    OutOfOrder {
        /// Newest stored timestamp.
        last: i64,
        /// Rejected timestamp.
        attempted: i64,
    },
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::OutOfOrder { last, attempted } => write!(
                f,
                "out-of-order append: attempted ts {attempted} <= newest ts {last}"
            ),
        }
    }
}

impl std::error::Error for AppendError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(samples: &[(i64, f64)]) -> Series {
        let mut s = Series::new(Labels::name_only("m"));
        for &(t, v) in samples {
            s.append(Sample::new(t, v)).unwrap();
        }
        s
    }

    #[test]
    fn append_keeps_order() {
        let s = series_with(&[(1000, 1.0), (2000, 2.0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first_timestamp(), Some(1000));
        assert_eq!(s.last_timestamp(), Some(2000));
    }

    #[test]
    fn out_of_order_append_rejected() {
        let mut s = series_with(&[(2000, 1.0)]);
        let err = s.append(Sample::new(2000, 2.0)).unwrap_err();
        assert!(matches!(err, AppendError::OutOfOrder { .. }));
        assert!(s.append(Sample::new(1000, 2.0)).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sample_at_picks_latest_within_lookback() {
        let s = series_with(&[(1000, 1.0), (2000, 2.0), (3000, 3.0)]);
        assert_eq!(s.sample_at(2500, 5000), Some(Sample::new(2000, 2.0)));
        assert_eq!(s.sample_at(3000, 5000), Some(Sample::new(3000, 3.0)));
        // Exactly at the sample: included.
        assert_eq!(s.sample_at(1000, 5000), Some(Sample::new(1000, 1.0)));
    }

    #[test]
    fn sample_at_respects_lookback() {
        let s = series_with(&[(1000, 1.0)]);
        assert_eq!(s.sample_at(5000, 3000), None);
        assert_eq!(s.sample_at(4000, 3000), Some(Sample::new(1000, 1.0)));
    }

    #[test]
    fn sample_at_before_first_is_none() {
        let s = series_with(&[(1000, 1.0)]);
        assert_eq!(s.sample_at(999, 5000), None);
    }

    #[test]
    fn window_is_half_open() {
        let s = series_with(&[(1000, 1.0), (2000, 2.0), (3000, 3.0), (4000, 4.0)]);
        // (1000, 3000]
        let w = s.window(3000, 2000);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].timestamp_ms, 2000);
        assert_eq!(w[1].timestamp_ms, 3000);
    }

    #[test]
    fn window_empty_when_no_overlap() {
        let s = series_with(&[(1000, 1.0)]);
        assert!(s.window(5000, 1000).is_empty());
        assert!(s.window(500, 400).is_empty());
    }

    #[test]
    fn empty_series_behaviour() {
        let s = Series::new(Labels::name_only("m"));
        assert!(s.is_empty());
        assert_eq!(s.sample_at(1000, 1000), None);
        assert!(s.window(1000, 1000).is_empty());
        assert_eq!(s.first_timestamp(), None);
    }

    // --- chunked-tier behaviour ---

    fn long_series(n: usize) -> (Series, Vec<Sample>) {
        let mut s = Series::new(Labels::name_only("m"));
        let mut all = Vec::with_capacity(n);
        for i in 0..n {
            let smp = Sample::new(1_000 + i as i64 * 500, (i as f64 * 0.1).cos());
            s.append(smp).unwrap();
            all.push(smp);
        }
        (s, all)
    }

    #[test]
    fn seals_at_chunk_size() {
        let (s, all) = long_series(CHUNK_SIZE * 3 + 17);
        assert_eq!(s.chunks().len(), 3);
        assert_eq!(s.head().len(), 17);
        assert_eq!(s.len(), all.len());
        assert_eq!(s.samples(), all);
        assert!(s.compressed_bytes() > 0);
        assert!(s.compressed_bytes() < CHUNK_SIZE * 3 * 16);
    }

    #[test]
    fn reads_cross_chunk_boundaries() {
        let (s, all) = long_series(CHUNK_SIZE * 2 + 10);
        // Window spanning the seam between chunk 0 and chunk 1.
        let seam_ts = all[CHUNK_SIZE + 5].timestamp_ms;
        let w = s.window(seam_ts, 10 * 500);
        assert_eq!(w.len(), 10);
        assert_eq!(w.last().unwrap().timestamp_ms, seam_ts);
        // Instant lookups inside sealed chunks.
        for probe in [0, CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE * 2 + 3] {
            assert_eq!(s.sample_at(all[probe].timestamp_ms, 1), Some(all[probe]));
        }
    }

    #[test]
    fn cached_reads_match_uncached() {
        let (s, all) = long_series(CHUNK_SIZE * 2 + 5);
        let cache = PageCache::new();
        let ts = all[CHUNK_SIZE + 2].timestamp_ms;
        assert_eq!(s.window_cached(ts, 4_000, &cache), s.window(ts, 4_000));
        assert_eq!(
            s.sample_at_cached(ts + 1, 5_000, &cache),
            s.sample_at(ts + 1, 5_000)
        );
        assert!(cache.stats().misses > 0);
        let cols = s.cols(&cache);
        assert_eq!(cols.ts.len(), all.len());
        assert_eq!(cols.vals[7], all[7].value);
    }

    #[test]
    fn retention_reseals_partial_chunks() {
        let (mut s, all) = long_series(CHUNK_SIZE * 2 + 8);
        // Cut into the middle of the first chunk.
        let cut_ts = all[100].timestamp_ms;
        let removed = s.drop_samples_before(cut_ts);
        assert_eq!(removed, 100);
        assert_eq!(s.len(), all.len() - 100);
        assert_eq!(s.first_timestamp(), Some(cut_ts));
        assert_eq!(s.samples(), all[100..]);
        // Appends still work after the reseal.
        let next = all.last().unwrap().timestamp_ms + 1;
        s.append(Sample::new(next, 9.0)).unwrap();
        assert_eq!(s.last_timestamp(), Some(next));
    }

    #[test]
    fn retention_drops_whole_series_content() {
        let (mut s, all) = long_series(CHUNK_SIZE + 4);
        let removed = s.drop_samples_before(all.last().unwrap().timestamp_ms + 1);
        assert_eq!(removed, all.len());
        assert!(s.is_empty());
        assert_eq!(s.first_timestamp(), None);
    }

    #[test]
    fn from_parts_validates_ordering() {
        let (s, _) = long_series(CHUNK_SIZE * 2 + 3);
        let rebuilt = Series::from_parts(
            s.labels().clone(),
            s.chunks().to_vec(),
            s.head().to_vec(),
        )
        .expect("valid parts");
        assert_eq!(rebuilt.samples(), s.samples());
        // Chunks out of order: rejected.
        let mut chunks = s.chunks().to_vec();
        chunks.swap(0, 1);
        assert!(Series::from_parts(s.labels().clone(), chunks, vec![]).is_none());
        // Head overlapping the chunks: rejected.
        assert!(Series::from_parts(
            s.labels().clone(),
            s.chunks().to_vec(),
            vec![Sample::new(s.chunks()[0].max_ts(), 1.0)],
        )
        .is_none());
    }
}

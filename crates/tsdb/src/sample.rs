//! A single timestamped measurement.

use serde::{Deserialize, Serialize};

/// One `(timestamp, value)` point. Timestamps are milliseconds since
/// the Unix epoch, values are `f64` as in Prometheus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Milliseconds since the Unix epoch.
    pub timestamp_ms: i64,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Construct a sample.
    pub fn new(timestamp_ms: i64, value: f64) -> Self {
        Sample {
            timestamp_ms,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_compare() {
        let s = Sample::new(1000, 2.5);
        assert_eq!(s.timestamp_ms, 1000);
        assert_eq!(s.value, 2.5);
        assert_eq!(s, Sample::new(1000, 2.5));
        assert_ne!(s, Sample::new(1001, 2.5));
    }
}

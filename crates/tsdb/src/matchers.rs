//! Label matchers for series selection (`{nf="amf", proc=~"auth.*"}`).
//!
//! Regex matchers implement the anchored subset PromQL queries in this
//! system actually use: literals, the `.*`/`.+` wildcards, character
//! alternation via `|` at the top level, and `.` as any-char. This is a
//! deliberate substitution for a full regex engine (see DESIGN.md):
//! generated and reference queries only ever use these forms.

use crate::labels::Labels;
use serde::{Deserialize, Serialize};

/// Matcher operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchOp {
    /// `=` exact equality.
    Eq,
    /// `!=` inequality.
    Ne,
    /// `=~` anchored pattern match.
    Re,
    /// `!~` negated anchored pattern match.
    Nre,
}

impl MatchOp {
    /// PromQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            MatchOp::Eq => "=",
            MatchOp::Ne => "!=",
            MatchOp::Re => "=~",
            MatchOp::Nre => "!~",
        }
    }
}

/// A single label matcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matcher {
    /// Label name to test.
    pub name: String,
    /// Operator.
    pub op: MatchOp,
    /// Literal value or pattern.
    pub value: String,
}

impl Matcher {
    /// Equality matcher.
    pub fn eq(name: impl Into<String>, value: impl Into<String>) -> Self {
        Matcher {
            name: name.into(),
            op: MatchOp::Eq,
            value: value.into(),
        }
    }

    /// Inequality matcher.
    pub fn ne(name: impl Into<String>, value: impl Into<String>) -> Self {
        Matcher {
            name: name.into(),
            op: MatchOp::Ne,
            value: value.into(),
        }
    }

    /// Pattern matcher (`=~`).
    pub fn re(name: impl Into<String>, value: impl Into<String>) -> Self {
        Matcher {
            name: name.into(),
            op: MatchOp::Re,
            value: value.into(),
        }
    }

    /// Negated pattern matcher (`!~`).
    pub fn nre(name: impl Into<String>, value: impl Into<String>) -> Self {
        Matcher {
            name: name.into(),
            op: MatchOp::Nre,
            value: value.into(),
        }
    }

    /// Does this matcher accept the given label value? Missing labels are
    /// treated as the empty string, as in Prometheus.
    pub fn matches_value(&self, value: &str) -> bool {
        match self.op {
            MatchOp::Eq => self.value == value,
            MatchOp::Ne => self.value != value,
            MatchOp::Re => pattern_match(&self.value, value),
            MatchOp::Nre => !pattern_match(&self.value, value),
        }
    }

    /// Does this matcher accept the given label set?
    pub fn matches(&self, labels: &Labels) -> bool {
        self.matches_value(labels.get(&self.name).unwrap_or(""))
    }
}

impl std::fmt::Display for Matcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}\"{}\"", self.name, self.op.as_str(), self.value)
    }
}

/// Anchored match of `text` against the supported pattern subset:
/// top-level `|` alternation of branches, where each branch is a
/// sequence of literal chars, `.` (any one char), `.*` (any run), and
/// `.+` (non-empty run).
pub fn pattern_match(pattern: &str, text: &str) -> bool {
    pattern
        .split('|')
        .any(|branch| branch_match(&branch.chars().collect::<Vec<_>>(), &text.chars().collect::<Vec<_>>()))
}

fn branch_match(pat: &[char], text: &[char]) -> bool {
    if pat.is_empty() {
        return text.is_empty();
    }
    // Handle `.*` / `.+` lookahead.
    if pat[0] == '.' && pat.len() >= 2 && (pat[1] == '*' || pat[1] == '+') {
        let rest = &pat[2..];
        let min = if pat[1] == '+' { 1 } else { 0 };
        for skip in min..=text.len() {
            if branch_match(rest, &text[skip..]) {
                return true;
            }
        }
        return false;
    }
    if text.is_empty() {
        return false;
    }
    if pat[0] == '.' || pat[0] == text[0] {
        return branch_match(&pat[1..], &text[1..]);
    }
    false
}

/// All matchers must accept the label set.
pub fn all_match(matchers: &[Matcher], labels: &Labels) -> bool {
    matchers.iter().all(|m| m.matches(labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_and_ne() {
        let l = Labels::from_pairs([("nf", "amf")]);
        assert!(Matcher::eq("nf", "amf").matches(&l));
        assert!(!Matcher::eq("nf", "smf").matches(&l));
        assert!(Matcher::ne("nf", "smf").matches(&l));
        assert!(!Matcher::ne("nf", "amf").matches(&l));
    }

    #[test]
    fn missing_label_is_empty_string() {
        let l = Labels::empty();
        assert!(Matcher::eq("nf", "").matches(&l));
        assert!(Matcher::ne("nf", "amf").matches(&l));
        assert!(Matcher::re("nf", ".*").matches(&l));
        assert!(!Matcher::re("nf", ".+").matches(&l));
    }

    #[test]
    fn literal_pattern_is_anchored() {
        assert!(pattern_match("amf", "amf"));
        assert!(!pattern_match("amf", "amf-0"));
        assert!(!pattern_match("amf", "xamf"));
    }

    #[test]
    fn star_wildcard() {
        assert!(pattern_match("amf.*", "amf"));
        assert!(pattern_match("amf.*", "amf-0"));
        assert!(pattern_match(".*auth.*", "n1_auth_request"));
        assert!(!pattern_match("amf.*", "smf-0"));
    }

    #[test]
    fn plus_wildcard_requires_one() {
        assert!(pattern_match("amf-.+", "amf-0"));
        assert!(!pattern_match("amf-.+", "amf-"));
    }

    #[test]
    fn dot_matches_single_char() {
        assert!(pattern_match("amf-.", "amf-0"));
        assert!(!pattern_match("amf-.", "amf-10"));
    }

    #[test]
    fn alternation() {
        assert!(pattern_match("amf|smf", "smf"));
        assert!(pattern_match("amf|smf", "amf"));
        assert!(!pattern_match("amf|smf", "upf"));
        assert!(pattern_match("amf-.*|smf-.*", "smf-2"));
    }

    #[test]
    fn nre_negates() {
        let l = Labels::from_pairs([("instance", "amf-1")]);
        assert!(!Matcher::nre("instance", "amf-.*").matches(&l));
        assert!(Matcher::nre("instance", "smf-.*").matches(&l));
    }

    #[test]
    fn all_match_requires_every_matcher() {
        let l = Labels::from_pairs([("nf", "amf"), ("instance", "amf-0")]);
        let ms = vec![Matcher::eq("nf", "amf"), Matcher::re("instance", "amf-.")];
        assert!(all_match(&ms, &l));
        let ms2 = vec![Matcher::eq("nf", "amf"), Matcher::eq("instance", "amf-9")];
        assert!(!all_match(&ms2, &l));
    }

    #[test]
    fn display_round_trip_spelling() {
        assert_eq!(Matcher::re("nf", "a.*").to_string(), "nf=~\"a.*\"");
        assert_eq!(Matcher::eq("nf", "amf").to_string(), "nf=\"amf\"");
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        assert!(pattern_match("", ""));
        assert!(!pattern_match("", "x"));
    }
}

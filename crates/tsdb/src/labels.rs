//! Label sets identifying time series.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The reserved label carrying the metric name, as in Prometheus.
pub const NAME_LABEL: &str = "__name__";

/// An immutable, sorted set of `name=value` label pairs.
///
/// Invariants: names are unique and pairs are kept sorted by name, so
/// equality, hashing, and display are canonical. The pairs live behind
/// an [`Arc`], so cloning — which query engines do once per series per
/// evaluation step — is a reference-count bump, not a deep copy of
/// every string. Comparison, hashing, and serde all see through the
/// pointer to the content.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Labels(Arc<Vec<(String, String)>>);

impl Serialize for Labels {
    fn to_value(&self) -> serde::Value {
        self.0.as_slice().to_value()
    }
}

impl<'de> Deserialize<'de> for Labels {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = <Vec<(String, String)> as Deserialize>::from_value(value)?;
        Ok(Labels(Arc::new(pairs)))
    }
}

impl Labels {
    /// Empty label set.
    pub fn empty() -> Self {
        Labels(Arc::new(Vec::new()))
    }

    /// Build from pairs; later duplicates overwrite earlier ones.
    pub fn from_pairs<I, S1, S2>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: Into<String>,
        S2: Into<String>,
    {
        let mut labels = Labels::empty();
        for (k, v) in pairs {
            labels = labels.with(k.into(), v.into());
        }
        labels
    }

    /// A label set containing only the metric name.
    pub fn name_only(name: &str) -> Self {
        Labels(Arc::new(vec![(NAME_LABEL.to_string(), name.to_string())]))
    }

    /// Return a copy with `name=value` set (replacing any existing value).
    pub fn with(&self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let (name, value) = (name.into(), value.into());
        let mut pairs = (*self.0).clone();
        match pairs.binary_search_by(|(n, _)| n.as_str().cmp(name.as_str())) {
            Ok(i) => pairs[i].1 = value,
            Err(i) => pairs.insert(i, (name, value)),
        }
        Labels(Arc::new(pairs))
    }

    /// Return a copy with `name` removed (no-op when absent).
    pub fn without(&self, name: &str) -> Self {
        Labels(Arc::new(
            self.0
                .iter()
                .filter(|(n, _)| n != name)
                .cloned()
                .collect(),
        ))
    }

    /// Value of a label, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.0[i].1.as_str())
    }

    /// The metric name (`__name__`), if present.
    pub fn name(&self) -> Option<&str> {
        self.get(NAME_LABEL)
    }

    /// Copy without the metric name — the identity used for vector
    /// matching in PromQL binary operations.
    pub fn drop_name(&self) -> Self {
        self.without(NAME_LABEL)
    }

    /// Keep only the listed label names (always drops `__name__` unless
    /// listed) — PromQL `by (…)` semantics.
    pub fn keep_only(&self, names: &[&str]) -> Self {
        Labels(Arc::new(
            self.0
                .iter()
                .filter(|(n, _)| names.contains(&n.as_str()))
                .cloned()
                .collect(),
        ))
    }

    /// Drop the listed label names and `__name__` — PromQL
    /// `without (…)` semantics.
    pub fn drop_listed_and_name(&self, names: &[&str]) -> Self {
        Labels(Arc::new(
            self.0
                .iter()
                .filter(|(n, _)| n != NAME_LABEL && !names.contains(&n.as_str()))
                .cloned()
                .collect(),
        ))
    }

    /// Iterate `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no labels.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Address of the shared pair list — equal pointers imply equal
    /// content (the converse is false). Lets hot accumulation paths
    /// skip content hashing when the same `Labels` clone flows through
    /// every evaluation step.
    pub fn ptr_id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// A stable 64-bit signature of the full label set.
    pub fn signature(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.0.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for Labels {
    /// Prometheus exposition style: `name{l1="v1",l2="v2"}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = self.name() {
            write!(f, "{name}")?;
        }
        let rest: Vec<String> = self
            .iter()
            .filter(|(n, _)| *n != NAME_LABEL)
            .map(|(n, v)| format!("{n}=\"{v}\""))
            .collect();
        if !rest.is_empty() || self.name().is_none() {
            write!(f, "{{{}}}", rest.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Labels {
        Labels::from_pairs([
            (NAME_LABEL, "amfcc_n1_auth_request"),
            ("instance", "amf-0"),
            ("nf", "amf"),
        ])
    }

    #[test]
    fn pairs_are_sorted_and_unique() {
        let l = Labels::from_pairs([("z", "1"), ("a", "2"), ("z", "3")]);
        let pairs: Vec<(&str, &str)> = l.iter().collect();
        assert_eq!(pairs, vec![("a", "2"), ("z", "3")]);
    }

    #[test]
    fn get_and_name() {
        let l = sample();
        assert_eq!(l.get("instance"), Some("amf-0"));
        assert_eq!(l.get("missing"), None);
        assert_eq!(l.name(), Some("amfcc_n1_auth_request"));
    }

    #[test]
    fn with_replaces_existing() {
        let l = sample().with("instance", "amf-1");
        assert_eq!(l.get("instance"), Some("amf-1"));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn without_removes() {
        let l = sample().without("nf");
        assert_eq!(l.get("nf"), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn drop_name_removes_metric_name_only() {
        let l = sample().drop_name();
        assert_eq!(l.name(), None);
        assert_eq!(l.get("instance"), Some("amf-0"));
    }

    #[test]
    fn keep_only_selects_subset() {
        let l = sample().keep_only(&["nf"]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.get("nf"), Some("amf"));
    }

    #[test]
    fn drop_listed_and_name_is_without_semantics() {
        let l = sample().drop_listed_and_name(&["instance"]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.get("nf"), Some("amf"));
    }

    #[test]
    fn display_is_exposition_format() {
        assert_eq!(
            sample().to_string(),
            "amfcc_n1_auth_request{instance=\"amf-0\",nf=\"amf\"}"
        );
        assert_eq!(Labels::name_only("up").to_string(), "up");
        assert_eq!(Labels::empty().to_string(), "{}");
    }

    #[test]
    fn signature_distinguishes_label_sets() {
        assert_ne!(
            sample().signature(),
            sample().with("instance", "amf-1").signature()
        );
        assert_eq!(sample().signature(), sample().signature());
    }

    #[test]
    fn equality_is_order_independent() {
        let a = Labels::from_pairs([("x", "1"), ("y", "2")]);
        let b = Labels::from_pairs([("y", "2"), ("x", "1")]);
        assert_eq!(a, b);
    }
}

//! Immutable sealed chunks: the unit of compression, caching, and
//! persistence.
//!
//! A [`Chunk`] holds a fixed-size run of one series' samples as two
//! independently compressed columns — delta-of-delta timestamps and
//! XOR floats (see [`crate::compress`]). Once sealed a chunk never
//! changes, which is what makes the decoded-chunk page cache sound:
//! every chunk carries a process-unique id assigned at seal (or
//! decode) time, and clones share the id because they share the bytes.
//!
//! On-the-wire layout of [`Chunk::to_bytes`] (inside a `dio-faults`
//! CRC frame, so bit flips and truncation are caught before the codecs
//! ever run):
//!
//! ```text
//! u32  sample count          (little endian)
//! u32  ts column byte length
//! u32  value column byte length
//! [ts column bytes] [value column bytes]
//! ```

use crate::compress::{float, int, BitReader, BitWriter, CodecError};
use crate::sample::Sample;
use dio_faults::{decode_all, encode_record};
use std::sync::atomic::{AtomicU64, Ordering};

/// Samples per sealed chunk. 256 keeps decode latency tiny while
/// amortising the codec headers; Prometheus TSDB seals at ~120.
pub const CHUNK_SIZE: usize = 256;

static NEXT_CHUNK_ID: AtomicU64 = AtomicU64::new(1);

fn next_chunk_id() -> u64 {
    NEXT_CHUNK_ID.fetch_add(1, Ordering::Relaxed)
}

/// Structured chunk decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// The CRC frame around the chunk was damaged or truncated.
    Frame {
        /// Corrupt (checksum-failed) frames seen.
        corrupt_frames: usize,
        /// The bytes ended mid-frame.
        truncated_tail: bool,
    },
    /// The frame was intact but did not hold exactly one record.
    BadFrameCount(usize),
    /// The chunk header was too short or internally inconsistent.
    BadHeader,
    /// A column failed to decode.
    Codec(CodecError),
    /// Timestamps decoded but were not strictly increasing.
    UnsortedTimestamps,
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Frame {
                corrupt_frames,
                truncated_tail,
            } => write!(
                f,
                "chunk frame damaged (corrupt={corrupt_frames}, truncated={truncated_tail})"
            ),
            ChunkError::BadFrameCount(n) => write!(f, "expected 1 chunk record, found {n}"),
            ChunkError::BadHeader => write!(f, "chunk header malformed"),
            ChunkError::Codec(e) => write!(f, "column decode failed: {e}"),
            ChunkError::UnsortedTimestamps => write!(f, "decoded timestamps not increasing"),
        }
    }
}

impl std::error::Error for ChunkError {}

impl From<CodecError> for ChunkError {
    fn from(e: CodecError) -> Self {
        ChunkError::Codec(e)
    }
}

/// A sealed, immutable, compressed run of samples.
#[derive(Debug, Clone)]
pub struct Chunk {
    id: u64,
    count: u32,
    min_ts: i64,
    max_ts: i64,
    ts_bytes: Vec<u8>,
    val_bytes: Vec<u8>,
}

/// A chunk decoded back into columns. Cached (behind `Arc`) by the
/// page cache; never mutated after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedChunk {
    /// Timestamp column, strictly increasing.
    pub ts: Vec<i64>,
    /// Value column, bit-exact with what was sealed.
    pub vals: Vec<f64>,
}

impl DecodedChunk {
    /// Approximate heap footprint, used for cache accounting.
    pub fn byte_size(&self) -> usize {
        self.ts.len() * 8 + self.vals.len() * 8
    }
}

impl Chunk {
    /// Seal a run of samples (strictly increasing timestamps) into a
    /// compressed chunk.
    ///
    /// # Panics
    /// On an empty run — callers seal only full or flushed non-empty
    /// heads.
    pub fn seal(samples: &[Sample]) -> Chunk {
        assert!(!samples.is_empty(), "cannot seal an empty chunk");
        let ts: Vec<i64> = samples.iter().map(|s| s.timestamp_ms).collect();
        let vals: Vec<f64> = samples.iter().map(|s| s.value).collect();
        let mut tw = BitWriter::new();
        int::encode_timestamps(&ts, &mut tw);
        let mut vw = BitWriter::new();
        float::encode_values(&vals, &mut vw);
        Chunk {
            id: next_chunk_id(),
            count: samples.len() as u32,
            min_ts: ts[0],
            max_ts: *ts.last().expect("non-empty"),
            ts_bytes: tw.into_bytes(),
            val_bytes: vw.into_bytes(),
        }
    }

    /// Process-unique id (page-cache key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of samples sealed in.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Sealed chunks are never empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest (first) timestamp.
    pub fn min_ts(&self) -> i64 {
        self.min_ts
    }

    /// Largest (last) timestamp.
    pub fn max_ts(&self) -> i64 {
        self.max_ts
    }

    /// Compressed payload size in bytes (both columns, no framing).
    pub fn compressed_bytes(&self) -> usize {
        self.ts_bytes.len() + self.val_bytes.len()
    }

    /// Decompress both columns. Errors instead of panicking on
    /// damaged bytes.
    pub fn decode(&self) -> Result<DecodedChunk, ChunkError> {
        let mut tr = BitReader::new(&self.ts_bytes);
        let ts = int::decode_timestamps(&mut tr, self.count as usize)?;
        if ts.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ChunkError::UnsortedTimestamps);
        }
        let mut vr = BitReader::new(&self.val_bytes);
        let vals = float::decode_values(&mut vr, self.count as usize)?;
        Ok(DecodedChunk { ts, vals })
    }

    /// The chunk serialized *without* framing — for embedding inside a
    /// larger CRC-protected record (snapshots, shard transfers).
    /// [`Chunk::from_payload`] inverts it.
    pub fn payload(&self) -> Vec<u8> {
        let mut payload =
            Vec::with_capacity(12 + self.ts_bytes.len() + self.val_bytes.len());
        payload.extend_from_slice(&self.count.to_le_bytes());
        payload.extend_from_slice(&(self.ts_bytes.len() as u32).to_le_bytes());
        payload.extend_from_slice(&(self.val_bytes.len() as u32).to_le_bytes());
        payload.extend_from_slice(&self.ts_bytes);
        payload.extend_from_slice(&self.val_bytes);
        payload
    }

    /// Serialize into a CRC-framed blob (see module docs for layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_record(&self.payload())
    }

    /// Parse a CRC-framed blob back into a chunk, validating the frame,
    /// the header, and both columns (a full decode) before accepting.
    /// The returned chunk keeps the *compressed* columns and gets a
    /// fresh cache id.
    pub fn from_bytes(bytes: &[u8]) -> Result<Chunk, ChunkError> {
        let scan = decode_all(bytes);
        if scan.corrupt_frames() > 0 || scan.truncated_tail {
            return Err(ChunkError::Frame {
                corrupt_frames: scan.corrupt_frames(),
                truncated_tail: scan.truncated_tail,
            });
        }
        if scan.records.len() != 1 {
            return Err(ChunkError::BadFrameCount(scan.records.len()));
        }
        Chunk::from_payload(&scan.records[0])
    }

    /// Parse an *unframed* chunk payload (the caller already stripped
    /// and verified the CRC frame, e.g. snapshot fsck).
    pub fn from_payload(payload: &[u8]) -> Result<Chunk, ChunkError> {
        if payload.len() < 12 {
            return Err(ChunkError::BadHeader);
        }
        let count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
        let ts_len = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
        let val_len = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
        if count == 0 || payload.len() != 12 + ts_len + val_len {
            return Err(ChunkError::BadHeader);
        }
        let ts_bytes = payload[12..12 + ts_len].to_vec();
        let val_bytes = payload[12 + ts_len..].to_vec();
        let mut chunk = Chunk {
            id: next_chunk_id(),
            count,
            min_ts: 0,
            max_ts: 0,
            ts_bytes,
            val_bytes,
        };
        // Validate eagerly: recovery wants structured errors now, not
        // a surprise at first query.
        let decoded = chunk.decode()?;
        chunk.min_ts = decoded.ts[0];
        chunk.max_ts = *decoded.ts.last().expect("count > 0");
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample::new(1_000 + i as i64 * 15_000, (i as f64 * 0.25).sin() * 10.0))
            .collect()
    }

    #[test]
    fn seal_decode_roundtrip() {
        let s = samples(CHUNK_SIZE);
        let chunk = Chunk::seal(&s);
        assert_eq!(chunk.len(), CHUNK_SIZE);
        assert_eq!(chunk.min_ts(), s[0].timestamp_ms);
        assert_eq!(chunk.max_ts(), s.last().unwrap().timestamp_ms);
        let d = chunk.decode().unwrap();
        for (i, smp) in s.iter().enumerate() {
            assert_eq!(d.ts[i], smp.timestamp_ms);
            assert_eq!(d.vals[i].to_bits(), smp.value.to_bits());
        }
    }

    #[test]
    fn compresses_regular_series_well() {
        // Counter-shaped values: integral steps leave long runs of zero
        // mantissa bits for the XOR codec.
        let s: Vec<Sample> = (0..CHUNK_SIZE)
            .map(|i| Sample::new(1_000 + i as i64 * 15_000, (i * 7) as f64))
            .collect();
        let chunk = Chunk::seal(&s);
        let raw = s.len() * 16;
        assert!(
            chunk.compressed_bytes() * 2 < raw,
            "compressed {} vs raw {raw}",
            chunk.compressed_bytes()
        );
    }

    #[test]
    fn bytes_roundtrip() {
        let chunk = Chunk::seal(&samples(100));
        let bytes = chunk.to_bytes();
        let back = Chunk::from_bytes(&bytes).unwrap();
        assert_ne!(back.id(), chunk.id(), "re-parsed chunks get fresh ids");
        assert_eq!(back.decode().unwrap(), chunk.decode().unwrap());
        assert_eq!(back.min_ts(), chunk.min_ts());
        assert_eq!(back.max_ts(), chunk.max_ts());
    }

    #[test]
    fn truncated_bytes_are_structured_errors() {
        let bytes = Chunk::seal(&samples(64)).to_bytes();
        for cut in 0..bytes.len() {
            let err = Chunk::from_bytes(&bytes[..cut]).expect_err("must fail");
            match err {
                ChunkError::Frame { .. } | ChunkError::BadFrameCount(_) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_structured_errors() {
        let bytes = Chunk::seal(&samples(64)).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            // Every single-byte flip must surface as an error or —
            // never — a wrong silent success (the CRC catches payload
            // flips; header flips break framing).
            if let Ok(chunk) = Chunk::from_bytes(&bad) {
                panic!("flip at byte {i} silently accepted chunk {:?}", chunk.id());
            }
        }
    }

    #[test]
    fn clones_share_cache_identity() {
        let chunk = Chunk::seal(&samples(8));
        assert_eq!(chunk.clone().id(), chunk.id());
        let other = Chunk::seal(&samples(8));
        assert_ne!(other.id(), chunk.id());
    }
}

//! Checksummed binary snapshots of the metric store with fsck-style
//! recovery.
//!
//! A snapshot is a sequence of CRC-framed records, one *series* per
//! frame, so damage is contained: a corrupt frame quarantines one
//! series, not the snapshot. Sealed chunks are embedded in compressed
//! form — a snapshot round trip never decompresses and recompresses
//! the columns, it just revalidates them.
//!
//! Frame payload layout (v2, little endian):
//!
//! ```text
//! u8   version (= 2)
//! u32  labels JSON length, then the labels as JSON pairs
//! u32  sealed chunk count
//!   per chunk: u32 payload length + chunk payload (see Chunk docs)
//! u32  head sample count
//!   per sample: i64 timestamp_ms + u64 value bits (f64::to_bits)
//! ```
//!
//! [`fsck_snapshot`] rebuilds a store from whatever survives and
//! reports exactly what it had to quarantine — it never aborts and
//! never panics, whatever the input bytes. Each embedded chunk is
//! fully decoded once during fsck so a semantically damaged chunk
//! (valid CRC, bad bitstream) is caught at recovery time, then kept
//! compressed in the rebuilt store.

use crate::chunk::Chunk;
use crate::labels::Labels;
use crate::sample::Sample;
use crate::series::Series;
use crate::storage::MetricStore;
use dio_faults::{decode_all, encode_record};

/// Snapshot payload format version.
pub const SNAPSHOT_VERSION: u8 = 2;

/// What [`fsck_snapshot`] recovered and what it quarantined.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Series rebuilt intact.
    pub series_recovered: usize,
    /// Samples across all recovered series.
    pub samples_recovered: usize,
    /// Series lost to checksum/framing damage or unparsable payloads.
    pub quarantined: usize,
    /// The snapshot ended mid-frame (torn final write).
    pub truncated_tail: bool,
}

impl FsckReport {
    /// True when nothing was quarantined or truncated.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && !self.truncated_tail
    }
}

/// Encode one series as a v2 snapshot payload (unframed).
fn series_payload(series: &Series) -> Vec<u8> {
    // Labels serialization cannot fail: plain string pairs.
    let labels_json = serde_json::to_string(series.labels()).expect("labels serialize");
    let mut p = Vec::new();
    p.push(SNAPSHOT_VERSION);
    p.extend_from_slice(&(labels_json.len() as u32).to_le_bytes());
    p.extend_from_slice(labels_json.as_bytes());
    p.extend_from_slice(&(series.chunks().len() as u32).to_le_bytes());
    for chunk in series.chunks() {
        let blob = chunk.payload();
        p.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        p.extend_from_slice(&blob);
    }
    p.extend_from_slice(&(series.head().len() as u32).to_le_bytes());
    for s in series.head() {
        p.extend_from_slice(&s.timestamp_ms.to_le_bytes());
        p.extend_from_slice(&s.value.to_bits().to_le_bytes());
    }
    p
}

/// Bounds-checked little-endian cursor over an untrusted payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parse and validate one v2 payload back into a series. `None` means
/// the frame is quarantined.
fn parse_series_payload(payload: &[u8]) -> Option<Series> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    if c.u8()? != SNAPSHOT_VERSION {
        return None;
    }
    let labels_len = c.u32()? as usize;
    let labels: Labels = serde_json::from_str(std::str::from_utf8(c.take(labels_len)?).ok()?).ok()?;
    let chunk_count = c.u32()? as usize;
    let mut chunks = Vec::with_capacity(chunk_count.min(1024));
    for _ in 0..chunk_count {
        let blob_len = c.u32()? as usize;
        // `from_payload` fully decodes both columns, so bitstream
        // damage inside a CRC-clean frame still quarantines here.
        chunks.push(Chunk::from_payload(c.take(blob_len)?).ok()?);
    }
    let head_count = c.u32()? as usize;
    let mut head = Vec::with_capacity(head_count.min(1024));
    for _ in 0..head_count {
        let ts = c.u64()? as i64;
        let bits = c.u64()?;
        head.push(Sample::new(ts, f64::from_bits(bits)));
    }
    if !c.done() {
        return None;
    }
    // Cross-tier ordering (chunks before head, all strictly
    // increasing) is re-validated from scratch: a frame that passes
    // its CRC can still carry semantically bad data from a buggy
    // producer.
    Series::from_parts(labels, chunks, head)
}

/// Serialize the whole store, one checksummed frame per series.
/// Sealed chunks are embedded compressed.
pub fn write_snapshot(store: &MetricStore) -> Vec<u8> {
    let mut out = Vec::new();
    for series in store.iter() {
        out.extend_from_slice(&encode_record(&series_payload(series)));
    }
    out
}

/// Rebuild a store from snapshot bytes, quarantining every series whose
/// frame is damaged, unparsable, or semantically invalid.
pub fn fsck_snapshot(bytes: &[u8]) -> (MetricStore, FsckReport) {
    let scan = decode_all(bytes);
    let mut report = FsckReport {
        quarantined: scan.corrupt_frames(),
        truncated_tail: scan.truncated_tail,
        ..FsckReport::default()
    };
    let mut store = MetricStore::new();
    for payload in &scan.records {
        let Some(series) = parse_series_payload(payload) else {
            report.quarantined += 1;
            continue;
        };
        let count = series.len();
        // Frames repeating a label set (impossible from
        // `write_snapshot`, but fsck trusts nothing) merge through the
        // append path; any sample that does not extend the existing
        // series quarantines the whole frame.
        if store.has_series(series.labels()) {
            let mut scratch = store.clone();
            if scratch.adopt_series(series) > 0 {
                report.quarantined += 1;
                continue;
            }
            store = scratch;
        } else {
            store.adopt_series(series);
        }
        report.series_recovered += 1;
        report.samples_recovered += count;
    }
    (store, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::CHUNK_SIZE;
    use crate::labels::{Labels, NAME_LABEL};
    use crate::sample::Sample;
    use dio_faults::FRAME_HEADER_LEN;

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for (name, inst, base) in [
            ("auth_req", "amf-0", 1_000i64),
            ("auth_req", "amf-1", 1_500),
            ("pdu_est", "smf-0", 2_000),
        ] {
            for k in 0..4 {
                st.append(
                    Labels::from_pairs([(NAME_LABEL, name), ("instance", inst)]),
                    Sample::new(base + k * 1_000, k as f64),
                )
                .unwrap();
            }
        }
        st
    }

    #[test]
    fn clean_roundtrip_preserves_everything() {
        let st = store();
        let bytes = write_snapshot(&st);
        let (back, report) = fsck_snapshot(&bytes);
        assert!(report.is_clean());
        assert_eq!(report.series_recovered, 3);
        assert_eq!(report.samples_recovered, 12);
        assert_eq!(back.series_count(), st.series_count());
        assert_eq!(back.sample_count(), st.sample_count());
        assert_eq!(back.metric_names(), st.metric_names());
    }

    #[test]
    fn sealed_chunks_stay_compressed_across_roundtrip() {
        let mut st = MetricStore::new();
        let labels = Labels::name_only("big");
        for i in 0..(CHUNK_SIZE * 2 + 9) as i64 {
            st.append(labels.clone(), Sample::new(i * 15_000, (i * 3) as f64))
                .unwrap();
        }
        let bytes = write_snapshot(&st);
        // The snapshot embeds compressed columns: far smaller than the
        // raw 16 bytes/sample would be.
        let raw = st.sample_count() * 16;
        assert!(bytes.len() * 2 < raw, "snapshot {} vs raw {raw}", bytes.len());
        let (back, report) = fsck_snapshot(&bytes);
        assert!(report.is_clean());
        let orig = &st.series_for("big")[0];
        let got = &back.series_for("big")[0];
        assert_eq!(got.chunks().len(), orig.chunks().len());
        assert_eq!(got.head().len(), orig.head().len());
        // Bit-exact sample recovery.
        let (a, b) = (orig.samples(), got.samples());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.timestamp_ms, y.timestamp_ms);
            assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
    }

    #[test]
    fn special_float_values_survive() {
        let mut st = MetricStore::new();
        let labels = Labels::name_only("weird");
        for (i, v) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0]
            .into_iter()
            .enumerate()
        {
            st.append(labels.clone(), Sample::new(i as i64 * 1_000 + 1, v))
                .unwrap();
        }
        let (back, report) = fsck_snapshot(&write_snapshot(&st));
        assert!(report.is_clean());
        let got = back.series_for("weird")[0].samples();
        assert!(got[0].value.is_nan());
        assert_eq!(got[1].value, f64::INFINITY);
        assert_eq!(got[2].value, f64::NEG_INFINITY);
        assert_eq!(got[3].value.to_bits(), (-0.0f64).to_bits());
        assert_eq!(got[4].value.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn corrupt_frame_quarantines_one_series_only() {
        let bytes = {
            let mut b = write_snapshot(&store());
            b[FRAME_HEADER_LEN + 3] ^= 0x01; // damage the first series' payload
            b
        };
        let (back, report) = fsck_snapshot(&bytes);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.series_recovered, 2);
        assert_eq!(back.series_count(), 2);
        assert!(!report.truncated_tail);
    }

    #[test]
    fn truncated_snapshot_recovers_the_complete_prefix() {
        let bytes = write_snapshot(&store());
        for cut in 0..=bytes.len() {
            let (_, report) = fsck_snapshot(&bytes[..cut]);
            assert_eq!(report.quarantined, 0, "cut at {cut}");
            assert!(report.series_recovered <= 3);
        }
        // Cutting mid-final-frame keeps the first two series.
        let (back, report) = fsck_snapshot(&bytes[..bytes.len() - 1]);
        assert_eq!(report.series_recovered, 2);
        assert!(report.truncated_tail);
        assert_eq!(back.series_count(), 2);
    }

    #[test]
    fn out_of_order_samples_inside_a_valid_frame_are_quarantined() {
        // A frame that passes its CRC can still be semantically bad if
        // it was written by a buggy producer; fsck re-validates the
        // ordering invariants from scratch.
        let mut series = Series::new(Labels::name_only("m"));
        series.append(Sample::new(1_000, 1.0)).unwrap();
        let mut payload = series_payload(&series);
        // Append a second head sample that goes backwards in time.
        let head_count_at = payload.len() - 16 - 4;
        payload[head_count_at..head_count_at + 4].copy_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&500i64.to_le_bytes());
        payload.extend_from_slice(&2.0f64.to_bits().to_le_bytes());
        let bytes = encode_record(&payload);
        let (_, report) = fsck_snapshot(&bytes);
        assert_eq!(report.series_recovered, 0);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn wrong_version_is_quarantined() {
        let mut series = Series::new(Labels::name_only("m"));
        series.append(Sample::new(1_000, 1.0)).unwrap();
        let mut payload = series_payload(&series);
        payload[0] = 1; // pretend v1
        let (_, report) = fsck_snapshot(&encode_record(&payload));
        assert_eq!(report.series_recovered, 0);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn trailing_garbage_in_frame_is_quarantined() {
        let mut series = Series::new(Labels::name_only("m"));
        series.append(Sample::new(1_000, 1.0)).unwrap();
        let mut payload = series_payload(&series);
        payload.push(0xAB);
        let (_, report) = fsck_snapshot(&encode_record(&payload));
        assert_eq!(report.series_recovered, 0);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn garbage_input_never_panics() {
        let garbage: Vec<u8> = (0..512u32).map(|i| (i * 37 % 251) as u8).collect();
        let (store, report) = fsck_snapshot(&garbage);
        assert_eq!(store.series_count(), 0);
        assert!(!report.is_clean());
    }
}

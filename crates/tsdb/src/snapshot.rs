//! Checksummed snapshots of the metric store with fsck-style recovery.
//!
//! A snapshot is a sequence of checksummed frames, one JSON-encoded
//! [`Series`](crate::Series) per frame, so damage is contained: a
//! corrupt frame quarantines *one series*, not the snapshot.
//! [`fsck_snapshot`] rebuilds a store from whatever survives and
//! reports exactly what it had to quarantine — it never aborts and
//! never panics, whatever the input bytes.

use crate::series::Series;
use crate::storage::MetricStore;
use dio_faults::{decode_all, encode_record};

/// What [`fsck_snapshot`] recovered and what it quarantined.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Series rebuilt intact.
    pub series_recovered: usize,
    /// Samples across all recovered series.
    pub samples_recovered: usize,
    /// Series lost to checksum/framing damage or unparsable payloads.
    pub quarantined: usize,
    /// The snapshot ended mid-frame (torn final write).
    pub truncated_tail: bool,
}

impl FsckReport {
    /// True when nothing was quarantined or truncated.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && !self.truncated_tail
    }
}

/// Serialize the whole store, one checksummed frame per series.
pub fn write_snapshot(store: &MetricStore) -> Vec<u8> {
    let mut out = Vec::new();
    for series in store.iter() {
        // Series serialization cannot fail: labels and samples are
        // plain strings and numbers.
        let payload = serde_json::to_string(series).expect("series serializes");
        out.extend_from_slice(&encode_record(payload.as_bytes()));
    }
    out
}

/// Rebuild a store from snapshot bytes, quarantining every series whose
/// frame is damaged or unparsable.
pub fn fsck_snapshot(bytes: &[u8]) -> (MetricStore, FsckReport) {
    let scan = decode_all(bytes);
    let mut report = FsckReport {
        quarantined: scan.corrupt_frames(),
        truncated_tail: scan.truncated_tail,
        ..FsckReport::default()
    };
    // Validate each frame into a scratch series before anything touches
    // the store, so a bad frame leaves no partial samples behind.
    // Frames repeating a label set (impossible from `write_snapshot`,
    // but fsck trusts nothing) continue the existing scratch: their
    // samples must still extend it in order or the frame is quarantined.
    let mut recovered: Vec<Series> = Vec::new();
    let mut by_sig: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for payload in &scan.records {
        let parsed = std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str::<Series>(s).ok());
        let Some(series) = parsed else {
            report.quarantined += 1;
            continue;
        };
        let labels = series.labels().clone();
        let idx = *by_sig.entry(labels.signature()).or_insert_with(|| {
            recovered.push(Series::new(labels.clone()));
            recovered.len() - 1
        });
        // Rebuild through the append path so ordering invariants are
        // re-validated from scratch: a frame that passes its CRC can
        // still carry semantically bad data from a buggy producer.
        let mut scratch = recovered[idx].clone();
        if series
            .samples()
            .iter()
            .any(|s| scratch.append(*s).is_err())
        {
            report.quarantined += 1;
            continue;
        }
        recovered[idx] = scratch;
        report.series_recovered += 1;
        report.samples_recovered += series.len();
    }
    let mut store = MetricStore::new();
    for series in recovered {
        let labels = series.labels().clone();
        store.ensure_series(labels.clone());
        for sample in series.samples() {
            store
                .append(labels.clone(), *sample)
                .expect("validated samples re-append");
        }
    }
    (store, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{Labels, NAME_LABEL};
    use crate::sample::Sample;
    use dio_faults::FRAME_HEADER_LEN;

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for (name, inst, base) in [
            ("auth_req", "amf-0", 1_000i64),
            ("auth_req", "amf-1", 1_500),
            ("pdu_est", "smf-0", 2_000),
        ] {
            for k in 0..4 {
                st.append(
                    Labels::from_pairs([(NAME_LABEL, name), ("instance", inst)]),
                    Sample::new(base + k * 1_000, k as f64),
                )
                .unwrap();
            }
        }
        st
    }

    #[test]
    fn clean_roundtrip_preserves_everything() {
        let st = store();
        let bytes = write_snapshot(&st);
        let (back, report) = fsck_snapshot(&bytes);
        assert!(report.is_clean());
        assert_eq!(report.series_recovered, 3);
        assert_eq!(report.samples_recovered, 12);
        assert_eq!(back.series_count(), st.series_count());
        assert_eq!(back.sample_count(), st.sample_count());
        assert_eq!(back.metric_names(), st.metric_names());
    }

    #[test]
    fn corrupt_frame_quarantines_one_series_only() {
        let bytes = {
            let mut b = write_snapshot(&store());
            b[FRAME_HEADER_LEN + 3] ^= 0x01; // damage the first series' payload
            b
        };
        let (back, report) = fsck_snapshot(&bytes);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.series_recovered, 2);
        assert_eq!(back.series_count(), 2);
        assert!(!report.truncated_tail);
    }

    #[test]
    fn truncated_snapshot_recovers_the_complete_prefix() {
        let bytes = write_snapshot(&store());
        for cut in 0..=bytes.len() {
            let (_, report) = fsck_snapshot(&bytes[..cut]);
            assert_eq!(report.quarantined, 0, "cut at {cut}");
            assert!(report.series_recovered <= 3);
        }
        // Cutting mid-final-frame keeps the first two series.
        let (back, report) = fsck_snapshot(&bytes[..bytes.len() - 1]);
        assert_eq!(report.series_recovered, 2);
        assert!(report.truncated_tail);
        assert_eq!(back.series_count(), 2);
    }

    #[test]
    fn out_of_order_samples_inside_a_valid_frame_are_quarantined() {
        // A frame that passes its CRC can still be semantically bad if
        // it was written by a buggy producer; fsck re-validates through
        // the append path.
        let payload = r#"{"labels":[["__name__","m"]],"samples":[{"timestamp_ms":2000,"value":1.0},{"timestamp_ms":1000,"value":2.0}]}"#;
        let bytes = encode_record(payload.as_bytes());
        let (_, report) = fsck_snapshot(&bytes);
        assert_eq!(report.series_recovered, 0);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn garbage_input_never_panics() {
        let garbage: Vec<u8> = (0..512u32).map(|i| (i * 37 % 251) as u8).collect();
        let (store, report) = fsck_snapshot(&garbage);
        assert_eq!(store.series_count(), 0);
        assert!(!report.is_clean());
    }
}

//! Decoded-chunk page cache.
//!
//! Sealed chunks are immutable, so a decoded chunk can be cached by
//! chunk id forever without invalidation. The cache holds decoded
//! columns behind `Arc` under a byte budget with LRU eviction (a
//! monotone tick per hit; the stalest entry is evicted first). One
//! cache is shared per [`MetricStore`](crate::MetricStore) clone
//! family, so the interpreter oracle and the vectorized engine warm it
//! for each other.

use crate::chunk::{Chunk, ChunkError, DecodedChunk};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default decoded-byte budget: 64 MiB ≈ 4M cached samples.
pub const DEFAULT_PAGE_CACHE_BYTES: usize = 64 * 1024 * 1024;

#[derive(Debug)]
struct Entry {
    decoded: Arc<DecodedChunk>,
    bytes: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    bytes: usize,
}

/// Hit/miss/eviction counters, for the bench harness and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
}

/// Byte-budgeted LRU cache of decoded chunks.
#[derive(Debug)]
pub struct PageCache {
    shard: Mutex<Shard>,
    budget: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PageCache {
    fn default() -> Self {
        PageCache::with_budget(DEFAULT_PAGE_CACHE_BYTES)
    }
}

impl PageCache {
    /// A cache with the default budget.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// A cache bounded to `budget` decoded bytes.
    pub fn with_budget(budget: usize) -> Self {
        PageCache {
            shard: Mutex::new(Shard::default()),
            budget,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Decoded columns for `chunk`, from cache or by decoding now.
    pub fn get(&self, chunk: &Chunk) -> Result<Arc<DecodedChunk>, ChunkError> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard.lock().expect("page cache poisoned");
            if let Some(e) = shard.entries.get_mut(&chunk.id()) {
                e.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&e.decoded));
            }
        }
        // Decode outside the lock: decodes of distinct chunks proceed
        // in parallel and only the map insert serialises.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let decoded = Arc::new(chunk.decode()?);
        let bytes = decoded.byte_size();
        let mut guard = self.shard.lock().expect("page cache poisoned");
        let shard = &mut *guard;
        let out = if let Some(e) = shard.entries.get_mut(&chunk.id()) {
            // Raced with another decoder; keep theirs.
            e.tick = tick;
            Arc::clone(&e.decoded)
        } else {
            shard.bytes += bytes;
            shard.entries.insert(
                chunk.id(),
                Entry {
                    decoded: Arc::clone(&decoded),
                    bytes,
                    tick,
                },
            );
            decoded
        };
        // Evict stalest-first until back under budget (never the entry
        // just inserted — budget smaller than one chunk still serves).
        while shard.bytes > self.budget && shard.entries.len() > 1 {
            let Some((&victim, _)) = shard
                .entries
                .iter()
                .filter(|(&id, _)| id != chunk.id())
                .min_by_key(|(_, e)| e.tick)
            else {
                break;
            };
            if let Some(gone) = shard.entries.remove(&victim) {
                shard.bytes -= gone.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(out)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PageCacheStats {
        let shard = self.shard.lock().expect("page cache poisoned");
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: shard.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;

    fn chunk(base: i64, n: usize) -> Chunk {
        let samples: Vec<Sample> = (0..n)
            .map(|i| Sample::new(base + i as i64 * 1_000, i as f64))
            .collect();
        Chunk::seal(&samples)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PageCache::new();
        let c = chunk(0, 100);
        let a = cache.get(&c).unwrap();
        let b = cache.get(&c).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_bytes, a.byte_size());
    }

    #[test]
    fn budget_evicts_lru() {
        // Each chunk decodes to 100 * 16 = 1600 bytes; budget two.
        let cache = PageCache::with_budget(3_300);
        let c1 = chunk(0, 100);
        let c2 = chunk(1_000_000, 100);
        let c3 = chunk(2_000_000, 100);
        cache.get(&c1).unwrap();
        cache.get(&c2).unwrap();
        cache.get(&c1).unwrap(); // c1 fresher than c2
        cache.get(&c3).unwrap(); // evicts c2
        assert_eq!(cache.stats().evictions, 1);
        cache.get(&c1).unwrap();
        assert_eq!(cache.stats().hits, 2);
        cache.get(&c2).unwrap(); // miss again: was evicted
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn tiny_budget_still_serves() {
        let cache = PageCache::with_budget(1);
        let c = chunk(0, 50);
        let d = cache.get(&c).unwrap();
        assert_eq!(d.ts.len(), 50);
        // Entry stays resident (never evict the only entry)...
        assert_eq!(cache.stats().resident_bytes, d.byte_size());
        // ...until another chunk displaces it.
        let c2 = chunk(500_000, 50);
        cache.get(&c2).unwrap();
        assert_eq!(cache.stats().evictions, 1);
    }
}

//! The metric store: every series, indexed by metric name.

use crate::labels::Labels;
use crate::matchers::{all_match, Matcher};
use crate::page_cache::PageCache;
use crate::sample::Sample;
use crate::series::{AppendError, Series};
use std::collections::HashMap;
use std::sync::Arc;

/// In-memory store of all series.
///
/// Series are indexed by metric name for fast selection (the common case
/// is a selector with an exact `__name__`), with a full scan fallback
/// for name-pattern selectors. Sealed chunks decode through a page
/// cache shared across clones of the store, so the interpreter oracle
/// and the vectorized engine warm it for each other.
#[derive(Debug, Clone)]
pub struct MetricStore {
    series: Vec<Series>,
    by_name: HashMap<String, Vec<usize>>,
    /// Signature → candidate series ids. A `Vec` because 64-bit label
    /// signatures can collide: every candidate is probed against the
    /// full label set before a hit is declared.
    by_signature: HashMap<u64, Vec<usize>>,
    page_cache: Arc<PageCache>,
}

impl Default for MetricStore {
    fn default() -> Self {
        MetricStore {
            series: Vec::new(),
            by_name: HashMap::new(),
            by_signature: HashMap::new(),
            page_cache: Arc::new(PageCache::new()),
        }
    }
}

impl MetricStore {
    /// An empty store.
    pub fn new() -> Self {
        MetricStore::default()
    }

    /// The shared decoded-chunk cache.
    pub fn page_cache(&self) -> &PageCache {
        &self.page_cache
    }

    /// Total number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.len()).sum()
    }

    /// Compressed bytes across all sealed chunks.
    pub fn compressed_bytes(&self) -> usize {
        self.series.iter().map(|s| s.compressed_bytes()).sum()
    }

    /// Distinct metric names, sorted.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.by_name.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// True when a metric with this exact name has at least one series.
    pub fn has_metric(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// True when a series with exactly these labels exists.
    pub fn has_series(&self, labels: &Labels) -> bool {
        self.by_signature
            .get(&labels.signature())
            .is_some_and(|ids| ids.iter().any(|&id| self.series[id].labels() == labels))
    }

    /// Get or create the series with exactly these labels, returning its
    /// internal id.
    pub fn ensure_series(&mut self, labels: Labels) -> usize {
        let sig = labels.signature();
        self.ensure_series_with_signature(sig, labels)
    }

    /// [`MetricStore::ensure_series`] with the signature supplied by
    /// the caller. Real `DefaultHasher` collisions cannot be forced in
    /// a test, so the collision regression test injects them here.
    fn ensure_series_with_signature(&mut self, sig: u64, labels: Labels) -> usize {
        // Probe every candidate sharing this signature: a collision
        // must not alias two distinct label sets onto one series, nor
        // evict the earlier one from the index.
        if let Some(ids) = self.by_signature.get(&sig) {
            for &id in ids {
                if self.series[id].labels() == &labels {
                    return id;
                }
            }
        }
        let id = self.series.len();
        if let Some(name) = labels.name() {
            self.by_name
                .entry(name.to_string())
                .or_default()
                .push(id);
        }
        self.by_signature.entry(sig).or_default().push(id);
        self.series.push(Series::new(labels));
        id
    }

    /// Append one sample to the series with these labels (creating it if
    /// needed).
    pub fn append(&mut self, labels: Labels, sample: Sample) -> Result<(), AppendError> {
        let id = self.ensure_series(labels);
        self.series[id].append(sample)
    }

    /// Merge a whole series in. When the store has no series with these
    /// labels the incoming series is adopted wholesale — its sealed
    /// chunks move without a decode (how cluster shards ship data).
    /// Otherwise the incoming samples are decoded and appended
    /// individually; out-of-order duplicates are skipped and counted.
    /// Returns the number of samples skipped.
    pub fn adopt_series(&mut self, incoming: Series) -> usize {
        let id = self.ensure_series(incoming.labels().clone());
        let target = &mut self.series[id];
        if target.is_empty() {
            *target = incoming;
            return 0;
        }
        let mut skipped = 0;
        for sample in incoming.samples() {
            if target.append(sample).is_err() {
                skipped += 1;
            }
        }
        skipped
    }

    /// All series whose labels satisfy every matcher.
    ///
    /// An `Eq` matcher on `__name__` narrows the scan to that name's
    /// postings list.
    pub fn select(&self, matchers: &[Matcher]) -> Vec<&Series> {
        self.select_indices(matchers)
            .into_iter()
            .map(|i| &self.series[i])
            .collect()
    }

    /// Ids of series whose labels satisfy every matcher, in storage
    /// order. The vectorized executor memoises on these ids.
    pub fn select_indices(&self, matchers: &[Matcher]) -> Vec<usize> {
        use crate::matchers::MatchOp;
        let name_eq = matchers
            .iter()
            .find(|m| m.name == crate::labels::NAME_LABEL && m.op == MatchOp::Eq);
        let candidates: Vec<usize> = match name_eq {
            Some(m) => self.by_name.get(&m.value).cloned().unwrap_or_default(),
            None => (0..self.series.len()).collect(),
        };
        candidates
            .into_iter()
            .filter(|&i| all_match(matchers, self.series[i].labels()))
            .collect()
    }

    /// The series with internal id `id`.
    ///
    /// # Panics
    /// When `id` did not come from this store.
    pub fn series_at(&self, id: usize) -> &Series {
        &self.series[id]
    }

    /// All series for a metric name.
    pub fn series_for(&self, name: &str) -> Vec<&Series> {
        self.by_name
            .get(name)
            .map(|ids| ids.iter().map(|&i| &self.series[i]).collect())
            .unwrap_or_default()
    }

    /// Iterate all series.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.iter()
    }

    /// Enforce a retention horizon: drop every sample older than
    /// `min_ts` across all series (empty series keep their identity).
    /// Returns the number of samples removed.
    pub fn enforce_retention(&mut self, min_ts: i64) -> usize {
        self.series
            .iter_mut()
            .map(|s| s.drop_samples_before(min_ts))
            .sum()
    }

    /// Earliest sample timestamp in the store.
    pub fn min_timestamp(&self) -> Option<i64> {
        self.series.iter().filter_map(|s| s.first_timestamp()).min()
    }

    /// Latest sample timestamp in the store.
    pub fn max_timestamp(&self) -> Option<i64> {
        self.series.iter().filter_map(|s| s.last_timestamp()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NAME_LABEL;

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for (name, inst, t, v) in [
            ("auth_req", "amf-0", 1000i64, 1.0),
            ("auth_req", "amf-0", 2000, 2.0),
            ("auth_req", "amf-1", 1000, 5.0),
            ("pdu_est", "smf-0", 1000, 7.0),
        ] {
            st.append(
                Labels::from_pairs([(NAME_LABEL, name), ("instance", inst)]),
                Sample::new(t, v),
            )
            .unwrap();
        }
        st
    }

    #[test]
    fn counts_series_and_samples() {
        let st = store();
        assert_eq!(st.series_count(), 3);
        assert_eq!(st.sample_count(), 4);
    }

    #[test]
    fn metric_names_sorted() {
        assert_eq!(store().metric_names(), vec!["auth_req", "pdu_est"]);
    }

    #[test]
    fn select_by_exact_name() {
        let st = store();
        let hits = st.select(&[Matcher::eq(NAME_LABEL, "auth_req")]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn select_with_additional_matcher() {
        let st = store();
        let hits = st.select(&[
            Matcher::eq(NAME_LABEL, "auth_req"),
            Matcher::eq("instance", "amf-1"),
        ]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].samples()[0].value, 5.0);
    }

    #[test]
    fn select_by_name_pattern_scans_all() {
        let st = store();
        let hits = st.select(&[Matcher::re(NAME_LABEL, ".*_req")]);
        assert_eq!(hits.len(), 2);
        let hits = st.select(&[Matcher::re(NAME_LABEL, "auth_req|pdu_est")]);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn select_unknown_name_is_empty() {
        assert!(store().select(&[Matcher::eq(NAME_LABEL, "nope")]).is_empty());
    }

    #[test]
    fn ensure_series_is_idempotent() {
        let mut st = MetricStore::new();
        let l = Labels::name_only("x");
        let a = st.ensure_series(l.clone());
        let b = st.ensure_series(l);
        assert_eq!(a, b);
        assert_eq!(st.series_count(), 1);
    }

    #[test]
    fn signature_collisions_probe_instead_of_aliasing() {
        // Two distinct label sets forced onto ONE signature. Before the
        // probing fix, the second `ensure_series` fell through the
        // labels-differ check and *overwrote* `by_signature[sig]`,
        // so a third call with the first label set minted a duplicate
        // series and split its samples across two ids.
        let mut st = MetricStore::new();
        let a = Labels::from_pairs([(NAME_LABEL, "m"), ("instance", "a")]);
        let b = Labels::from_pairs([(NAME_LABEL, "m"), ("instance", "b")]);
        const SIG: u64 = 0xDEAD_BEEF;
        let id_a = st.ensure_series_with_signature(SIG, a.clone());
        let id_b = st.ensure_series_with_signature(SIG, b.clone());
        assert_ne!(id_a, id_b, "colliding labels must not alias one series");
        // Re-resolving either label set finds its original id — no
        // duplicate series minted, no samples split.
        assert_eq!(st.ensure_series_with_signature(SIG, a), id_a);
        assert_eq!(st.ensure_series_with_signature(SIG, b), id_b);
        assert_eq!(st.series_count(), 2);
        // A third distinct label set on the same signature still probes.
        let c = Labels::from_pairs([(NAME_LABEL, "m"), ("instance", "c")]);
        let id_c = st.ensure_series_with_signature(SIG, c.clone());
        assert_eq!(st.ensure_series_with_signature(SIG, c), id_c);
        assert_eq!(st.series_count(), 3);
    }

    #[test]
    fn append_routes_to_same_series() {
        let st = store();
        let s = st.series_for("auth_req");
        let amf0 = s
            .iter()
            .find(|s| s.labels().get("instance") == Some("amf-0"))
            .unwrap();
        assert_eq!(amf0.len(), 2);
    }

    #[test]
    fn min_max_timestamps() {
        let st = store();
        assert_eq!(st.min_timestamp(), Some(1000));
        assert_eq!(st.max_timestamp(), Some(2000));
    }

    #[test]
    fn retention_drops_old_samples_only() {
        let mut st = store();
        let removed = st.enforce_retention(1500);
        // Two series had a sample at t=1000 each... auth_req/amf-0 had
        // (1000, 2000); amf-1 and pdu_est had t=1000 only.
        assert_eq!(removed, 3);
        assert_eq!(st.sample_count(), 1);
        assert_eq!(st.min_timestamp(), Some(2000));
        // Identity survives even when empty.
        assert_eq!(st.series_count(), 3);
        // Appends after retention still work.
        st.append(
            Labels::from_pairs([(NAME_LABEL, "pdu_est"), ("instance", "smf-0")]),
            Sample::new(3000, 1.0),
        )
        .unwrap();
        assert_eq!(st.sample_count(), 2);
    }

    #[test]
    fn adopt_series_moves_chunks_or_merges() {
        use crate::chunk::CHUNK_SIZE;
        let mut src = Series::new(Labels::name_only("adopted"));
        for i in 0..(CHUNK_SIZE + 3) as i64 {
            src.append(Sample::new(1_000 + i * 100, i as f64)).unwrap();
        }
        let chunk_id = src.chunks()[0].id();
        let mut st = MetricStore::new();
        // Fresh adoption: the sealed chunk moves, not its samples.
        assert_eq!(st.adopt_series(src.clone()), 0);
        let got = &st.series_for("adopted")[0];
        assert_eq!(got.chunks()[0].id(), chunk_id);
        assert_eq!(got.len(), CHUNK_SIZE + 3);
        // Re-adopting the same series: every sample is a duplicate.
        assert_eq!(st.adopt_series(src.clone()), CHUNK_SIZE + 3);
        // Adopting newer samples into an existing series appends them.
        let mut newer = Series::new(Labels::name_only("adopted"));
        let last = src.last_timestamp().unwrap();
        newer.append(Sample::new(last + 1, 42.0)).unwrap();
        assert_eq!(st.adopt_series(newer), 0);
        assert_eq!(
            st.series_for("adopted")[0].last_timestamp(),
            Some(last + 1)
        );
    }

    #[test]
    fn empty_store() {
        let st = MetricStore::new();
        assert_eq!(st.series_count(), 0);
        assert_eq!(st.min_timestamp(), None);
        assert!(st.select(&[]).is_empty());
    }
}

//! The metric store: every series, indexed by metric name.

use crate::labels::Labels;
use crate::matchers::{all_match, Matcher};
use crate::sample::Sample;
use crate::series::{AppendError, Series};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// In-memory store of all series.
///
/// Series are indexed by metric name for fast selection (the common case
/// is a selector with an exact `__name__`), with a full scan fallback
/// for name-pattern selectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricStore {
    series: Vec<Series>,
    by_name: HashMap<String, Vec<usize>>,
    by_signature: HashMap<u64, usize>,
}

impl MetricStore {
    /// An empty store.
    pub fn new() -> Self {
        MetricStore::default()
    }

    /// Total number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.len()).sum()
    }

    /// Distinct metric names, sorted.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.by_name.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// True when a metric with this exact name has at least one series.
    pub fn has_metric(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Get or create the series with exactly these labels, returning its
    /// internal id.
    pub fn ensure_series(&mut self, labels: Labels) -> usize {
        let sig = labels.signature();
        if let Some(&id) = self.by_signature.get(&sig) {
            // Signature collision check: verify labels actually match.
            if self.series[id].labels() == &labels {
                return id;
            }
        }
        let id = self.series.len();
        if let Some(name) = labels.name() {
            self.by_name
                .entry(name.to_string())
                .or_default()
                .push(id);
        }
        self.by_signature.insert(sig, id);
        self.series.push(Series::new(labels));
        id
    }

    /// Append one sample to the series with these labels (creating it if
    /// needed).
    pub fn append(&mut self, labels: Labels, sample: Sample) -> Result<(), AppendError> {
        let id = self.ensure_series(labels);
        self.series[id].append(sample)
    }

    /// All series whose labels satisfy every matcher.
    ///
    /// An `Eq` matcher on `__name__` narrows the scan to that name's
    /// postings list.
    pub fn select(&self, matchers: &[Matcher]) -> Vec<&Series> {
        use crate::matchers::MatchOp;
        let name_eq = matchers
            .iter()
            .find(|m| m.name == crate::labels::NAME_LABEL && m.op == MatchOp::Eq);
        let candidates: Vec<usize> = match name_eq {
            Some(m) => self.by_name.get(&m.value).cloned().unwrap_or_default(),
            None => (0..self.series.len()).collect(),
        };
        candidates
            .into_iter()
            .map(|i| &self.series[i])
            .filter(|s| all_match(matchers, s.labels()))
            .collect()
    }

    /// All series for a metric name.
    pub fn series_for(&self, name: &str) -> Vec<&Series> {
        self.by_name
            .get(name)
            .map(|ids| ids.iter().map(|&i| &self.series[i]).collect())
            .unwrap_or_default()
    }

    /// Iterate all series.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.iter()
    }

    /// Enforce a retention horizon: drop every sample older than
    /// `min_ts` across all series (empty series keep their identity).
    /// Returns the number of samples removed.
    pub fn enforce_retention(&mut self, min_ts: i64) -> usize {
        self.series
            .iter_mut()
            .map(|s| s.drop_samples_before(min_ts))
            .sum()
    }

    /// Earliest sample timestamp in the store.
    pub fn min_timestamp(&self) -> Option<i64> {
        self.series.iter().filter_map(|s| s.first_timestamp()).min()
    }

    /// Latest sample timestamp in the store.
    pub fn max_timestamp(&self) -> Option<i64> {
        self.series.iter().filter_map(|s| s.last_timestamp()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NAME_LABEL;

    fn store() -> MetricStore {
        let mut st = MetricStore::new();
        for (name, inst, t, v) in [
            ("auth_req", "amf-0", 1000i64, 1.0),
            ("auth_req", "amf-0", 2000, 2.0),
            ("auth_req", "amf-1", 1000, 5.0),
            ("pdu_est", "smf-0", 1000, 7.0),
        ] {
            st.append(
                Labels::from_pairs([(NAME_LABEL, name), ("instance", inst)]),
                Sample::new(t, v),
            )
            .unwrap();
        }
        st
    }

    #[test]
    fn counts_series_and_samples() {
        let st = store();
        assert_eq!(st.series_count(), 3);
        assert_eq!(st.sample_count(), 4);
    }

    #[test]
    fn metric_names_sorted() {
        assert_eq!(store().metric_names(), vec!["auth_req", "pdu_est"]);
    }

    #[test]
    fn select_by_exact_name() {
        let st = store();
        let hits = st.select(&[Matcher::eq(NAME_LABEL, "auth_req")]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn select_with_additional_matcher() {
        let st = store();
        let hits = st.select(&[
            Matcher::eq(NAME_LABEL, "auth_req"),
            Matcher::eq("instance", "amf-1"),
        ]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].samples()[0].value, 5.0);
    }

    #[test]
    fn select_by_name_pattern_scans_all() {
        let st = store();
        let hits = st.select(&[Matcher::re(NAME_LABEL, ".*_req")]);
        assert_eq!(hits.len(), 2);
        let hits = st.select(&[Matcher::re(NAME_LABEL, "auth_req|pdu_est")]);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn select_unknown_name_is_empty() {
        assert!(store().select(&[Matcher::eq(NAME_LABEL, "nope")]).is_empty());
    }

    #[test]
    fn ensure_series_is_idempotent() {
        let mut st = MetricStore::new();
        let l = Labels::name_only("x");
        let a = st.ensure_series(l.clone());
        let b = st.ensure_series(l);
        assert_eq!(a, b);
        assert_eq!(st.series_count(), 1);
    }

    #[test]
    fn append_routes_to_same_series() {
        let st = store();
        let s = st.series_for("auth_req");
        let amf0 = s
            .iter()
            .find(|s| s.labels().get("instance") == Some("amf-0"))
            .unwrap();
        assert_eq!(amf0.len(), 2);
    }

    #[test]
    fn min_max_timestamps() {
        let st = store();
        assert_eq!(st.min_timestamp(), Some(1000));
        assert_eq!(st.max_timestamp(), Some(2000));
    }

    #[test]
    fn retention_drops_old_samples_only() {
        let mut st = store();
        let removed = st.enforce_retention(1500);
        // Two series had a sample at t=1000 each... auth_req/amf-0 had
        // (1000, 2000); amf-1 and pdu_est had t=1000 only.
        assert_eq!(removed, 3);
        assert_eq!(st.sample_count(), 1);
        assert_eq!(st.min_timestamp(), Some(2000));
        // Identity survives even when empty.
        assert_eq!(st.series_count(), 3);
        // Appends after retention still work.
        st.append(
            Labels::from_pairs([(NAME_LABEL, "pdu_est"), ("instance", "smf-0")]),
            Sample::new(3000, 1.0),
        )
        .unwrap();
        assert_eq!(st.sample_count(), 2);
    }

    #[test]
    fn empty_store() {
        let st = MetricStore::new();
        assert_eq!(st.series_count(), 0);
        assert_eq!(st.min_timestamp(), None);
        assert!(st.select(&[]).is_empty());
    }
}

//! Deterministic synthetic operator-traffic generator.
//!
//! Fills a [`MetricStore`] with "synthetic yet representative" data
//! (paper §4.1): counters accumulate at a diurnal rate with bounded
//! multiplicative noise; gauges oscillate around a base level.
//!
//! Determinism is structural: per-step noise is a pure function of
//! `(spec seed, step index)`, so regenerating with the same specs yields
//! bit-identical data, and two specs sharing a seed have *correlated*
//! noise. That correlation is how attempt/success counter pairs stay
//! consistent (success rate = attempts rate × ratio, with identical
//! noise, so success increments never exceed attempt increments).

use crate::labels::Labels;
use crate::sample::Sample;
use crate::storage::MetricStore;
use serde::{Deserialize, Serialize};

/// Milliseconds in one day, the diurnal period.
const DAY_MS: f64 = 24.0 * 3600.0 * 1000.0;

/// The temporal shape of one synthetic series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SeriesShape {
    /// Monotonically non-decreasing counter. The instantaneous rate is
    /// `base_rate_per_sec * (1 + diurnal_frac*sin(2πt/day)) * (1 + noise_frac*u)`
    /// with `u ∈ [-1, 1]` drawn deterministically per step.
    Counter {
        /// Mean increment rate in events per second.
        base_rate_per_sec: f64,
        /// Diurnal modulation fraction in `[0, 1)`.
        diurnal_frac: f64,
        /// Multiplicative noise fraction in `[0, 1)`.
        noise_frac: f64,
    },
    /// Gauge oscillating as
    /// `base * (1 + amplitude*sin(2πt/period)) + base*noise_frac*u`.
    Gauge {
        /// Mean level.
        base: f64,
        /// Relative oscillation amplitude in `[0, 1)`.
        amplitude: f64,
        /// Oscillation period in milliseconds.
        period_ms: i64,
        /// Additive noise fraction of `base`.
        noise_frac: f64,
    },
}

/// One series to synthesise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSpec {
    /// Full identity (must include `__name__`).
    pub labels: Labels,
    /// Temporal shape.
    pub shape: SeriesShape,
    /// Noise seed. Specs sharing a seed draw identical noise.
    pub seed: u64,
    /// Rate/level multiplier applied on top of the shape. Used to derive
    /// coupled metrics: a success counter is its attempt counter's spec
    /// with `scale = success_ratio` and the same seed.
    pub scale: f64,
}

impl SeriesSpec {
    /// A counter spec with unit scale.
    pub fn counter(labels: Labels, base_rate_per_sec: f64, seed: u64) -> Self {
        SeriesSpec {
            labels,
            shape: SeriesShape::Counter {
                base_rate_per_sec,
                diurnal_frac: 0.3,
                noise_frac: 0.1,
            },
            seed,
            scale: 1.0,
        }
    }

    /// A gauge spec with unit scale.
    pub fn gauge(labels: Labels, base: f64, seed: u64) -> Self {
        SeriesSpec {
            labels,
            shape: SeriesShape::Gauge {
                base,
                amplitude: 0.2,
                period_ms: 6 * 3600 * 1000,
                noise_frac: 0.05,
            },
            seed,
            scale: 1.0,
        }
    }

    /// Derive a coupled spec (same seed, same shape, scaled) under a new
    /// identity — e.g. the `success` counter of an `attempt` counter.
    pub fn derived(&self, labels: Labels, ratio: f64) -> Self {
        SeriesSpec {
            labels,
            shape: self.shape.clone(),
            seed: self.seed,
            scale: self.scale * ratio,
        }
    }
}

/// Time axis for synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// First sample timestamp (ms since epoch).
    pub start_ms: i64,
    /// Last sample timestamp is the largest `start + k*step <= end`.
    pub end_ms: i64,
    /// Scrape interval in ms.
    pub step_ms: i64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        // 6 hours of data at a 30 s scrape interval starting at a fixed
        // epoch (2023-11-01T00:00:00Z), 721 samples per series.
        SynthConfig {
            start_ms: 1_698_796_800_000,
            end_ms: 1_698_796_800_000 + 6 * 3600 * 1000,
            step_ms: 30_000,
        }
    }
}

impl SynthConfig {
    /// Number of samples each series receives.
    pub fn steps(&self) -> usize {
        if self.end_ms < self.start_ms || self.step_ms <= 0 {
            return 0;
        }
        ((self.end_ms - self.start_ms) / self.step_ms) as usize + 1
    }
}

/// Deterministic per-step noise in `[-1, 1]`.
fn hash_noise(seed: u64, step: u64) -> f64 {
    let mut h = seed ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Synthesises series into a store.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    config: SynthConfig,
}

impl Synthesizer {
    /// Create with a time axis.
    pub fn new(config: SynthConfig) -> Self {
        Synthesizer { config }
    }

    /// The time axis.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generate all samples for one spec.
    pub fn synthesize(&self, spec: &SeriesSpec) -> Vec<Sample> {
        let cfg = &self.config;
        let steps = cfg.steps();
        let mut out = Vec::with_capacity(steps);
        let step_sec = cfg.step_ms as f64 / 1000.0;
        let mut counter_acc = 0.0f64;
        for k in 0..steps {
            let ts = cfg.start_ms + k as i64 * cfg.step_ms;
            let t = ts as f64;
            let u = hash_noise(spec.seed, k as u64);
            let value = match &spec.shape {
                SeriesShape::Counter {
                    base_rate_per_sec,
                    diurnal_frac,
                    noise_frac,
                } => {
                    if k > 0 {
                        let diurnal = 1.0 + diurnal_frac * (2.0 * std::f64::consts::PI * t / DAY_MS).sin();
                        let noise = 1.0 + noise_frac * u;
                        let rate = base_rate_per_sec * diurnal.max(0.0) * noise.max(0.0);
                        counter_acc += rate * step_sec * spec.scale;
                    }
                    counter_acc
                }
                SeriesShape::Gauge {
                    base,
                    amplitude,
                    period_ms,
                    noise_frac,
                } => {
                    let phase = 2.0 * std::f64::consts::PI * t / (*period_ms as f64);
                    (base * (1.0 + amplitude * phase.sin()) + base * noise_frac * u) * spec.scale
                }
            };
            out.push(Sample::new(ts, value));
        }
        out
    }

    /// Synthesise every spec into `store`.
    pub fn populate(&self, specs: &[SeriesSpec], store: &mut MetricStore) {
        for spec in specs {
            let samples = self.synthesize(spec);
            let id = store.ensure_series(spec.labels.clone());
            let _ = id; // ensure_series first so even zero-step configs register the series
            for s in samples {
                store
                    .append(spec.labels.clone(), s)
                    .expect("synthesizer emits strictly increasing timestamps");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NAME_LABEL;

    fn cfg() -> SynthConfig {
        SynthConfig {
            start_ms: 0,
            end_ms: 600_000,
            step_ms: 60_000,
        }
    }

    fn labels(name: &str) -> Labels {
        Labels::from_pairs([(NAME_LABEL, name), ("instance", "amf-0")])
    }

    #[test]
    fn steps_counts_inclusive_endpoints() {
        assert_eq!(cfg().steps(), 11);
        let degenerate = SynthConfig {
            start_ms: 10,
            end_ms: 0,
            step_ms: 5,
        };
        assert_eq!(degenerate.steps(), 0);
    }

    #[test]
    fn counter_is_monotone_nondecreasing() {
        let synth = Synthesizer::new(cfg());
        let spec = SeriesSpec::counter(labels("c"), 5.0, 42);
        let samples = synth.synthesize(&spec);
        assert_eq!(samples.len(), 11);
        assert_eq!(samples[0].value, 0.0);
        for w in samples.windows(2) {
            assert!(w[1].value >= w[0].value);
            assert!(w[1].timestamp_ms > w[0].timestamp_ms);
        }
    }

    #[test]
    fn counter_grows_roughly_at_base_rate() {
        let synth = Synthesizer::new(cfg());
        let spec = SeriesSpec::counter(labels("c"), 10.0, 1);
        let samples = synth.synthesize(&spec);
        let total = samples.last().unwrap().value;
        // 600 seconds at ~10/sec with ±30% diurnal ±10% noise.
        assert!((3_500.0..=8_500.0).contains(&total), "total={total}");
    }

    #[test]
    fn generation_is_deterministic() {
        let synth = Synthesizer::new(cfg());
        let spec = SeriesSpec::gauge(labels("g"), 100.0, 7);
        assert_eq!(synth.synthesize(&spec), synth.synthesize(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let synth = Synthesizer::new(cfg());
        let a = synth.synthesize(&SeriesSpec::counter(labels("c"), 5.0, 1));
        let b = synth.synthesize(&SeriesSpec::counter(labels("c"), 5.0, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn derived_success_never_exceeds_attempts() {
        let synth = Synthesizer::new(cfg());
        let attempts = SeriesSpec::counter(labels("attempt"), 8.0, 99);
        let success = attempts.derived(labels("success"), 0.95);
        let sa = synth.synthesize(&attempts);
        let ss = synth.synthesize(&success);
        for (a, s) in sa.iter().zip(ss.iter()) {
            assert!(s.value <= a.value + 1e-9);
        }
        // And the ratio of totals is exactly the derivation ratio.
        let ratio = ss.last().unwrap().value / sa.last().unwrap().value;
        assert!((ratio - 0.95).abs() < 1e-9, "ratio={ratio}");
    }

    #[test]
    fn gauge_stays_near_base() {
        let synth = Synthesizer::new(cfg());
        let samples = synth.synthesize(&SeriesSpec::gauge(labels("g"), 100.0, 3));
        for s in &samples {
            assert!((60.0..=140.0).contains(&s.value), "value={}", s.value);
        }
    }

    #[test]
    fn populate_fills_store() {
        let synth = Synthesizer::new(cfg());
        let specs = vec![
            SeriesSpec::counter(labels("a"), 1.0, 1),
            SeriesSpec::gauge(labels("b"), 10.0, 2),
        ];
        let mut store = MetricStore::new();
        synth.populate(&specs, &mut store);
        assert_eq!(store.series_count(), 2);
        assert_eq!(store.sample_count(), 22);
        assert_eq!(store.min_timestamp(), Some(0));
        assert_eq!(store.max_timestamp(), Some(600_000));
    }

    #[test]
    fn hash_noise_is_bounded_and_varied() {
        let mut distinct = std::collections::HashSet::new();
        for k in 0..1000 {
            let u = hash_noise(5, k);
            assert!((-1.0..=1.0).contains(&u));
            distinct.insert((u * 1e9) as i64);
        }
        assert!(distinct.len() > 900);
    }
}

//! Crash-consistent metric store: snapshot + write-ahead log.
//!
//! [`DurableStore`] wraps a [`MetricStore`] with WAL-first appends: the
//! record is framed onto the log medium *before* the in-memory store
//! changes, and the caller is only acknowledged when the full frame
//! landed. Recovery fscks the snapshot, replays the WAL, and reports
//! everything it quarantined — so a crash (or a chaos-injected torn
//! write) at any byte offset loses at most unacknowledged work.

use crate::labels::Labels;
use crate::sample::Sample;
use crate::series::AppendError;
use crate::snapshot::{fsck_snapshot, write_snapshot, FsckReport};
use crate::storage::MetricStore;
use crate::wal::{recover, Wal, WalRecord, WalRecovery};
use dio_faults::Medium;

/// Error from [`DurableStore::append`].
#[derive(Debug)]
pub enum DurableError {
    /// The WAL write failed; nothing was acknowledged or applied. The
    /// caller may retry (transient device faults succeed on retry).
    Wal(std::io::Error),
    /// The WAL write was acknowledged but the sample violates series
    /// ordering. Replay rejects it identically on recovery, so the
    /// durable state and the in-memory state stay convergent.
    Rejected(AppendError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "wal append failed: {e}"),
            DurableError::Rejected(e) => write!(f, "append rejected: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

/// What [`DurableStore::recover`] found on the way back up.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Snapshot fsck outcome.
    pub snapshot: FsckReport,
    /// WAL records replayed into the store.
    pub wal_replayed: usize,
    /// WAL records rejected on replay (out-of-order duplicates of
    /// samples the snapshot already holds, or producer bugs).
    pub wal_rejected: usize,
    /// WAL frames quarantined for checksum/framing damage.
    pub wal_corrupt_frames: usize,
    /// WAL frames with unparsable payloads.
    pub wal_unparsable: usize,
    /// The WAL ended mid-frame (torn final write, unacked).
    pub wal_truncated_tail: bool,
}

impl RecoveryReport {
    /// True when neither snapshot nor WAL needed any quarantining.
    pub fn is_clean(&self) -> bool {
        self.snapshot.is_clean()
            && self.wal_rejected == 0
            && self.wal_corrupt_frames == 0
            && self.wal_unparsable == 0
            && !self.wal_truncated_tail
    }
}

/// A [`MetricStore`] with WAL-first durability over any [`Medium`].
#[derive(Debug)]
pub struct DurableStore<M> {
    store: MetricStore,
    wal: Wal<M>,
}

impl<M: Medium> DurableStore<M> {
    /// A fresh store logging onto `wal_medium`.
    pub fn new(wal_medium: M) -> Self {
        DurableStore {
            store: MetricStore::new(),
            wal: Wal::new(wal_medium),
        }
    }

    /// Rebuild from a snapshot plus whatever the WAL medium holds.
    /// Quarantines damage instead of failing; the only error is the
    /// medium refusing to be read at all (retryable under chaos).
    pub fn recover(
        snapshot_bytes: &[u8],
        mut wal_medium: M,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let (mut store, snap_report) = fsck_snapshot(snapshot_bytes);
        let wal_bytes = wal_medium.load()?;
        let wal_rec: WalRecovery = recover(&wal_bytes);
        let mut report = RecoveryReport {
            snapshot: snap_report,
            wal_corrupt_frames: wal_rec.corrupt_frames,
            wal_unparsable: wal_rec.unparsable,
            wal_truncated_tail: wal_rec.truncated_tail,
            ..RecoveryReport::default()
        };
        for rec in wal_rec.records {
            match store.append(rec.labels, rec.sample) {
                Ok(()) => report.wal_replayed += 1,
                Err(_) => report.wal_rejected += 1,
            }
        }
        let durable = DurableStore {
            store,
            wal: Wal::new(wal_medium),
        };
        Ok((durable, report))
    }

    /// Append WAL-first: `Ok` means the sample is durable *and*
    /// applied. See [`DurableError`] for the two failure shapes.
    pub fn append(&mut self, labels: Labels, sample: Sample) -> Result<(), DurableError> {
        let record = WalRecord {
            labels: labels.clone(),
            sample,
        };
        self.wal.append(&record).map_err(DurableError::Wal)?;
        self.store
            .append(labels, sample)
            .map_err(DurableError::Rejected)
    }

    /// Capture the current store as snapshot bytes and truncate the
    /// WAL. Returns the snapshot for the caller to place on its
    /// snapshot medium; the WAL is only truncated after the snapshot
    /// bytes are built, never before.
    pub fn checkpoint(&mut self) -> std::io::Result<Vec<u8>> {
        let bytes = write_snapshot(&self.store);
        self.wal.truncate()?;
        Ok(bytes)
    }

    /// The in-memory store.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Wal<M> {
        &self.wal
    }

    /// Unwrap into the in-memory store and the WAL medium.
    pub fn into_parts(self) -> (MetricStore, M) {
        (self.store, self.wal.into_medium())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NAME_LABEL;
    use dio_faults::{ChaosConfig, ChaosMedium, Injector, MemMedium};

    fn labels(i: usize) -> Labels {
        Labels::from_pairs([(NAME_LABEL, "auth_req"), ("instance", &format!("amf-{i}"))])
    }

    #[test]
    fn appends_survive_crash_and_recovery() {
        let mut ds = DurableStore::new(MemMedium::new());
        for k in 0..5 {
            ds.append(labels(k % 2), Sample::new(1_000 * (k as i64 + 1), k as f64))
                .unwrap();
        }
        let (store, medium) = ds.into_parts();
        // "Crash": rebuild purely from the WAL medium, no snapshot.
        let (back, report) = DurableStore::recover(&[], medium).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.wal_replayed, 5);
        assert_eq!(back.store().sample_count(), store.sample_count());
        assert_eq!(back.store().series_count(), store.series_count());
    }

    #[test]
    fn checkpoint_then_wal_tail_recovers_both_halves() {
        let mut ds = DurableStore::new(MemMedium::new());
        for k in 0..4 {
            ds.append(labels(0), Sample::new(1_000 * (k + 1), k as f64))
                .unwrap();
        }
        let snapshot = ds.checkpoint().unwrap();
        assert!(ds.wal().is_empty());
        for k in 4..6 {
            ds.append(labels(0), Sample::new(1_000 * (k + 1), k as f64))
                .unwrap();
        }
        let (_, medium) = ds.into_parts();
        let (back, report) = DurableStore::recover(&snapshot, medium).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.snapshot.samples_recovered, 4);
        assert_eq!(report.wal_replayed, 2);
        assert_eq!(back.store().sample_count(), 6);
    }

    #[test]
    fn crash_at_every_wal_byte_offset_keeps_acked_prefix() {
        let mut ds = DurableStore::new(MemMedium::new());
        let mut boundaries = vec![];
        for k in 0..4 {
            ds.append(labels(0), Sample::new(1_000 * (k + 1), k as f64))
                .unwrap();
            boundaries.push(ds.wal().len());
        }
        let (_, medium) = ds.into_parts();
        let bytes = medium.into_bytes();
        for cut in 0..=bytes.len() {
            let acked = boundaries.iter().filter(|&&b| b <= cut).count();
            let (back, report) =
                DurableStore::recover(&[], MemMedium::from(bytes[..cut].to_vec())).unwrap();
            assert_eq!(back.store().sample_count(), acked, "cut at {cut}");
            assert_eq!(report.wal_replayed, acked, "cut at {cut}");
            assert_eq!(report.wal_corrupt_frames, 0, "cut at {cut}");
            assert_eq!(report.wal_rejected, 0, "cut at {cut}");
        }
    }

    #[test]
    fn transient_wal_fault_is_unacked_and_retryable() {
        let transient_only = Injector::new(ChaosConfig {
            seed: 11,
            fault_probability: 0.6,
            weights: [0, 1, 0, 0], // TransientIo only
            latency_spike_micros: 0,
        });
        let medium = ChaosMedium::new(MemMedium::new(), transient_only);
        let mut ds = DurableStore::new(medium);
        let mut acked = 0usize;
        for k in 0..20i64 {
            // Retry each sample until the device accepts it.
            let mut attempts = 0;
            loop {
                match ds.append(labels(0), Sample::new(1_000 * (k + 1), k as f64)) {
                    Ok(()) => {
                        acked += 1;
                        break;
                    }
                    Err(DurableError::Wal(_)) => {
                        attempts += 1;
                        assert!(attempts < 50, "retry budget blown");
                    }
                    Err(DurableError::Rejected(e)) => panic!("unexpected rejection: {e}"),
                }
            }
        }
        assert_eq!(acked, 20);
        let (_, medium) = ds.into_parts();
        let (inner, injector) = medium.into_parts();
        assert!(!injector.log().is_empty(), "chaos injected nothing");
        let (back, report) = DurableStore::recover(&[], inner).unwrap();
        assert!(report.is_clean());
        assert_eq!(back.store().sample_count(), 20);
    }

    #[test]
    fn rejected_append_is_consistent_across_recovery() {
        let mut ds = DurableStore::new(MemMedium::new());
        ds.append(labels(0), Sample::new(2_000, 1.0)).unwrap();
        // Out-of-order: rejected in memory, logged in the WAL.
        assert!(matches!(
            ds.append(labels(0), Sample::new(1_000, 2.0)),
            Err(DurableError::Rejected(_))
        ));
        assert_eq!(ds.store().sample_count(), 1);
        let (_, medium) = ds.into_parts();
        let (back, report) = DurableStore::recover(&[], medium).unwrap();
        // Replay rejects the same record: memory and durable state agree.
        assert_eq!(report.wal_replayed, 1);
        assert_eq!(report.wal_rejected, 1);
        assert_eq!(back.store().sample_count(), 1);
    }
}

//! # dio-tsdb
//!
//! In-memory time-series database substrate.
//!
//! The paper executes generated PromQL "on a database comprising
//! synthetic yet representative data for different metrics" (§4.1).
//! This crate is that database: a Prometheus-shaped store of labelled
//! series plus a deterministic synthetic traffic generator that fills it
//! with operator-style data (diurnal counters, noisy gauges, coupled
//! attempt/success pairs).
//!
//! Semantics follow Prometheus where the reproduction depends on them:
//!
//! * a series is identified by its full label set including `__name__`;
//! * instant lookups return the most recent sample within a lookback
//!   window (default 5 minutes);
//! * range lookups return samples in `(t - range, t]`.
//!
//! The PromQL engine in `dio-promql` evaluates against
//! [`MetricStore`] through these two lookups.

pub mod chunk;
pub mod compress;
pub mod durable;
pub mod generator;
pub mod labels;
pub mod matchers;
pub mod page_cache;
pub mod sample;
pub mod series;
pub mod snapshot;
pub mod storage;
pub mod wal;

pub use chunk::{Chunk, ChunkError, DecodedChunk, CHUNK_SIZE};
pub use compress::CodecError;
pub use durable::{DurableError, DurableStore, RecoveryReport};
pub use generator::{SeriesShape, SeriesSpec, SynthConfig, Synthesizer};
pub use labels::Labels;
pub use matchers::{MatchOp, Matcher};
pub use page_cache::{PageCache, PageCacheStats, DEFAULT_PAGE_CACHE_BYTES};
pub use sample::Sample;
pub use series::{Series, SeriesCols};
pub use snapshot::{fsck_snapshot, write_snapshot, FsckReport, SNAPSHOT_VERSION};
pub use storage::MetricStore;
pub use wal::{Wal, WalRecord, WalRecovery};

/// Milliseconds-since-epoch timestamp type used across the stack.
pub type TimestampMs = i64;

/// Default Prometheus lookback window for instant queries: 5 minutes.
pub const DEFAULT_LOOKBACK_MS: i64 = 5 * 60 * 1000;

//! Gorilla XOR float compression.
//!
//! Layout (bit stream, MSB-first):
//!
//! ```text
//! first value    64 raw bits
//! then per sample, xor = bits(prev) ^ bits(curr):
//!   '0'                            xor == 0 (repeat)
//!   '10' + meaningful bits         xor fits the previous window
//!   '11' + 6b leading + 6b len-1 + meaningful bits
//! ```
//!
//! The "window" is the span of non-zero bits (leading-zero count plus
//! significant length); consecutive samples of a slowly moving gauge
//! tend to reuse it, so the two-bit `'10'` prefix amortises the window
//! header away. Values round-trip bit-for-bit, which preserves `NaN`
//! payloads and signed zeros — required for byte-identical differential
//! testing against the interpreter.

use super::{BitReader, BitWriter, CodecError};

/// Encode a value column.
pub fn encode_values(vals: &[f64], w: &mut BitWriter) {
    if vals.is_empty() {
        return;
    }
    let mut prev = vals[0].to_bits();
    w.push_bits(prev, 64);
    // Sentinel forcing the first non-zero xor to emit a fresh window.
    let mut lead: u32 = 64;
    let mut sig: u32 = 0;
    for &v in &vals[1..] {
        let bits = v.to_bits();
        let xor = prev ^ bits;
        prev = bits;
        if xor == 0 {
            w.push_bit(false);
            continue;
        }
        w.push_bit(true);
        let l = xor.leading_zeros().min(31);
        let t = xor.trailing_zeros();
        let s = 64 - l - t;
        if l >= lead && l + s <= lead + sig {
            // Fits inside the previous window: reuse it.
            w.push_bit(false);
            w.push_bits(xor >> (64 - lead - sig), sig as u8);
        } else {
            w.push_bit(true);
            w.push_bits(l as u64, 6);
            w.push_bits((s - 1) as u64, 6);
            w.push_bits(xor >> t, s as u8);
            lead = l;
            sig = s;
        }
    }
}

/// Decode `count` values; truncation yields a [`CodecError`].
pub fn decode_values(r: &mut BitReader<'_>, count: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let fail = |out: &Vec<f64>| CodecError::UnexpectedEnd {
        decoded: out.len(),
        expected: count,
    };
    let mut prev = r.read_bits(64).ok_or_else(|| fail(&out))?;
    out.push(f64::from_bits(prev));
    let mut lead: u32 = 0;
    let mut sig: u32 = 0;
    while out.len() < count {
        if !r.read_bit().ok_or_else(|| fail(&out))? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit().ok_or_else(|| fail(&out))? {
            lead = r.read_bits(6).ok_or_else(|| fail(&out))? as u32;
            sig = r.read_bits(6).ok_or_else(|| fail(&out))? as u32 + 1;
            if lead + sig > 64 {
                // Bit-flipped window header: the shift below would
                // underflow. Encoders never emit this.
                return Err(CodecError::BadControlBits { bit: r.bit_pos() });
            }
        } else if sig == 0 {
            // '10' before any window was established: damaged stream.
            return Err(CodecError::BadControlBits { bit: r.bit_pos() });
        }
        let meaningful = r.read_bits(sig as u8).ok_or_else(|| fail(&out))?;
        let shift = 64 - lead - sig;
        prev ^= meaningful << shift;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: &[f64]) {
        let mut w = BitWriter::new();
        encode_values(vals, &mut w);
        let bytes = w.into_bytes();
        let got = decode_values(&mut BitReader::new(&bytes), vals.len()).expect("decode");
        assert_eq!(got.len(), vals.len());
        for (a, b) in got.iter().zip(vals) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} != {b}");
        }
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[0.0]);
        roundtrip(&[f64::NAN]);
    }

    #[test]
    fn constant_column_is_one_bit_per_sample() {
        let vals = vec![42.5; 500];
        let mut w = BitWriter::new();
        encode_values(&vals, &mut w);
        assert!(w.bit_len() < 64 + vals.len(), "bits = {}", w.bit_len());
        let bytes = w.into_bytes();
        let got = decode_values(&mut BitReader::new(&bytes), vals.len()).unwrap();
        assert_eq!(got, vals);
    }

    #[test]
    fn special_values_roundtrip_bitwise() {
        roundtrip(&[
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::EPSILON,
            1.0,
            -1.0,
        ]);
    }

    #[test]
    fn counter_like_sequence() {
        let vals: Vec<f64> = (0..300).map(|i| (i * 17) as f64).collect();
        roundtrip(&vals);
    }

    #[test]
    fn noisy_gauge() {
        // Deterministic pseudo-noise without rand.
        let vals: Vec<f64> = (0..300)
            .map(|i| ((i as f64 * 0.7).sin() * 100.0) + (i % 13) as f64 * 0.001)
            .collect();
        roundtrip(&vals);
    }

    #[test]
    fn truncated_stream_errors() {
        let vals: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut w = BitWriter::new();
        encode_values(&vals, &mut w);
        let bytes = w.into_bytes();
        let cut = &bytes[..bytes.len() / 3];
        let err = decode_values(&mut BitReader::new(cut), vals.len()).unwrap_err();
        match err {
            CodecError::UnexpectedEnd { expected, .. } => assert_eq!(expected, vals.len()),
            other => panic!("unexpected error {other:?}"),
        }
    }
}

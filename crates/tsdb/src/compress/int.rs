//! Delta-of-delta timestamp compression.
//!
//! Layout (bit stream, MSB-first):
//!
//! ```text
//! first timestamp   zigzag varint (7-bit groups, continuation bit)
//! first delta       zigzag varint
//! then per sample, the delta-of-delta (dod) in one of five classes:
//!   '0'                       dod == 0        (regular interval)
//!   '10'   + 7  bits          dod in [-63, 64]
//!   '110'  + 9  bits          dod in [-255, 256]
//!   '1110' + 12 bits          dod in [-2047, 2048]
//!   '1111' + 64 bits          anything else (raw zigzag)
//! ```
//!
//! The bounded classes store `dod + (range/2 - 1)` as an unsigned
//! field, mirroring the Prometheus/Gorilla layout. A metrics scrape at
//! a fixed interval costs one bit per sample after the header.

use super::{unzigzag, zigzag, BitReader, BitWriter, CodecError};

/// Append a zigzag varint to the bit stream.
fn push_varint(w: &mut BitWriter, v: i64) {
    let mut z = zigzag(v);
    loop {
        let group = z & 0x7F;
        z >>= 7;
        let more = z != 0;
        w.push_bit(more);
        w.push_bits(group, 7);
        if !more {
            break;
        }
    }
}

/// Read a zigzag varint; `None` on truncation.
fn read_varint(r: &mut BitReader<'_>) -> Option<i64> {
    let mut z: u64 = 0;
    let mut shift = 0u32;
    loop {
        let more = r.read_bit()?;
        let group = r.read_bits(7)?;
        z |= group.checked_shl(shift).unwrap_or(0);
        if !more {
            return Some(unzigzag(z));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Encode a sorted (strictly increasing) timestamp column.
pub fn encode_timestamps(ts: &[i64], w: &mut BitWriter) {
    if ts.is_empty() {
        return;
    }
    push_varint(w, ts[0]);
    if ts.len() == 1 {
        return;
    }
    let mut prev_delta = ts[1] - ts[0];
    push_varint(w, prev_delta);
    for win in ts[1..].windows(2) {
        let delta = win[1] - win[0];
        let dod = delta - prev_delta;
        prev_delta = delta;
        if dod == 0 {
            w.push_bit(false);
        } else if (-63..=64).contains(&dod) {
            w.push_bits(0b10, 2);
            w.push_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            w.push_bits(0b110, 3);
            w.push_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            w.push_bits(0b1110, 4);
            w.push_bits((dod + 2047) as u64, 12);
        } else {
            w.push_bits(0b1111, 4);
            w.push_bits(zigzag(dod), 64);
        }
    }
}

/// Decode `count` timestamps. The input is untrusted; truncation or
/// garbage control bits yield a [`CodecError`].
pub fn decode_timestamps(r: &mut BitReader<'_>, count: usize) -> Result<Vec<i64>, CodecError> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let fail = |out: &Vec<i64>| CodecError::UnexpectedEnd {
        decoded: out.len(),
        expected: count,
    };
    let first = read_varint(r).ok_or_else(|| fail(&out))?;
    out.push(first);
    if count == 1 {
        return Ok(out);
    }
    let mut delta = read_varint(r).ok_or_else(|| fail(&out))?;
    let second = first.checked_add(delta).ok_or(CodecError::TimestampOverflow)?;
    out.push(second);
    while out.len() < count {
        let dod = if !r.read_bit().ok_or_else(|| fail(&out))? {
            0
        } else if !r.read_bit().ok_or_else(|| fail(&out))? {
            let raw = r.read_bits(7).ok_or_else(|| fail(&out))? as i64;
            raw - 63
        } else if !r.read_bit().ok_or_else(|| fail(&out))? {
            let raw = r.read_bits(9).ok_or_else(|| fail(&out))? as i64;
            raw - 255
        } else if !r.read_bit().ok_or_else(|| fail(&out))? {
            let raw = r.read_bits(12).ok_or_else(|| fail(&out))? as i64;
            raw - 2047
        } else {
            let raw = r.read_bits(64).ok_or_else(|| fail(&out))?;
            unzigzag(raw)
        };
        delta = delta.checked_add(dod).ok_or(CodecError::TimestampOverflow)?;
        let last = *out.last().expect("non-empty");
        let ts = last.checked_add(delta).ok_or(CodecError::TimestampOverflow)?;
        out.push(ts);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ts: &[i64]) {
        let mut w = BitWriter::new();
        encode_timestamps(ts, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let got = decode_timestamps(&mut r, ts.len()).expect("decode");
        assert_eq!(got, ts);
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[-5_000]);
        roundtrip(&[i64::MAX / 2]);
    }

    #[test]
    fn regular_interval_is_one_bit_per_sample() {
        let ts: Vec<i64> = (0..256).map(|i| 1_700_000_000_000 + i * 15_000).collect();
        let mut w = BitWriter::new();
        encode_timestamps(&ts, &mut w);
        // Header (two varints) plus ~1 bit per remaining sample.
        assert!(w.bit_len() < 128 + ts.len(), "bits = {}", w.bit_len());
        let bytes = w.into_bytes();
        let got = decode_timestamps(&mut BitReader::new(&bytes), ts.len()).unwrap();
        assert_eq!(got, ts);
    }

    #[test]
    fn jittered_and_irregular() {
        let ts = vec![0, 10, 25, 26, 1000, 1001, 500_000, 500_001, 600_000];
        roundtrip(&ts);
        // Every dod class including the raw 64-bit escape.
        let ts = vec![0, 1, 2, 70, 80, 400, 500, 3_000, 4_000, 5_000_000_000];
        roundtrip(&ts);
    }

    #[test]
    fn negative_timestamps() {
        roundtrip(&[-10_000, -5_000, -1, 0, 3]);
    }

    #[test]
    fn truncated_stream_errors() {
        let ts: Vec<i64> = (0..100).map(|i| i * 1_000).collect();
        let mut w = BitWriter::new();
        encode_timestamps(&ts, &mut w);
        let bytes = w.into_bytes();
        let cut = &bytes[..bytes.len() / 2];
        let err = decode_timestamps(&mut BitReader::new(cut), ts.len()).unwrap_err();
        match err {
            CodecError::UnexpectedEnd { expected, .. } => assert_eq!(expected, ts.len()),
            other => panic!("unexpected error {other:?}"),
        }
    }
}

//! Bit-level compression codecs for sealed chunks.
//!
//! Two column codecs in the Gorilla tradition (Pelkonen et al., VLDB
//! '15), as popularised by Prometheus TSDB and the tachyon/T0 storage
//! engines:
//!
//! * [`int`] — delta-of-delta timestamp compression: regular scrape
//!   intervals collapse to one bit per sample;
//! * [`float`] — XOR float compression: slowly moving values share
//!   exponent and mantissa prefixes, so each sample costs a few
//!   meaningful mantissa bits instead of 64.
//!
//! Both codecs are exact (bit-for-bit round trip, including `NaN`
//! payloads and `±Inf`) and both decoders treat their input as
//! untrusted: damaged or truncated streams surface a structured
//! [`CodecError`], never a panic. Chunk-level CRC framing (see
//! [`crate::chunk`]) catches damage first in practice; the codec
//! errors are the second line of defence.

pub mod float;
pub mod int;

/// Structured decode failure. Encoding is infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the declared sample count was decoded.
    UnexpectedEnd {
        /// Samples decoded before the stream ran dry.
        decoded: usize,
        /// Samples the caller asked for.
        expected: usize,
    },
    /// A delta-of-delta control prefix was not a valid class marker.
    BadControlBits {
        /// Bit offset of the bad prefix.
        bit: usize,
    },
    /// A decoded timestamp delta overflowed `i64` arithmetic.
    TimestampOverflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd { decoded, expected } => write!(
                f,
                "bitstream ended after {decoded} of {expected} samples"
            ),
            CodecError::BadControlBits { bit } => {
                write!(f, "invalid control bits at bit offset {bit}")
            }
            CodecError::TimestampOverflow => write!(f, "timestamp delta overflowed i64"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only bit writer (MSB-first within each byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 = byte boundary).
    used: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append one bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 0x80 >> self.used;
        }
        self.used = (self.used + 1) % 8;
    }

    /// Append the low `n` bits of `value`, most significant first.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finish, returning the padded byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bit reader over an untrusted byte slice (MSB-first).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Current bit offset (for error reporting).
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Read one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `n` bits into the low bits of a `u64`; `None` if the
    /// stream ends first.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        for _ in 0..n {
            out = (out << 1) | self.read_bit()? as u64;
        }
        Some(out)
    }
}

/// ZigZag-encode a signed value so small magnitudes use few bits.
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(0b1011, 4);
        w.push_bits(u64::MAX, 64);
        w.push_bits(0, 3);
        let bits = w.bit_len();
        assert_eq!(bits, 1 + 4 + 64 + 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(3), Some(0));
    }

    #[test]
    fn reader_ends_cleanly() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(BitReader::new(&[]).read_bits(1), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}

//! Write-ahead log for the metric store.
//!
//! Each appended sample is one checksummed frame (see
//! `dio_faults::framing`) holding a JSON [`WalRecord`]. The durability
//! contract is ack-on-`Ok`: a caller that saw `Ok` from
//! [`Wal::append`] holds a fully framed record on the medium, so
//! recovery after a crash at *any* byte offset either replays it or —
//! when the crash landed mid-frame — cleanly truncates an unacked tail.
//! It never invents or silently drops an acknowledged write.

use crate::labels::Labels;
use crate::sample::Sample;
use dio_faults::{decode_all, encode_record, Medium};
use serde::{Deserialize, Serialize};

/// One logged append: the series identity and the sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Full label set of the series appended to.
    pub labels: Labels,
    /// The appended sample.
    pub sample: Sample,
}

/// What a WAL recovery scan found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalRecovery {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Frames quarantined for checksum/framing damage.
    pub corrupt_frames: usize,
    /// Frames that passed their checksum but did not parse as a
    /// [`WalRecord`] (format drift; quarantined, never fatal).
    pub unparsable: usize,
    /// The log ended mid-frame — a torn final write of an unacked
    /// record. Clean truncation, nothing acknowledged was lost.
    pub truncated_tail: bool,
}

impl WalRecovery {
    /// True when every byte of the log decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.corrupt_frames == 0 && self.unparsable == 0 && !self.truncated_tail
    }
}

/// A write-ahead log over any [`Medium`].
#[derive(Debug)]
pub struct Wal<M> {
    medium: M,
    appended: usize,
}

impl<M: Medium> Wal<M> {
    /// Start logging onto `medium` (appending after existing content).
    pub fn new(medium: M) -> Self {
        Wal {
            medium,
            appended: 0,
        }
    }

    /// Append one record. `Ok` means the full frame reached the medium:
    /// the write is acknowledged and recovery will replay it. On `Err`
    /// nothing is acknowledged (the medium may hold a torn fragment,
    /// which recovery quarantines).
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let payload = serde_json::to_string(record).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })?;
        self.medium.append(&encode_record(payload.as_bytes()))?;
        self.appended += 1;
        Ok(())
    }

    /// Records acknowledged through this handle.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Discard the log (after a checkpoint has captured its contents).
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.medium.truncate()
    }

    /// Bytes currently on the medium.
    pub fn len(&self) -> usize {
        self.medium.len()
    }

    /// True when the medium holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.medium.is_empty()
    }

    /// The underlying medium.
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Unwrap into the underlying medium.
    pub fn into_medium(self) -> M {
        self.medium
    }

    /// Read and scan the medium's current contents.
    pub fn recover_from_medium(&mut self) -> std::io::Result<WalRecovery> {
        let bytes = self.medium.load()?;
        Ok(recover(&bytes))
    }
}

/// Scan raw WAL bytes into records, quarantining damage. Never panics.
pub fn recover(bytes: &[u8]) -> WalRecovery {
    let scan = decode_all(bytes);
    let mut out = WalRecovery {
        corrupt_frames: scan.corrupt_frames(),
        truncated_tail: scan.truncated_tail,
        ..WalRecovery::default()
    };
    for payload in &scan.records {
        match std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str::<WalRecord>(s).ok())
        {
            Some(rec) => out.records.push(rec),
            None => out.unparsable += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NAME_LABEL;
    use dio_faults::{ChaosConfig, ChaosMedium, Injector, MemMedium, FRAME_HEADER_LEN};

    fn record(i: usize) -> WalRecord {
        WalRecord {
            labels: Labels::from_pairs([
                (NAME_LABEL, "auth_req"),
                ("instance", &format!("amf-{}", i % 3)),
            ]),
            sample: Sample::new(1_000 * (i as i64 + 1), i as f64 * 0.5),
        }
    }

    #[test]
    fn roundtrips_records() {
        let mut wal = Wal::new(MemMedium::new());
        let recs: Vec<WalRecord> = (0..5).map(record).collect();
        for r in &recs {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.appended(), 5);
        let rec = recover(wal.medium().bytes());
        assert!(rec.is_clean());
        assert_eq!(rec.records, recs);
    }

    #[test]
    fn crash_at_every_byte_offset_never_loses_an_acked_write() {
        // The acceptance-criterion test: kill the writer at every byte
        // offset of the log, recover, and check that exactly the
        // prefix-closed set of fully framed (i.e. acknowledged) records
        // comes back — no corruption surfaced, no invented records.
        let mut wal = Wal::new(MemMedium::new());
        let recs: Vec<WalRecord> = (0..4).map(record).collect();
        let mut boundaries = vec![];
        for r in &recs {
            wal.append(r).unwrap();
            boundaries.push(wal.len());
        }
        let bytes = wal.into_medium().into_bytes();
        for cut in 0..=bytes.len() {
            let rec = recover(&bytes[..cut]);
            let acked = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(rec.records.len(), acked, "cut at {cut}");
            assert_eq!(rec.records, recs[..acked], "cut at {cut}");
            assert_eq!(rec.corrupt_frames, 0, "cut at {cut} surfaced corruption");
            assert_eq!(rec.unparsable, 0, "cut at {cut}");
            let at_boundary = cut == 0 || boundaries.contains(&cut);
            assert_eq!(rec.truncated_tail, !at_boundary, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_quarantines_one_record_keeps_the_rest() {
        let mut wal = Wal::new(MemMedium::new());
        let recs: Vec<WalRecord> = (0..3).map(record).collect();
        for r in &recs {
            wal.append(r).unwrap();
        }
        let mut bytes = wal.into_medium().into_bytes();
        // Flip a payload bit inside the second frame.
        let first_len = {
            let scan = dio_faults::decode_all(&bytes);
            FRAME_HEADER_LEN + scan.records[0].len()
        };
        bytes[first_len + FRAME_HEADER_LEN + 2] ^= 0x08;
        let rec = recover(&bytes);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0], recs[0]);
        assert_eq!(rec.records[1], recs[2]);
        assert_eq!(rec.corrupt_frames, 1);
    }

    #[test]
    fn torn_write_then_retry_recovers_the_retried_record() {
        // A chaotic medium tears one append (no ack); the caller
        // retries. Recovery must quarantine the fragment and keep both
        // acknowledged records.
        let torn_only = Injector::new(ChaosConfig {
            seed: 3,
            fault_probability: 1.0,
            weights: [0, 0, 1, 0], // TruncatedRead ⇒ torn writes
            latency_spike_micros: 0,
        });
        let mut medium = ChaosMedium::new(MemMedium::new(), torn_only);
        let mut wal = Wal::new(MemMedium::new());
        wal.append(&record(0)).unwrap();
        medium.append(wal.medium().bytes()).unwrap_err(); // torn, unacked
        // Disable chaos for the retry + second record.
        let (inner, _) = medium.into_parts();
        let mut wal2 = Wal::new(inner);
        wal2.append(&record(0)).unwrap();
        wal2.append(&record(1)).unwrap();
        let rec = recover(wal2.medium().bytes());
        assert_eq!(rec.records, vec![record(0), record(1)]);
        assert!(rec.corrupt_frames <= 1);
        assert!(!rec.truncated_tail);
    }

    #[test]
    fn valid_frame_with_foreign_payload_is_unparsable_not_fatal() {
        let mut m = MemMedium::new();
        m.append(&dio_faults::encode_record(b"{\"not\":\"a wal record\"}"))
            .unwrap();
        let mut wal = Wal::new(m);
        wal.append(&record(1)).unwrap();
        let rec = recover(wal.medium().bytes());
        assert_eq!(rec.unparsable, 1);
        assert_eq!(rec.records, vec![record(1)]);
    }
}

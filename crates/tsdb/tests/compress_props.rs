//! Property tests for the chunk codecs: every value class round-trips
//! bit-exactly, and damaged bytes surface as structured [`ChunkError`]s
//! rather than panics.
//!
//! The vendored proptest stand-in draws `f64`s only from ±1e6, so the
//! special-float cases (NaN payloads, infinities, subnormals) are built
//! explicitly via [`f64::from_bits`] from generated `u64` seeds.

use dio_tsdb::{Chunk, ChunkError, Sample, CHUNK_SIZE};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Seal `(ts, val)` pairs and decode them back, asserting bit-exact
/// equality of both columns.
fn assert_roundtrip(ts: &[i64], vals: &[f64]) -> Result<(), TestCaseError> {
    let samples: Vec<Sample> = ts
        .iter()
        .zip(vals)
        .map(|(&t, &v)| Sample::new(t, v))
        .collect();
    let chunk = Chunk::seal(&samples);
    let decoded = match chunk.decode() {
        Ok(d) => d,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
    };
    prop_assert_eq!(&decoded.ts, &ts.to_vec());
    prop_assert_eq!(decoded.vals.len(), vals.len());
    for (i, (got, want)) in decoded.vals.iter().zip(vals).enumerate() {
        prop_assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "value {} not bit-exact: {} vs {}",
            i,
            got,
            want
        );
    }
    // The framed wire form must survive the same trip.
    let back = match Chunk::from_bytes(&chunk.to_bytes()) {
        Ok(c) => c,
        Err(e) => return Err(TestCaseError::fail(format!("from_bytes failed: {e}"))),
    };
    prop_assert_eq!(back.len(), samples.len());
    prop_assert_eq!(back.min_ts(), ts[0]);
    prop_assert_eq!(back.max_ts(), *ts.last().unwrap());
    Ok(())
}

/// Strictly increasing timestamps decoded from a seed: a base offset
/// plus per-step deltas spanning 1ms .. ~18 minutes.
fn timestamps_from(seed: u64, n: usize) -> Vec<i64> {
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let mut t = (next() % 1_000_000_000) as i64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(t);
        t += 1 + (next() % 1_100_000) as i64;
    }
    out
}

/// Decode a special float from a seed: cycles through NaN payloads,
/// infinities, signed zeros, subnormals, and raw bit patterns.
fn special_float(seed: u64) -> f64 {
    match seed % 7 {
        0 => f64::from_bits(0x7ff8_0000_0000_0000 | (seed >> 12)), // quiet NaN, payload
        1 => f64::from_bits(0x7ff0_0000_0000_0001 | (seed >> 12)), // signalling-ish NaN
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => f64::from_bits(seed >> 12),                           // subnormal territory
        5 => -0.0,
        _ => f64::from_bits(seed),                                 // anything at all
    }
}

proptest! {
    /// NaNs (with payloads), infinities, subnormals, and arbitrary bit
    /// patterns all round-trip bit-exactly through the XOR codec.
    #[test]
    fn special_floats_roundtrip(seed in any::<u64>(), n in 1usize..CHUNK_SIZE + 1) {
        let ts = timestamps_from(seed, n);
        let vals: Vec<f64> = (0..n as u64)
            .map(|i| special_float(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9))))
            .collect();
        assert_roundtrip(&ts, &vals)?;
    }

    /// Constant series (including constant NaN and constant ±Inf) are
    /// the XOR codec's best case and must stay bit-exact.
    #[test]
    fn constant_series_roundtrip(seed in any::<u64>(), n in 2usize..CHUNK_SIZE + 1) {
        let v = special_float(seed);
        let ts = timestamps_from(seed, n);
        let vals = vec![v; n];
        assert_roundtrip(&ts, &vals)?;
        // A constant series at a regular scrape interval is the best
        // case for both codecs and must compress far below raw.
        let samples: Vec<Sample> = (0..n)
            .map(|i| Sample::new(ts[0] + i as i64 * 15_000, 42.5))
            .collect();
        let chunk = Chunk::seal(&samples);
        prop_assert!(
            chunk.compressed_bytes() < n * 16 / 4,
            "constant series compressed to {} bytes for {} samples",
            chunk.compressed_bytes(),
            n
        );
    }

    /// Monotone timestamps whose deltas overflow every small bit-width
    /// class (hour-scale, day-scale, and near-i64 jumps) still
    /// round-trip exactly.
    #[test]
    fn monotone_overflow_timestamps_roundtrip(seed in any::<u64>()) {
        let mut ts: Vec<i64> = vec![
            i64::MIN / 2,
            i64::MIN / 2 + 1,
            -1,
            0,
            1,
            1 << 20,
            1 << 40,
            (1 << 40) + 3_600_000,
            i64::MAX / 2,
            i64::MAX / 2 + (seed % 1_000_000) as i64 + 1,
        ];
        ts.sort_unstable();
        ts.dedup();
        let vals: Vec<f64> = (0..ts.len()).map(|i| i as f64 * 0.5).collect();
        assert_roundtrip(&ts, &vals)?;
    }

    /// Truncating a framed chunk at any point yields a structured
    /// error, never a panic or a silent wrong decode.
    #[test]
    fn truncation_is_a_structured_error(seed in any::<u64>(), n in 1usize..128) {
        let ts = timestamps_from(seed, n);
        let vals: Vec<f64> = (0..n as u64).map(|i| special_float(seed ^ i)).collect();
        let samples: Vec<Sample> = ts.iter().zip(&vals).map(|(&t, &v)| Sample::new(t, v)).collect();
        let bytes = Chunk::seal(&samples).to_bytes();
        let cut = (seed % bytes.len() as u64) as usize;
        match Chunk::from_bytes(&bytes[..cut]) {
            Ok(_) => return Err(TestCaseError::fail(format!("truncation at {cut} accepted"))),
            Err(ChunkError::Frame { .. }) | Err(ChunkError::BadFrameCount(_)) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("cut {cut}: unexpected {other:?}")))
            }
        }
    }

    /// Flipping any single bit of a framed chunk is either caught by
    /// the CRC frame or the header/codec validation — never accepted,
    /// never a panic.
    #[test]
    fn bit_flips_are_structured_errors(seed in any::<u64>(), n in 1usize..128) {
        let ts = timestamps_from(seed, n);
        let vals: Vec<f64> = (0..n as u64).map(|i| special_float(seed ^ (i << 7))).collect();
        let samples: Vec<Sample> = ts.iter().zip(&vals).map(|(&t, &v)| Sample::new(t, v)).collect();
        let bytes = Chunk::seal(&samples).to_bytes();
        let bit = (seed % (bytes.len() as u64 * 8)) as usize;
        let mut bad = bytes.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        if Chunk::from_bytes(&bad).is_ok() {
            return Err(TestCaseError::fail(format!(
                "bit flip at {bit} silently accepted ({} byte frame)",
                bytes.len()
            )));
        }
    }

    /// Raw garbage bytes of any length decode to a structured error.
    #[test]
    fn garbage_bytes_never_panic(seed in any::<u64>(), n in 0usize..256) {
        let mut state = seed;
        let garbage: Vec<u8> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        prop_assert!(Chunk::from_bytes(&garbage).is_err());
    }
}

//! The self-observation loop: the copilot answering questions about
//! its own telemetry through its own pipeline.
//!
//! The loop closes four subsystems into a circle:
//!
//! 1. an instrumented copilot runs a slice of the operator benchmark
//!    under fault injection, filling its [`dio_obs::Registry`];
//! 2. [`dio_obs::ObsScraper`] exports the registry as Prometheus text,
//!    parses it back (every scrape is an exposition round-trip proof),
//!    and appends the samples to a fresh [`dio_tsdb::MetricStore`];
//! 3. the scraper also derives a [`dio_catalog::Catalog`] describing
//!    each exported instrument, which becomes the domain DB of a
//!    *second* copilot pointed at the scraped store;
//! 4. that copilot answers natural-language questions about the first
//!    one's health — "how many repair rounds did the copilot run?" —
//!    via the standard retrieve → generate → execute path, and the
//!    answers are checked against the registry's ground truth.

use dio_benchmark::eval::numeric_match;
use dio_benchmark::{evaluate_observed, EvalReport, WorldConfig};
use dio_catalog::DomainDb;
use dio_copilot::{CopilotBuilder, CopilotConfig};
use dio_llm::{
    FaultConfig, FaultyModel, FewShotExample, ModelProfile, SimulatedModel,
};
use dio_obs::{parse_exposition, to_prometheus, ObsHub, ObsScraper};
use dio_tsdb::MetricStore;

use crate::Experiment;

/// Fault schedule seed for the observed run.
pub const SELF_OBS_FAULT_SEED: u64 = 0x0b5_e7e;
/// Scrape interval in store-time milliseconds.
pub const SCRAPE_STEP_MS: i64 = 60_000;

/// One self-directed question and its verification.
#[derive(Debug, Clone)]
pub struct SelfQa {
    /// The natural-language question asked of the meta-copilot.
    pub question: String,
    /// The instrument holding the ground truth.
    pub metric: String,
    /// Ground truth from the registry snapshot.
    pub expected: f64,
    /// The meta-copilot's numeric answer, if any.
    pub answered: Option<f64>,
    /// The query the meta-copilot generated.
    pub query: String,
    /// Whether the answer matched the ground truth numerically.
    pub correct: bool,
}

/// Everything the self-observation run produced.
#[derive(Debug)]
pub struct SelfObserveOutcome {
    /// Per-chunk evaluation reports from the observed benchmark run.
    pub chunk_reports: Vec<EvalReport>,
    /// Benchmark questions evaluated in total.
    pub questions_run: usize,
    /// Scrapes taken (one per chunk).
    pub scrapes: usize,
    /// Samples appended to the observability store across all scrapes.
    pub samples_appended: usize,
    /// The final Prometheus exposition of the copilot's registry.
    pub exposition: String,
    /// Instruments described in the scraper-derived catalog.
    pub catalog_len: usize,
    /// Exported sample names missing a catalog description (must be
    /// empty — every instrument gets documentation).
    pub undocumented: Vec<String>,
    /// The self-directed question/answer checks.
    pub qa: Vec<SelfQa>,
    /// Final registry snapshot (ground truth for the QA checks, and the
    /// source of stage-latency percentiles for the JSON artifact).
    pub final_snapshot: dio_obs::Snapshot,
}

impl SelfObserveOutcome {
    /// Overall EX over the observed benchmark run.
    pub fn ex_percent(&self) -> f64 {
        let total: usize = self.chunk_reports.iter().map(|r| r.total).sum();
        let correct: usize = self.chunk_reports.iter().map(|r| r.correct).sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 * 100.0 / total as f64
        }
    }

    /// How many self-directed questions were answered correctly.
    pub fn qa_correct(&self) -> usize {
        self.qa.iter().filter(|q| q.correct).count()
    }
}

/// Few-shot exemplars in the self-telemetry domain.
fn self_exemplars() -> Vec<FewShotExample> {
    vec![
        FewShotExample {
            question: "How many questions was the copilot asked in total?".into(),
            metrics: vec!["dio_copilot_asks_total".into()],
            promql: "sum(dio_copilot_asks_total)".into(),
        },
        FewShotExample {
            question: "How many answers came from the degraded fallback?".into(),
            metrics: vec!["dio_copilot_answers_total".into()],
            promql: "sum(dio_copilot_answers_total{degradation=\"degraded\"})".into(),
        },
        FewShotExample {
            question: "How many prompt tokens were sent to the foundation model?".into(),
            metrics: vec!["dio_llm_prompt_tokens_total".into()],
            promql: "sum(dio_llm_prompt_tokens_total)".into(),
        },
    ]
}

/// Run the full self-observation loop: an instrumented, fault-injected
/// benchmark run, periodic scrapes into a TSDB, catalog derivation, and
/// self-directed question answering verified against the registry.
pub fn run_self_observation(n_questions: usize, fault_p: f64) -> SelfObserveOutcome {
    // Phase 1: an instrumented copilot runs the benchmark under fault
    // injection, all telemetry flowing into one shared hub.
    let exp = Experiment::with_config(WorldConfig::small(), n_questions);
    let hub = ObsHub::new();
    let model = Box::new(
        FaultyModel::new(
            SimulatedModel::new(ModelProfile::gpt4_sim()),
            FaultConfig::with_probability(SELF_OBS_FAULT_SEED, fault_p),
        )
        .with_registry(hub.registry().clone()),
    );
    let mut dio = CopilotBuilder::new(exp.world.domain_db(), exp.world.store.clone())
        .model(model)
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(exp.exemplars.clone())
        .obs(hub.clone())
        .build();

    // Phase 2: evaluate in chunks, scraping the registry between chunks
    // so the observability store accumulates real history.
    let scraper = ObsScraper::new();
    let mut obs_store = MetricStore::new();
    let mut chunk_reports = Vec::new();
    let mut samples_appended = 0usize;
    let mut scrapes = 0usize;
    for chunk in exp.questions.chunks(10) {
        let r = evaluate_observed(&mut dio, chunk, exp.world.eval_ts, hub.registry());
        chunk_reports.push(r);
        scrapes += 1;
        let ts = scrapes as i64 * SCRAPE_STEP_MS;
        let stats = scraper
            .scrape(hub.registry(), ts, &mut obs_store)
            .expect("scrape must round-trip through the exposition parser");
        samples_appended += stats.appended;
    }
    let last_ts = scrapes as i64 * SCRAPE_STEP_MS;

    // Phase 3: exposition round-trip + catalog coverage.
    let exposition = to_prometheus(&hub.registry().snapshot());
    let families =
        parse_exposition(&exposition).expect("exporter output must be valid Prometheus text");
    let catalog = scraper.catalog(hub.registry());
    let documented: std::collections::BTreeSet<&str> =
        catalog.metrics.iter().map(|m| m.name.as_str()).collect();
    let mut undocumented = Vec::new();
    for family in &families {
        for sample in &family.samples {
            if !documented.contains(sample.name.as_str()) {
                undocumented.push(sample.name.clone());
            }
        }
    }
    undocumented.sort();
    undocumented.dedup();
    let catalog_len = catalog.metrics.len();

    // Phase 4: a second copilot over the scraped telemetry answers
    // questions about the first one, checked against the registry.
    let snap = hub.registry().snapshot();
    let cases: Vec<(String, String)> = vec![
        (
            "How many repair rounds did the copilot run?".into(),
            dio_copilot::obs::REPAIRS_NAME.into(),
        ),
        (
            "How many completion calls did the copilot issue to the foundation model?".into(),
            "dio_llm_model_calls_total".into(),
        ),
        (
            "How many faults did the injection harness plant into model completions?".into(),
            "dio_llm_faults_injected_total".into(),
        ),
        (
            "How many retries of transient foundation model failures were there?".into(),
            dio_copilot::obs::RETRIES_NAME.into(),
        ),
        (
            "How many benchmark questions were evaluated?".into(),
            dio_benchmark::eval::QUESTIONS_NAME.into(),
        ),
    ];
    let mut meta = CopilotBuilder::new(DomainDb::from_catalog(catalog), obs_store)
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(self_exemplars())
        .build();
    let qa = cases
        .into_iter()
        .map(|(question, metric)| {
            let expected = snap.total(&metric);
            let r = meta.ask(&question, last_ts);
            let answered = r.numeric_answer;
            let correct = answered.map(|v| numeric_match(v, expected)).unwrap_or(false);
            SelfQa {
                question,
                metric,
                expected,
                answered,
                query: r.query,
                correct,
            }
        })
        .collect();

    SelfObserveOutcome {
        chunk_reports,
        questions_run: exp.questions.len(),
        scrapes,
        samples_appended,
        exposition,
        catalog_len,
        undocumented,
        qa,
        final_snapshot: snap,
    }
}

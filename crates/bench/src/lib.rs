//! # dio-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md's experiment index) plus Criterion microbenches.
//!
//! Binaries:
//!
//! * `table_3a` — end-to-end EX: DIO copilot vs DIN-SQL vs bare model;
//! * `table_3b` — foundation-model sweep inside DIO;
//! * `inference_cost` — §4.2.5 mean cents/query;
//! * `figure_1` — side-by-side bare-chat vs copilot responses;
//! * `figure_2_pipeline` — per-stage latency through the architecture;
//! * `ablation_*` — context size, few-shot count, retrieval quality,
//!   feedback loop, embedding model.
//!
//! This library crate holds the shared experiment plumbing, the JSON
//! artifact writer ([`artifact`]), and the self-observation loop
//! ([`selfobs`]).

pub mod artifact;
pub mod selfobs;

use dio_baselines::{sample_schema, DinSqlBaseline, DirectModelBaseline};
use dio_benchmark::{fewshot_exemplars, generate_benchmark, BenchmarkQuestion, OperatorWorld, WorldConfig};
use dio_copilot::{CopilotBuilder, CopilotConfig, DioCopilot};
use dio_llm::{FewShotExample, FoundationModel, ModelProfile, SimulatedModel};

/// Number of metric names the baselines see (paper: "approximately
/// 600 … selected in a uniformly random manner").
pub const BASELINE_SCHEMA_SIZE: usize = 600;
/// Schema sampling seed.
pub const SCHEMA_SEED: u64 = 0x5c83_a001;
/// Benchmark generation seed.
pub const BENCHMARK_SEED: u64 = 0xbe9c_4a11;
/// Benchmark size (the paper's 200).
pub const BENCHMARK_SIZE: usize = 200;

/// The shared experiment setup: world + questions + exemplars.
pub struct Experiment {
    /// The operator world.
    pub world: OperatorWorld,
    /// The 200 benchmark questions.
    pub questions: Vec<BenchmarkQuestion>,
    /// The 20 few-shot exemplars.
    pub exemplars: Vec<FewShotExample>,
}

impl Experiment {
    /// Build the full-scale experiment (3000+ metrics, 200 questions).
    pub fn standard() -> Self {
        Self::with_config(WorldConfig::default(), BENCHMARK_SIZE)
    }

    /// Build with a custom world/benchmark size (used by fast tests).
    pub fn with_config(config: WorldConfig, n_questions: usize) -> Self {
        let world = OperatorWorld::build(config);
        let questions = generate_benchmark(&world, n_questions, BENCHMARK_SEED);
        let exemplars = fewshot_exemplars(&world.catalog);
        Experiment {
            world,
            questions,
            exemplars,
        }
    }

    /// A DIO copilot over this world with the given model.
    pub fn copilot(&self, model: Box<dyn FoundationModel>) -> DioCopilot {
        CopilotBuilder::new(self.world.domain_db(), self.world.store.clone())
            .model(model)
            .exemplars(self.exemplars.clone())
            .build()
    }

    /// A DIO copilot with a custom configuration.
    pub fn copilot_with_config(
        &self,
        model: Box<dyn FoundationModel>,
        config: CopilotConfig,
    ) -> DioCopilot {
        CopilotBuilder::new(self.world.domain_db(), self.world.store.clone())
            .model(model)
            .config(config)
            .exemplars(self.exemplars.clone())
            .build()
    }

    /// The DIN-SQL baseline over this world.
    pub fn dinsql(&self, model: Box<dyn FoundationModel>) -> DinSqlBaseline {
        let schema = sample_schema(&self.world.domain_db(), BASELINE_SCHEMA_SIZE, SCHEMA_SEED);
        DinSqlBaseline::new(
            schema,
            self.exemplars.clone(),
            model,
            self.world.store.clone(),
        )
    }

    /// The bare-model baseline over this world.
    pub fn direct(&self, model: Box<dyn FoundationModel>) -> DirectModelBaseline {
        let schema = sample_schema(&self.world.domain_db(), BASELINE_SCHEMA_SIZE, SCHEMA_SEED);
        DirectModelBaseline::new(schema, model, self.world.store.clone())
    }

    /// The GPT-4 simulation.
    pub fn gpt4() -> Box<dyn FoundationModel> {
        Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
    }

    /// The GPT-3.5-turbo simulation.
    pub fn gpt35() -> Box<dyn FoundationModel> {
        Box::new(SimulatedModel::new(ModelProfile::gpt35_turbo_sim()))
    }

    /// The text-curie-001 simulation.
    pub fn curie() -> Box<dyn FoundationModel> {
        Box::new(SimulatedModel::new(ModelProfile::text_curie_sim()))
    }
}

//! **Ablation: network-specific embedding model** (§5.3). The paper
//! proposes that a telecom-tuned embedder would beat a generic one on
//! operator jargon; our embedder's domain lexicon is exactly that
//! lever, so we can measure it: domain-tuned vs generic embedder,
//! overall and on paraphrased questions specifically.
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_embedding
//! ```

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_copilot::CopilotConfig;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    println!("\nAblation — §5.3 network-specific embedding model\n");
    println!(
        "{:<22} | {:>6} | {:>12} | {:>12}",
        "embedder", "EX (%)", "plain EX (%)", "para EX (%)"
    );
    println!("{:-<22}-+--------+--------------+-------------", "");
    let mut artifact = BenchArtifact::new("ablation_embedding");
    for (label, domain) in [("telecom-tuned", true), ("generic", false)] {
        let mut dio = exp.copilot_with_config(
            Experiment::gpt4(),
            CopilotConfig {
                domain_embedder: domain,
                generate_dashboards: false,
                ..CopilotConfig::default()
            },
        );
        let r = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
        let (pc, pt, qc, qt) = r.plain_vs_paraphrase;
        println!(
            "{:<22} | {:>6.1} | {:>12.1} | {:>12.1}",
            label,
            r.ex_percent,
            pc as f64 * 100.0 / pt.max(1) as f64,
            qc as f64 * 100.0 / qt.max(1) as f64,
        );
        artifact.push(label, &r);
        artifact.set_stages(&dio.obs().registry().snapshot());
    }
    artifact.write();
}

//! `overload_drill` — deadline propagation, the brownout ladder, and
//! hedged shard reads under a sustained 3x-capacity overload burst.
//!
//! Phases:
//!
//! 1. **parity** — the standard benchmark slice through a healthy
//!    service with the brownout ladder armed: EX must match the
//!    sequential baseline (±1) and the ladder must never engage at
//!    normal load;
//! 2. **overload** — the same undersized service twice (brownout
//!    disabled, then enabled): a hammer loop keeps two workers and an
//!    8-deep queue saturated with p=0.2 model faults and one slow
//!    shard while every request carries a tight deadline. Gates:
//!    every ticket resolves, zero model calls past a lapsed deadline
//!    (trace-verified), and goodput with the ladder ≥ the
//!    binary-shedding baseline;
//! 3. **hedge** — a cluster with one slow primary serves a question
//!    slice after a warm-up: hedged reads must win at least once and
//!    the answers must match an unsharded copilot exactly.
//!
//! Flags: `--quick` (small world, 40 questions), `--seed=S`.
//!
//! Writes `results/BENCH_overload_drill.json`.

use dio_bench::Experiment;
use dio_benchmark::eval::numeric_match;
use dio_cluster::{Cluster, ClusterConfig};
use dio_llm::{FaultConfig, FaultyModel, FoundationModel, ModelProfile, SimulatedModel};
use dio_obs::{TraceRecord, TraceStatus};
use dio_sandbox::StoreResolver;
use dio_serve::{
    BrownoutConfig, QueryRequest, QueryService, ServeConfig, ServeOutcome, ShedReason,
    TenantPolicy,
};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The overload deadline is calibrated at runtime — `DEADLINE_MULT`
/// times the measured per-ask latency of the actual (faulty, sharded)
/// drill pipeline, floored at `DEADLINE_FLOOR`. The hammer keeps the
/// 8-deep/2-worker queue full, so a typical accepted request waits
/// ~4 service times before pickup (~5 end to end): a 3x-mean deadline
/// lets the early pickups answer while the saturated tail provably
/// lapses, at any world size or machine speed.
const DEADLINE_MULT: u32 = 3;
const DEADLINE_FLOOR: Duration = Duration::from_millis(40);
const PROBE_ASKS: usize = 8;
/// Injected (virtual, never slept) read latency on the slow node.
const SLOW_READ_MICROS: u64 = 50_000;
/// Model fault probability for the overload phase.
const FAULT_P: f64 = 0.2;
/// Scheduling grace for the `at_micros` deadline audit: the pipeline
/// checks the budget *before* stamping `model_call`, so a stamp can
/// land a context-switch after a check that passed just under the
/// wire. The event-order audit below has no such slack.
const AUDIT_GRACE_MICROS: u64 = 25_000;

fn flag_value(name: &str) -> Option<String> {
    std::env::args()
        .find_map(|a| a.strip_prefix(&format!("--{name}=")).map(str::to_string))
}

#[derive(Debug, Clone, Serialize)]
struct ParityResult {
    questions: usize,
    sequential_correct: usize,
    serve_correct: usize,
    ex_delta: i64,
    brownout_transitions: f64,
}

#[derive(Debug, Clone, Serialize)]
struct OverloadPass {
    pass: String,
    accepted: usize,
    refused_at_submit: usize,
    answered: usize,
    expired: usize,
    wall_seconds: f64,
    all_tickets_resolved: bool,
    final_brownout_level: String,
    brownout_transitions: f64,
    deadline_exceeded_traces: usize,
    /// `model_call` events recorded after a `deadline_exceeded` event
    /// on the same trace (event-order audit; must be 0).
    model_calls_after_lapse: usize,
    /// `model_call` events stamped later than the request budget plus
    /// scheduling grace (trace-clock audit; must be 0).
    model_calls_past_budget: usize,
    hedge_wins: u64,
    hedge_losses: u64,
    hedge_cancelled: u64,
}

#[derive(Debug, Clone, Serialize)]
struct HedgeResult {
    compared: usize,
    divergent: usize,
    wins: u64,
    losses: u64,
    cancelled: u64,
}

#[derive(Debug, Clone, Serialize)]
struct DrillArtifact {
    bench: String,
    quick: bool,
    seed: u64,
    parity: ParityResult,
    calibrated_deadline_micros: u64,
    overload: Vec<OverloadPass>,
    hedge: HedgeResult,
    goodput_gain_vs_baseline: i64,
}

/// Audit every finished trace: once a `deadline_exceeded` event is on
/// the trace no `model_call` may follow it, and no `model_call` stamp
/// may exceed the request budget (plus scheduling grace). Returns
/// `(after_lapse, past_budget, traces_with_lapse)` where the last
/// counts traces that finished as [`TraceStatus::DeadlineExceeded`]
/// (expired in the queue or aborted mid-pipeline).
fn audit_deadline_work(traces: &[TraceRecord], budget: Duration) -> (usize, usize, usize) {
    let limit = budget.as_micros() as u64 + AUDIT_GRACE_MICROS;
    let mut after_lapse = 0usize;
    let mut past_budget = 0usize;
    let mut lapsed_traces = 0usize;
    for t in traces.iter().filter(|t| t.finished) {
        if t.status == TraceStatus::DeadlineExceeded {
            lapsed_traces += 1;
        }
        let mut lapsed = false;
        for e in &t.events {
            match e.name.as_str() {
                "deadline_exceeded" => {
                    lapsed = true;
                }
                "model_call" => {
                    if lapsed {
                        after_lapse += 1;
                    }
                    let at: u64 = e
                        .attrs
                        .iter()
                        .find(|(k, _)| k == "at_micros")
                        .and_then(|(_, v)| v.parse().ok())
                        .unwrap_or(0);
                    if at > limit {
                        past_budget += 1;
                    }
                }
                _ => {}
            }
        }
    }
    (after_lapse, past_budget, lapsed_traces)
}

fn faulty_model(seed: u64) -> Box<dyn FoundationModel> {
    Box::new(FaultyModel::new(
        SimulatedModel::new(ModelProfile::gpt4_sim()),
        FaultConfig::with_probability(seed, FAULT_P),
    ))
}

/// One overload run: a hammer loop keeps the undersized service
/// saturated until `target` requests are accepted, every request on
/// the tight drill deadline, model faults at p=0.2, one slow shard.
fn overload_pass(
    exp: &Experiment,
    seed: u64,
    brownout: BrownoutConfig,
    deadline: Duration,
    pass: &str,
) -> OverloadPass {
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(3)));
    cluster.load_from(&exp.world.store).expect("cluster load");
    cluster.set_read_latency(0, SLOW_READ_MICROS);

    let mut prototype = exp.copilot(faulty_model(seed));
    prototype.attach_store_resolver(cluster.clone() as Arc<dyn StoreResolver>);
    let model_seed = AtomicU64::new(seed.wrapping_mul(0x9e37_79b9));
    let service = QueryService::spawn(
        &prototype,
        move || faulty_model(model_seed.fetch_add(0x1234_5677, Ordering::Relaxed)),
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            default_deadline: deadline,
            tenant: TenantPolicy::unlimited(),
            brownout,
            ..ServeConfig::default()
        },
    );

    let target = 3 * service.config().queue_depth * service.config().workers;
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(target);
    let mut refused = 0usize;
    let mut cursor = 0usize;
    while tickets.len() < target {
        let q = &exp.questions[cursor % exp.questions.len()].text;
        match service.submit(QueryRequest::new(
            format!("tenant-{}", cursor % 4),
            q,
            exp.world.eval_ts,
        )) {
            Ok(t) => {
                tickets.push(t);
                cursor += 1;
            }
            Err(_) => refused += 1,
        }
    }
    let accepted = tickets.len();
    let mut answered = 0usize;
    let mut expired = 0usize;
    let mut resolved = 0usize;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Answered(_) => {
                answered += 1;
                resolved += 1;
            }
            ServeOutcome::Shed(s) => {
                assert_ne!(
                    s.reason,
                    ShedReason::WorkerPanic,
                    "{pass}: a worker died serving the burst"
                );
                if s.reason == ShedReason::DeadlineExpired {
                    expired += 1;
                }
                resolved += 1;
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let snap = service.obs().registry().snapshot();
    let transitions = snap.total("dio_serve_brownout_transitions_total");
    let level = service.brownout_level().label().to_string();
    let traces = service.obs().tracer().recent(4 * (accepted + refused) + 64);
    let (after_lapse, past_budget, lapsed_traces) = audit_deadline_work(&traces, deadline);
    let (wins, losses, cancelled) = cluster.hedge_outcomes();
    service.shutdown();
    OverloadPass {
        pass: pass.to_string(),
        accepted,
        refused_at_submit: refused,
        answered,
        expired,
        wall_seconds: wall,
        all_tickets_resolved: resolved == accepted,
        final_brownout_level: level,
        brownout_transitions: transitions,
        deadline_exceeded_traces: lapsed_traces,
        model_calls_after_lapse: after_lapse,
        model_calls_past_budget: past_budget,
        hedge_wins: wins,
        hedge_losses: losses,
        hedge_cancelled: cancelled,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = flag_value("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xd3ad_11fe);

    eprintln!("building world ({})…", if quick { "quick" } else { "full" });
    let exp = if quick {
        Experiment::with_config(dio_benchmark::WorldConfig::small(), 40)
    } else {
        Experiment::standard()
    };
    let eval_ts = exp.world.eval_ts;
    let n = exp.questions.len();

    // ---- Phase 1: EX parity with the ladder armed ------------------
    eprintln!("phase 1: parity — sequential baseline ({n} questions)…");
    let mut sequential = exp.copilot(Experiment::gpt4());
    let mut seq_correct = 0usize;
    for q in &exp.questions {
        let r = sequential.ask(&q.text, eval_ts);
        if r.numeric_answer
            .map(|v| numeric_match(v, q.reference.numeric))
            .unwrap_or(false)
        {
            seq_correct += 1;
        }
    }
    eprintln!("phase 1: parity — serve pass (8 workers, ladder armed)…");
    let service = QueryService::spawn(
        &exp.copilot(Experiment::gpt4()),
        Experiment::gpt4,
        ServeConfig {
            workers: 8,
            // Headroom: the burst occupies at most a quarter of the
            // queue, so a healthy service never trips the ladder.
            queue_depth: 4 * n.max(16),
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = exp
        .questions
        .iter()
        .map(|q| {
            service
                .submit(QueryRequest::new("parity", &q.text, eval_ts))
                .expect("parity pass must admit")
        })
        .collect();
    let mut serve_correct = 0usize;
    for (t, q) in tickets.into_iter().zip(&exp.questions) {
        if let ServeOutcome::Answered(a) = t.wait() {
            if a.response
                .numeric_answer
                .map(|v| numeric_match(v, q.reference.numeric))
                .unwrap_or(false)
            {
                serve_correct += 1;
            }
        }
    }
    let parity_transitions = service
        .obs()
        .registry()
        .snapshot()
        .total("dio_serve_brownout_transitions_total");
    service.shutdown();
    let parity = ParityResult {
        questions: n,
        sequential_correct: seq_correct,
        serve_correct,
        ex_delta: serve_correct as i64 - seq_correct as i64,
        brownout_transitions: parity_transitions,
    };
    eprintln!(
        "  parity: sequential EX {seq_correct}/{n}, serve EX {serve_correct}/{n}, {} ladder transitions",
        parity_transitions
    );

    // ---- Phase 2: overload, binary shedding vs the ladder ----------
    // Calibrate the drill deadline from the pipeline the overload
    // passes will actually run: faulty model, three shards, one slow
    // primary. A fixed constant is either trivially generous on a
    // small quick world or impossibly tight on the full one.
    let per_ask = {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(3)));
        cluster.load_from(&exp.world.store).expect("cluster load");
        cluster.set_read_latency(0, SLOW_READ_MICROS);
        let mut probe = exp.copilot(faulty_model(seed ^ 0x5eed));
        probe.attach_store_resolver(cluster as Arc<dyn StoreResolver>);
        // Time only the asks — cluster construction and the store
        // copy above are one-off costs the served requests never pay.
        let probe_started = Instant::now();
        for q in exp.questions.iter().take(PROBE_ASKS) {
            probe.ask(&q.text, eval_ts);
        }
        probe_started.elapsed() / PROBE_ASKS as u32
    };
    let drill_deadline = (per_ask * DEADLINE_MULT).max(DEADLINE_FLOOR);
    eprintln!(
        "phase 2: calibrated deadline {:?} ({:?}/ask probe)",
        drill_deadline, per_ask
    );
    eprintln!("phase 2: overload baseline (brownout disabled)…");
    let baseline = overload_pass(
        &exp,
        seed,
        BrownoutConfig::disabled(),
        drill_deadline,
        "overload_baseline",
    );
    eprintln!(
        "  baseline: {}/{} answered, {} expired, level {}, {:.2}s",
        baseline.answered,
        baseline.accepted,
        baseline.expired,
        baseline.final_brownout_level,
        baseline.wall_seconds
    );
    eprintln!("phase 2: overload with the brownout ladder…");
    let browned = overload_pass(
        &exp,
        seed.wrapping_add(1),
        BrownoutConfig::default(),
        drill_deadline,
        "overload_brownout",
    );
    eprintln!(
        "  brownout: {}/{} answered, {} expired, level {}, {} transitions, {:.2}s",
        browned.answered,
        browned.accepted,
        browned.expired,
        browned.final_brownout_level,
        browned.brownout_transitions,
        browned.wall_seconds
    );

    // ---- Phase 3: hedged reads against a slow primary --------------
    eprintln!("phase 3: hedged reads (one slow primary)…");
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(2)));
    cluster.load_from(&exp.world.store).expect("cluster load");
    let mut hedged = exp.copilot(Experiment::gpt4());
    hedged.attach_store_resolver(cluster.clone() as Arc<dyn StoreResolver>);
    let mut reference = exp.copilot(Experiment::gpt4());
    let slice = exp.questions.len().min(30);
    // Warm the rolling latency window with fast reads so the hedge
    // delay settles at its floor before the primary turns slow.
    for q in exp.questions.iter().take(slice) {
        hedged.ask(&q.text, eval_ts);
    }
    cluster.set_read_latency(0, SLOW_READ_MICROS);
    let mut divergent = 0usize;
    for q in exp.questions.iter().take(slice) {
        let a = hedged.ask(&q.text, eval_ts);
        let b = reference.ask(&q.text, eval_ts);
        if a.numeric_answer != b.numeric_answer {
            divergent += 1;
            eprintln!(
                "  DIVERGED on {:?}: hedged {:?} vs reference {:?}",
                q.text, a.numeric_answer, b.numeric_answer
            );
        }
    }
    let (wins, losses, cancelled) = cluster.hedge_outcomes();
    let hedge = HedgeResult {
        compared: slice,
        divergent,
        wins,
        losses,
        cancelled,
    };
    eprintln!(
        "  hedge: {wins} wins, {losses} losses, {cancelled} cancelled, {divergent}/{slice} divergent"
    );

    // Assemble + gate.
    let goodput_gain = browned.answered as i64 - baseline.answered as i64;
    let artifact = DrillArtifact {
        bench: "overload_drill".into(),
        quick,
        seed,
        parity: parity.clone(),
        calibrated_deadline_micros: drill_deadline.as_micros() as u64,
        overload: vec![baseline.clone(), browned.clone()],
        hedge: hedge.clone(),
        goodput_gain_vs_baseline: goodput_gain,
    };
    let path = std::path::PathBuf::from("results").join("BENCH_overload_drill.json");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("serialise artifact"),
    )
    .expect("write artifact");
    eprintln!("wrote {}", path.display());

    // Hard gates.
    assert!(
        parity.ex_delta.abs() <= 1,
        "EX parity violated: sequential {seq_correct}, serve {serve_correct}"
    );
    assert_eq!(
        parity.brownout_transitions, 0.0,
        "the ladder engaged on a healthy, uncontended service"
    );
    // Only the binary-shedding baseline must overrun deadlines — the
    // ladder's entire job is to degrade early enough that requests
    // finish inside their budget, so lapses there are allowed but not
    // required. The zero-work-past-lapse audits still bind both.
    assert!(
        baseline.deadline_exceeded_traces > 0,
        "overload_baseline: the drill never drove a request past its deadline"
    );
    for p in [&baseline, &browned] {
        assert!(p.all_tickets_resolved, "{}: an accepted ticket was lost", p.pass);
        assert_eq!(
            p.model_calls_after_lapse, 0,
            "{}: a model call was recorded after the deadline lapsed",
            p.pass
        );
        assert_eq!(
            p.model_calls_past_budget, 0,
            "{}: a model call was stamped past the request budget",
            p.pass
        );
    }
    assert_eq!(
        baseline.brownout_transitions, 0.0,
        "the disabled ladder must never move"
    );
    assert!(
        browned.brownout_transitions >= 1.0,
        "sustained overload must engage the ladder"
    );
    assert!(
        goodput_gain >= 0,
        "brownout goodput {} fell below the binary-shedding baseline {}",
        browned.answered,
        baseline.answered
    );
    assert!(hedge.wins >= 1, "the slow primary never lost a hedge race");
    assert_eq!(
        hedge.divergent, 0,
        "hedged reads diverged from the unsharded reference"
    );
    eprintln!(
        "overload_drill ok: goodput {} vs {} baseline (+{goodput_gain}), {} hedge wins, EX delta {}",
        browned.answered, baseline.answered, hedge.wins, parity.ex_delta
    );
}

//! Reproduces **Table 3b** (paper §4.2.4): execution accuracy of the
//! DIO copilot architecture with different foundation models.
//!
//! Paper numbers: GPT-4 66 %, GPT-3.5-turbo 46 %, text-curie-001 13 % —
//! and the paper's observation that "even the least performing model
//! still outperforms using GPT-4 alone" (Table 3a's 12 %).
//!
//! ```text
//! cargo run --release -p dio-bench --bin table_3b
//! ```

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_benchmark::report::{format_comparison_table, format_shape_breakdown};

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    let mut artifact = BenchArtifact::new("table_3b");
    let mut reports = Vec::new();
    for (label, model) in [
        ("GPT-4 sim", Experiment::gpt4()),
        ("GPT-3.5-turbo sim", Experiment::gpt35()),
        ("text-curie-001 sim", Experiment::curie()),
    ] {
        eprintln!("evaluating DIO copilot with {label}…");
        let mut dio = exp.copilot(model);
        let r = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
        artifact.push(label, &r);
        artifact.set_stages(&dio.obs().registry().snapshot());
        reports.push(r);
    }

    println!();
    let refs: Vec<&_> = reports.iter().collect();
    println!(
        "{}",
        format_comparison_table(
            "Table 3b — Foundation-model sweep inside DIO (paper: 66, 46, 13)",
            &refs
        )
    );
    for r in &reports {
        println!("{}", format_shape_breakdown(r));
    }
    artifact.write();
}

//! **Ablation: one inference vs explicit two-stage prompting.** The
//! paper describes metric identification (§3.2) and code generation
//! (§3.3) as separate roles; this measures the cost/accuracy trade of
//! issuing them as two model calls versus folding both into a single
//! prompt (the default).
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_two_stage
//! ```

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_copilot::CopilotConfig;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    println!("\nAblation — merged single-call vs explicit two-stage prompting\n");
    println!("{:<22} | {:>6} | {:>11}", "pipeline", "EX (%)", "cents/query");
    println!("{:-<22}-+--------+------------", "");
    let mut artifact = BenchArtifact::new("ablation_two_stage");
    for (label, two_stage) in [("merged (default)", false), ("two-stage", true)] {
        let mut dio = exp.copilot_with_config(
            Experiment::gpt4(),
            CopilotConfig {
                two_stage,
                generate_dashboards: false,
                ..CopilotConfig::default()
            },
        );
        let r = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
        println!(
            "{:<22} | {:>6.1} | {:>11.2}",
            label, r.ex_percent, r.mean_cost_cents
        );
        artifact.push(label, &r);
        // The two-stage cell exercises the identify stage as well.
        artifact.set_stages(&dio.obs().registry().snapshot());
    }
    artifact.write();
}

//! **Ablation: context size.** Sweeps the number of retrieved context
//! samples (the paper fixes it at 29, "the top 29 most similar text
//! samples are appended"). Shows the curated-context claim end-to-end:
//! zero context collapses accuracy, and returns saturate around the
//! paper's choice.
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_context_k
//! ```

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_copilot::CopilotConfig;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    println!("\nAblation — retrieved context samples (paper setting: 29)\n");
    println!("{:>6} | {:>6}", "top-k", "EX (%)");
    println!("-------+-------");
    let mut artifact = BenchArtifact::new("ablation_context_k");
    for k in [0usize, 5, 10, 29, 50, 100] {
        let mut dio = exp.copilot_with_config(
            Experiment::gpt4(),
            CopilotConfig {
                top_k: k,
                generate_dashboards: false,
                ..CopilotConfig::default()
            },
        );
        let r = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
        println!("{:>6} | {:>6.1}", k, r.ex_percent);
        artifact.push(&format!("top_k={k}"), &r);
        if k == 29 {
            // Stage latencies from the paper-setting cell.
            artifact.set_stages(&dio.obs().registry().snapshot());
        }
    }
    artifact.write();
}

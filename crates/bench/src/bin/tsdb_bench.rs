//! `tsdb_bench` — storage-engine and vectorized-executor benchmark.
//!
//! Phases:
//!
//! 1. **ingest** — append ≥1M samples (counter- and gauge-shaped)
//!    across many series, measuring write throughput and the sealed
//!    chunks' compression ratio against raw 16-byte samples;
//! 2. **range scan** — dashboard-style range queries dominated by
//!    matrix-window kernels (`rate`, `increase`, `*_over_time`) run
//!    through the tree-walking interpreter and the vectorized
//!    executor, confirming byte-identical results and measuring the
//!    speedup (the vectorized engine matches + decodes each selector
//!    once and reuses precomputed output orderings across steps, so it
//!    must win by an order of magnitude);
//! 3. **aggregation** — grouped-aggregation range queries, where both
//!    executors share the aggregation code by design (that is what
//!    guarantees byte-identity) and the gap is smaller;
//! 4. **instant** — single-timestamp queries, where scan memoisation
//!    cannot amortise and both engines do one pass.
//!
//! Every timing is best-of-N with a warmup pass, so page-cache misses
//! and allocator noise don't decide the gates.
//!
//! Flags: `--quick` (smaller world, fewer iterations — the CI smoke
//! mode), `--seed=S`.
//!
//! Writes `results/BENCH_tsdb.json` and enforces conservative floors
//! (quick mode: compression ≥ 2.5x, range-scan speedup ≥ 3x; full
//! mode: ≥ 10x) so CI catches regressions, not just drift.

use dio_promql::{Engine, EngineOptions, ExecutorKind, Value};
use dio_tsdb::{Labels, MetricStore, Sample};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct IngestResult {
    series: usize,
    samples: usize,
    wall_seconds: f64,
    samples_per_second: f64,
    raw_bytes: usize,
    compressed_bytes: usize,
    sealed_samples: usize,
    compression_ratio: f64,
    bytes_per_sample: f64,
}

#[derive(Debug, Clone, Serialize)]
struct QueryTiming {
    query: String,
    steps: usize,
    interpreter_seconds: f64,
    vectorized_seconds: f64,
    speedup: f64,
    identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ScanResult {
    queries: usize,
    interpreter_seconds: f64,
    vectorized_seconds: f64,
    speedup: f64,
    per_query: Vec<QueryTiming>,
}

#[derive(Debug, Clone, Serialize)]
struct TsdbArtifact {
    bench: String,
    quick: bool,
    seed: u64,
    ingest: IngestResult,
    range_scan: ScanResult,
    aggregation: ScanResult,
    instant: ScanResult,
}

fn flag_value(name: &str) -> Option<String> {
    std::env::args()
        .find(|a| a.starts_with(&format!("--{name}=")))
        .map(|a| a.split_once('=').expect("has =").1.to_string())
}

/// Deterministic value stream (SplitMix64 → unit floats).
struct ValueGen {
    state: u64,
}

impl ValueGen {
    fn new(seed: u64) -> Self {
        ValueGen { state: seed | 1 }
    }

    fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    }
}

/// Build the bench store: `series_count` series, `steps` samples each
/// at a 15s scrape interval. Half are counters (monotone, integral
/// increments — the compressible common case), half gauges.
fn build_store(series_count: usize, steps: usize, seed: u64) -> (MetricStore, f64) {
    let mut store = MetricStore::new();
    let mut vg = ValueGen::new(seed);
    let mut specs: Vec<(Labels, bool, f64, f64)> = Vec::new();
    for i in 0..series_count {
        let metric = format!("bench_metric_{}", i % 8);
        let labels = Labels::from_pairs([
            ("__name__", metric.as_str()),
            ("instance", &format!("node-{}", i / 8)),
            ("zone", ["east", "west"][i % 2]),
        ]);
        let is_counter = i % 2 == 0;
        let rate = 1.0 + vg.next_unit() * 50.0;
        specs.push((labels, is_counter, rate, vg.next_unit() * 100.0));
    }
    let started = Instant::now();
    for step in 0..steps {
        let ts = (step as i64 + 1) * 15_000;
        for (labels, is_counter, rate, level) in specs.iter_mut() {
            let value = if *is_counter {
                *level += (*rate * 15.0).round();
                *level
            } else {
                *level + (step as f64 * 0.1).sin() * *rate
            };
            store
                .append(labels.clone(), Sample::new(ts, value))
                .expect("in-order append");
        }
    }
    (store, started.elapsed().as_secs_f64())
}

fn engine(store: &MetricStore, kind: ExecutorKind) -> Engine {
    Engine::with_options(
        store.clone(),
        EngineOptions {
            max_samples: 0,
            executor: kind,
            ..EngineOptions::default()
        },
    )
}

/// Fingerprint a value with floats as raw bits so "identical" means
/// byte-identical, NaNs included.
fn fingerprint(v: &Value) -> String {
    match v {
        Value::Scalar(x) => format!("s{:016x}", x.to_bits()),
        Value::Str(s) => format!("t{s}"),
        Value::Vector(samples) => samples
            .iter()
            .map(|s| format!("{:?}={:016x};", s.labels, s.value.to_bits()))
            .collect(),
        Value::Matrix(series) => series
            .iter()
            .map(|s| {
                let pts: String = s
                    .samples
                    .iter()
                    .map(|p| format!("{}@{:016x},", p.timestamp_ms, p.value.to_bits()))
                    .collect();
                format!("{:?}=[{pts}];", s.labels)
            })
            .collect(),
    }
}

/// Best-of-`reps` wall time for one range query (one unmeasured warmup
/// pass first), plus the result fingerprint.
fn time_range(
    engine: &Engine,
    query: &str,
    start: i64,
    end: i64,
    step: i64,
    reps: usize,
) -> (f64, String) {
    let run = || {
        engine
            .range_query(query, start, end, step)
            .unwrap_or_else(|e| panic!("range query `{query}` failed: {e}"))
    };
    let result = run(); // warmup: decode chunks into the page cache
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&r);
    }
    let mut fp = String::new();
    for series in &result {
        fp.push_str(&format!("{:?}=[", series.labels));
        for p in &series.points {
            fp.push_str(&format!("{}@{:016x},", p.timestamp_ms, p.value.to_bits()));
        }
        fp.push_str("];");
    }
    (best, fp)
}

/// The shared range-query measurement protocol: evaluation window,
/// step, and repetitions per query.
#[derive(Clone, Copy)]
struct Protocol {
    start: i64,
    end: i64,
    step: i64,
    reps: usize,
}

/// Diff one panel of range queries through both executors, asserting
/// byte-identical results and returning grouped timings.
fn run_panel(
    name: &str,
    panel: &[&str],
    interp: &Engine,
    vectorized: &Engine,
    proto: Protocol,
) -> ScanResult {
    let Protocol { start, end, step, reps } = proto;
    let n_steps = ((end - start) / step) as usize + 1;
    eprintln!("{name}: {} queries x {} steps…", panel.len(), n_steps);
    let mut per_query = Vec::new();
    let (mut interp_total, mut vec_total) = (0.0, 0.0);
    for &query in panel {
        let (iw, ifp) = time_range(interp, query, start, end, step, reps);
        let (vw, vfp) = time_range(vectorized, query, start, end, step, reps);
        assert_eq!(ifp, vfp, "range results diverged for `{query}`");
        interp_total += iw;
        vec_total += vw;
        per_query.push(QueryTiming {
            query: query.to_string(),
            steps: n_steps,
            interpreter_seconds: iw,
            vectorized_seconds: vw,
            speedup: iw / vw.max(1e-9),
            identical: true,
        });
    }
    let result = ScanResult {
        queries: panel.len(),
        interpreter_seconds: interp_total,
        vectorized_seconds: vec_total,
        speedup: interp_total / vec_total.max(1e-9),
        per_query,
    };
    eprintln!(
        "{name}: interpreter {:.2}s, vectorized {:.2}s — {:.1}x",
        result.interpreter_seconds, result.vectorized_seconds, result.speedup
    );
    result
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = flag_value("seed")
        .map(|s| s.parse().expect("--seed=N"))
        .unwrap_or(0x75db);

    let (series_count, steps) = if quick { (240, 500) } else { (1200, 900) };
    eprintln!(
        "ingesting {} series x {} steps ({} samples, {})…",
        series_count,
        steps,
        series_count * steps,
        if quick { "quick" } else { "full" }
    );
    let (store, ingest_wall) = build_store(series_count, steps, seed);
    let samples = store.sample_count();
    assert_eq!(samples, series_count * steps);
    if !quick {
        assert!(samples >= 1_000_000, "full mode must ingest ≥1M samples");
    }
    let compressed = store.compressed_bytes();
    let sealed: usize = store
        .iter()
        .map(|s| s.chunks().iter().map(|c| c.len()).sum::<usize>())
        .sum();
    let raw = sealed * 16;
    let ratio = raw as f64 / compressed.max(1) as f64;
    let ingest = IngestResult {
        series: series_count,
        samples,
        wall_seconds: ingest_wall,
        samples_per_second: samples as f64 / ingest_wall.max(1e-9),
        raw_bytes: raw,
        compressed_bytes: compressed,
        sealed_samples: sealed,
        compression_ratio: ratio,
        bytes_per_sample: compressed as f64 / sealed.max(1) as f64,
    };
    eprintln!(
        "ingest: {:.0} samples/s, {:.2}x compression ({:.2} B/sample sealed)",
        ingest.samples_per_second, ingest.compression_ratio, ingest.bytes_per_sample
    );

    let interp = engine(&store, ExecutorKind::Interpreter);
    let vectorized = engine(&store, ExecutorKind::Vectorized);

    let end = steps as i64 * 15_000;
    let start = end / 4;
    let step = 60_000;
    let reps = if quick { 2 } else { 3 };

    // Range-scan panel: matrix-window kernels, the tentpole's 10x gate.
    let scan_panel = [
        "rate(bench_metric_0[5m])",
        "rate(bench_metric_1[30m])",
        "increase(bench_metric_2[10m])",
        "max_over_time(bench_metric_3[10m])",
        "avg_over_time(bench_metric_4[15m])",
        "delta(bench_metric_5[10m])",
        // Raw series panels — no kernel at all, pure scan throughput.
        "bench_metric_6",
        "bench_metric_7{zone=\"east\"}",
    ];
    let proto = Protocol { start, end, step, reps };
    let range_scan = run_panel("range scan", &scan_panel, &interp, &vectorized, proto);

    // Aggregation panel: grouped reductions on top of the scans. Both
    // executors share the aggregation code (that is the byte-identity
    // guarantee), so the speedup here is bounded by the scan share.
    let agg_panel = [
        "sum(rate(bench_metric_0[5m]))",
        "sum by (instance) (rate(bench_metric_1[5m]))",
        "avg by (zone) (bench_metric_2)",
        "sum(rate(bench_metric_4[5m])) / sum(rate(bench_metric_0[5m]))",
        "topk(3, sum by (instance) (rate(bench_metric_5[5m])))",
    ];
    let aggregation = run_panel("aggregation", &agg_panel, &interp, &vectorized, proto);

    eprintln!("instant queries…");
    let iters = if quick { 10 } else { 40 };
    let mut per_instant = Vec::new();
    let (mut i_total, mut v_total) = (0.0, 0.0);
    for query in scan_panel.iter().chain(&agg_panel) {
        let ifp = fingerprint(&interp.instant_query(query, end).expect("instant"));
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(interp.instant_query(query, end).expect("instant"));
        }
        let iw = t0.elapsed().as_secs_f64();
        let vfp = fingerprint(&vectorized.instant_query(query, end).expect("instant"));
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(vectorized.instant_query(query, end).expect("instant"));
        }
        let vw = t0.elapsed().as_secs_f64();
        assert_eq!(ifp, vfp, "instant results diverged for `{query}`");
        i_total += iw;
        v_total += vw;
        per_instant.push(QueryTiming {
            query: query.to_string(),
            steps: iters,
            interpreter_seconds: iw,
            vectorized_seconds: vw,
            speedup: iw / vw.max(1e-9),
            identical: true,
        });
    }
    let instant = ScanResult {
        queries: per_instant.len(),
        interpreter_seconds: i_total,
        vectorized_seconds: v_total,
        speedup: i_total / v_total.max(1e-9),
        per_query: per_instant,
    };
    eprintln!(
        "instant: interpreter {:.3}s, vectorized {:.3}s — {:.1}x",
        instant.interpreter_seconds, instant.vectorized_seconds, instant.speedup
    );

    let artifact = TsdbArtifact {
        bench: "tsdb".to_string(),
        quick,
        seed,
        ingest: ingest.clone(),
        range_scan: range_scan.clone(),
        aggregation,
        instant,
    };
    // Write the artifact before gating so a failed run still leaves
    // its evidence on disk.
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_tsdb.json";
    std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap()).expect("write artifact");
    eprintln!("wrote {path}");
    println!("{}", serde_json::to_string_pretty(&artifact).unwrap());

    // Floors: CI runs --quick on shared hardware, so the quick gates
    // are deliberately conservative; the full run must hit the
    // tentpole's ≥10x range-scan target.
    let min_speedup = if quick { 3.0 } else { 10.0 };
    assert!(
        range_scan.speedup >= min_speedup,
        "range-scan speedup {:.2}x below the {:.1}x floor",
        range_scan.speedup,
        min_speedup
    );
    // Quick mode seals fewer, shorter chunk runs (more codec headers
    // per sample), so its compression floor is lower.
    let min_ratio = if quick { 2.0 } else { 2.5 };
    assert!(
        ingest.compression_ratio >= min_ratio,
        "compression ratio {:.2}x below the {:.1}x floor",
        ingest.compression_ratio,
        min_ratio
    );
    assert!(
        ingest.samples_per_second >= 100_000.0,
        "write throughput {:.0} samples/s below the 100k floor",
        ingest.samples_per_second
    );
}

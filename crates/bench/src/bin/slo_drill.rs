//! `slo_drill` — the burn-rate alerting drill: a misbehaving tenant
//! class burns its error budget, the SLO engine pages, and the
//! self-observation copilot explains it back in natural language.
//!
//! Phases:
//!
//! 1. **smoke** — a real `QueryService` burst with premium and
//!    standard tenants populates the `dio_serve_*` class instruments
//!    end-to-end (and every request must leave a fully rooted span
//!    tree behind — orphan count zero);
//! 2. **burn drill** — four simulated hours of class traffic on the
//!    same registry instruments, compressed onto the SLO engine's
//!    simulated clock: one healthy hour, one incident hour where the
//!    standard class sheds half its requests, two recovery hours. The
//!    page must fire for `availability-standard` during the incident
//!    and clear in recovery; the slow-window ticket must keep burning;
//!    `availability-premium` and `latency-premium` must stay clean;
//! 3. **self-observation** — the registry (now carrying `dio_slo_*`
//!    series) is scraped into a TSDB, a catalog is derived, and a
//!    meta-copilot answers natural-language questions about the burn
//!    state — which class is burning budget, how many alerts fired —
//!    verified against the engine's own ground truth (≥ 4/5 must
//!    match).
//!
//! Flags: `--quick` (smaller smoke burst). Writes
//! `results/BENCH_slo_drill.json`.

use dio_bench::Experiment;
use dio_benchmark::eval::numeric_match;
use dio_benchmark::WorldConfig;
use dio_catalog::DomainDb;
use dio_copilot::{CopilotBuilder, CopilotConfig};
use dio_llm::FewShotExample;
use dio_obs::{Objective, ObsHub, ObsScraper, Selector, SloEngine, SloSpec};
use dio_serve::{QueryRequest, QueryService, ServeConfig, ServeOutcome, ShedReason, TenantPolicy};
use dio_tsdb::MetricStore;
use serde::Serialize;

/// One simulated-clock tick of the burn drill.
const TICK_MS: u64 = 60_000;
/// The `latency_micros` bucket bound the premium latency SLO is
/// aligned with (100µs × 4^5).
const LATENCY_THRESHOLD_MICROS: f64 = 102_400.0;

#[derive(Debug, Clone, Serialize)]
struct SmokeResult {
    submitted: usize,
    answered: usize,
    shed: usize,
    orphan_spans: usize,
}

#[derive(Debug, Clone, Serialize)]
struct SloGroundTruth {
    slo: String,
    target: f64,
    page_activations: f64,
    ticket_activations: f64,
    page_active: bool,
    ticket_active: bool,
    burn_5m: f64,
    burn_1h: f64,
    burn_6h: f64,
    burn_3d: f64,
    budget_remaining_ratio: f64,
}

#[derive(Debug, Clone, Serialize)]
struct QaResult {
    question: String,
    metric: String,
    expected: f64,
    answered: Option<f64>,
    query: String,
    correct: bool,
}

#[derive(Debug, Clone, Serialize)]
struct SloDrillArtifact {
    bench: String,
    quick: bool,
    smoke: SmokeResult,
    healthy_ticks: u64,
    incident_ticks: u64,
    recovery_ticks: u64,
    burning_slo: String,
    burning_class: String,
    burn_cause: String,
    slos: Vec<SloGroundTruth>,
    scrapes: usize,
    samples_appended: usize,
    qa: Vec<QaResult>,
    qa_correct: usize,
}

/// Few-shot exemplars in the SLO-telemetry domain.
fn slo_exemplars() -> Vec<FewShotExample> {
    vec![
        FewShotExample {
            question: "How many worker panics did the service record?".into(),
            metrics: vec!["dio_serve_worker_panics_total".into()],
            promql: "sum(dio_serve_worker_panics_total)".into(),
        },
        FewShotExample {
            question: "How many page severity alerts fired for the availability objective?".into(),
            metrics: vec!["dio_slo_alerts_total".into()],
            promql: "sum(dio_slo_alerts_total{severity=\"page\"})".into(),
        },
        FewShotExample {
            question: "How much error budget remains for the premium availability objective?"
                .into(),
            metrics: vec!["dio_slo_error_budget_remaining_ratio".into()],
            promql: "sum(dio_slo_error_budget_remaining_ratio{slo=\"availability-premium\"})"
                .into(),
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // ---- Phase 1: real-service smoke burst -------------------------
    let smoke_n = if quick { 12 } else { 24 };
    eprintln!("phase 1: serve smoke burst ({smoke_n} questions, premium + standard)…");
    let exp = Experiment::with_config(WorldConfig::small(), smoke_n);
    let hub = ObsHub::new();
    let prototype = CopilotBuilder::new(exp.world.domain_db(), exp.world.store.clone())
        .model(Experiment::gpt4())
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(exp.exemplars.clone())
        .obs(hub.clone())
        .build();
    let service = QueryService::spawn(
        &prototype,
        Experiment::gpt4,
        ServeConfig {
            workers: 2,
            queue_depth: smoke_n * 2,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for (i, q) in exp.questions.iter().enumerate() {
        let tenant = if i % 2 == 0 { "premium-0" } else { "tenant-0" };
        if let Ok(t) = service.submit(QueryRequest::new(tenant, &q.text, exp.world.eval_ts)) {
            tickets.push(t);
        }
    }
    let submitted = tickets.len();
    service.shutdown();
    let mut answered = 0usize;
    let mut shed = 0usize;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Answered(_) => answered += 1,
            ServeOutcome::Shed(_) => shed += 1,
        }
    }
    let orphan_spans: usize = hub
        .tracer()
        .recent(smoke_n * 2)
        .iter()
        .filter(|t| t.finished)
        .map(|t| t.orphan_count())
        .sum();
    eprintln!("  {answered} answered, {shed} shed, {orphan_spans} orphan spans");
    assert!(answered > 0, "smoke burst produced no answers");
    assert_eq!(orphan_spans, 0, "smoke burst left orphan spans behind");
    let smoke = SmokeResult {
        submitted,
        answered,
        shed,
        orphan_spans,
    };

    // ---- Phase 2: the burn drill on a simulated clock --------------
    // Same registry, same instruments the service just populated; the
    // drill compresses four hours of class traffic into one process.
    let registry = hub.registry().clone();
    let premium_ok = registry.counter_with(
        "dio_serve_class_requests_total",
        "requests resolved by the query service, by tenant class and outcome",
        &[("class", "premium"), ("outcome", "answered")],
    );
    let standard_ok = registry.counter_with(
        "dio_serve_class_requests_total",
        "requests resolved by the query service, by tenant class and outcome",
        &[("class", "standard"), ("outcome", "answered")],
    );
    let standard_shed = registry.counter_with(
        "dio_serve_class_requests_total",
        "requests resolved by the query service, by tenant class and outcome",
        &[("class", "standard"), ("outcome", "shed")],
    );
    let answered_total = registry.counter_with(
        "dio_serve_requests_total",
        "requests resolved by the query service, by outcome",
        &[("outcome", "answered")],
    );
    let shed_total = registry.counter_with(
        "dio_serve_requests_total",
        "requests resolved by the query service, by outcome",
        &[("outcome", "shed")],
    );
    let shed_throttle = registry.counter_with(
        "dio_serve_shed_total",
        "requests shed by the query service, by reason",
        &[("reason", ShedReason::TenantThrottle.label())],
    );
    let premium_latency = registry.histogram_with(
        "dio_serve_class_latency_micros",
        "submit-to-reply latency of answered requests, by tenant class",
        &dio_obs::Buckets::latency_micros(),
        &[("class", "premium")],
    );

    let mut engine = SloEngine::new(registry.clone());
    engine.add(SloSpec {
        name: "availability-premium".into(),
        target: 0.999,
        objective: Objective::Availability {
            total: Selector::new("dio_serve_class_requests_total", &[("class", "premium")]),
            bad: vec![Selector::new(
                "dio_serve_class_requests_total",
                &[("class", "premium"), ("outcome", "shed")],
            )],
        },
    });
    engine.add(SloSpec {
        name: "availability-standard".into(),
        target: 0.99,
        objective: Objective::Availability {
            total: Selector::new("dio_serve_class_requests_total", &[("class", "standard")]),
            bad: vec![Selector::new(
                "dio_serve_class_requests_total",
                &[("class", "standard"), ("outcome", "shed")],
            )],
        },
    });
    engine.add(SloSpec {
        name: "latency-premium".into(),
        target: 0.95,
        objective: Objective::LatencyThreshold {
            histogram: Selector::new("dio_serve_class_latency_micros", &[("class", "premium")]),
            threshold_micros: LATENCY_THRESHOLD_MICROS,
        },
    });

    let (healthy, incident, recovery) = (60u64, 60u64, 120u64);
    eprintln!(
        "phase 2: burn drill — {healthy}m healthy, {incident}m incident (standard sheds 50%), {recovery}m recovery…"
    );
    let scraper = ObsScraper::new();
    let mut obs_store = MetricStore::new();
    let mut scrapes = 0usize;
    let mut samples_appended = 0usize;
    let mut standard_paged_during_incident = false;
    let mut premium_ever_paged = false;
    let total_ticks = healthy + incident + recovery;
    for tick in 0..total_ticks {
        let incident_now = tick >= healthy && tick < healthy + incident;
        // Premium: 20 requests/min, none shed, 5% over the latency
        // threshold — exactly on its latency budget, never on the
        // availability one.
        premium_ok.add(20.0);
        answered_total.add(20.0);
        for _ in 0..19 {
            premium_latency.observe(6_000.0);
        }
        premium_latency.observe(500_000.0);
        // Standard: 100 requests/min; 1% throttle sheds when healthy
        // (on budget for the 0.99 target), 50% during the incident.
        let sheds = if incident_now { 50.0 } else { 1.0 };
        standard_ok.add(100.0 - sheds);
        standard_shed.add(sheds);
        answered_total.add(100.0 - sheds);
        shed_total.add(sheds);
        shed_throttle.add(sheds);
        let states = engine.observe(tick * TICK_MS, &registry.snapshot());
        for s in &states {
            if s.page && s.name == "availability-standard" && incident_now {
                standard_paged_during_incident = true;
            }
            if s.page && s.name == "availability-premium" {
                premium_ever_paged = true;
            }
        }
        // Scrape every simulated half hour so the meta-copilot sees
        // real burn history, not just the final state.
        if (tick + 1) % 30 == 0 {
            scrapes += 1;
            let stats = scraper
                .scrape(&registry, (tick * TICK_MS) as i64, &mut obs_store)
                .expect("scrape must round-trip");
            samples_appended += stats.appended;
        }
    }
    let last_ts = ((total_ticks - 1) * TICK_MS) as i64;

    let snap = registry.snapshot();
    let page_for = |slo: &str| {
        Selector::new(
            "dio_slo_alerts_total",
            &[("slo", slo), ("severity", "page")],
        )
        .sum(&snap)
    };
    let ticket_for = |slo: &str| {
        Selector::new(
            "dio_slo_alerts_total",
            &[("slo", slo), ("severity", "ticket")],
        )
        .sum(&snap)
    };
    let slos: Vec<SloGroundTruth> = engine
        .states()
        .iter()
        .map(|s| SloGroundTruth {
            slo: s.name.clone(),
            target: s.target,
            page_activations: page_for(&s.name),
            ticket_activations: ticket_for(&s.name),
            page_active: s.page,
            ticket_active: s.ticket,
            burn_5m: s.burn_for("5m"),
            burn_1h: s.burn_for("1h"),
            burn_6h: s.burn_for("6h"),
            burn_3d: s.burn_for("3d"),
            budget_remaining_ratio: s.budget_remaining_ratio,
        })
        .collect();
    for s in &slos {
        eprintln!(
            "  {}: page×{:.0} ticket×{:.0} burn(5m {:.1}, 1h {:.1}, 6h {:.1}, 3d {:.1}) budget {:.2}",
            s.slo, s.page_activations, s.ticket_activations, s.burn_5m, s.burn_1h, s.burn_6h,
            s.burn_3d, s.budget_remaining_ratio
        );
    }
    assert!(
        standard_paged_during_incident,
        "the standard class burned half its traffic and nothing paged"
    );
    assert!(
        !premium_ever_paged,
        "the premium class stayed healthy but paged anyway"
    );
    let final_standard = engine.state("availability-standard").expect("state");
    assert!(
        !final_standard.page,
        "page failed to clear after two clean recovery hours"
    );
    assert!(
        final_standard.ticket,
        "the slow-window ticket forgot the incident too quickly"
    );

    // ---- Phase 3: the copilot explains the burn --------------------
    eprintln!("phase 3: meta-copilot over the scraped burn telemetry…");
    scrapes += 1;
    let stats = scraper
        .scrape(&registry, last_ts, &mut obs_store)
        .expect("final scrape must round-trip");
    samples_appended += stats.appended;
    let catalog = scraper.catalog(&registry);
    let mut meta = CopilotBuilder::new(DomainDb::from_catalog(catalog), obs_store)
        .model(Experiment::gpt4())
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(slo_exemplars())
        .build();
    let cases: Vec<(String, String)> = vec![
        (
            "How many burn-rate alert activations were counted in total?".into(),
            "dio_slo_alerts_total".into(),
        ),
        (
            "How many burn-rate alerts are active right now?".into(),
            "dio_slo_alert_active".into(),
        ),
        (
            "How many requests were shed by the query service?".into(),
            "dio_serve_shed_total".into(),
        ),
        (
            "How many requests did the query service resolve in total?".into(),
            "dio_serve_requests_total".into(),
        ),
        (
            "How much error budget is remaining across every SLO?".into(),
            "dio_slo_error_budget_remaining_ratio".into(),
        ),
    ];
    let qa: Vec<QaResult> = cases
        .into_iter()
        .map(|(question, metric)| {
            let expected = snap.total(&metric);
            let r = meta.ask(&question, last_ts);
            let correct = r
                .numeric_answer
                .map(|v| numeric_match(v, expected))
                .unwrap_or(false);
            QaResult {
                question,
                metric,
                expected,
                answered: r.numeric_answer,
                query: r.query,
                correct,
            }
        })
        .collect();
    println!("\n{:<64} | {:>12} | {:>12} | ok", "question", "answer", "truth");
    println!("{}", "-".repeat(100));
    for qa in &qa {
        println!(
            "{:<64} | {:>12} | {:>12.2} | {}",
            qa.question,
            qa.answered
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "—".into()),
            qa.expected,
            if qa.correct { "yes" } else { "NO" },
        );
    }
    let qa_correct = qa.iter().filter(|q| q.correct).count();
    eprintln!("\n{qa_correct}/{} burn-state questions verified against the engine", qa.len());

    let artifact = SloDrillArtifact {
        bench: "slo_drill".to_string(),
        quick,
        smoke,
        healthy_ticks: healthy,
        incident_ticks: incident,
        recovery_ticks: recovery,
        burning_slo: "availability-standard".to_string(),
        burning_class: "standard".to_string(),
        burn_cause: "tenant_throttle sheds at 50% of standard-class traffic".to_string(),
        slos,
        scrapes,
        samples_appended,
        qa,
        qa_correct,
    };
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_slo_drill.json";
    std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap()).expect("write artifact");
    eprintln!("wrote {path}");

    assert!(
        qa_correct >= 4,
        "need at least 4/5 verified burn-state answers, got {qa_correct}"
    );
}

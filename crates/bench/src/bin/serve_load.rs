//! `serve_load` — load-test the dio-serve query service against the
//! benchmark, comparing service throughput and accuracy with the
//! sequential copilot baseline.
//!
//! Phases:
//!
//! 1. **sequential** — one copilot answers every question in order
//!    (the paper's single-operator loop), establishing baseline qps
//!    and execution accuracy;
//! 2. **serve cold** — the question set is replayed through the
//!    service at the configured concurrency in a seeded shuffled
//!    order; every answer re-scored for EX parity with the baseline;
//! 3. **serve warm** — the same questions again, noisy-cased and
//!    re-padded, which the answer cache must absorb (≥ 95% hit rate);
//! 4. **overload** — a deliberately undersized service (1 worker,
//!    4-deep queue) takes the whole set in one burst and must shed
//!    explicitly (counted in `dio_serve_shed_total`) while answering
//!    every request it accepted.
//!
//! Flags: `--quick` (small world, 40 questions), `--concurrency=N`
//! (default 8), `--rate=R` arrivals/sec (default 0 = open throttle),
//! `--seed=S` (arrival-order shuffle seed).
//!
//! Writes `results/BENCH_serve.json`.

use dio_bench::Experiment;
use dio_benchmark::eval::numeric_match;
use dio_benchmark::{BenchmarkQuestion, WorldConfig};
use dio_serve::{BrownoutConfig, QueryRequest, QueryService, ServeConfig, ServeOutcome, TenantPolicy};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::{Duration, Instant};

const TENANTS: [&str; 4] = ["noc-east", "noc-west", "core-eng", "dashboards"];

#[derive(Debug, Clone, Serialize)]
struct PassResult {
    pass: String,
    requests: usize,
    answered: usize,
    shed: usize,
    correct: usize,
    ex_percent: f64,
    wall_seconds: f64,
    qps: f64,
    answer_cache_hits: usize,
    answer_cache_hit_rate: f64,
    p50_micros: f64,
    p95_micros: f64,
    p99_micros: f64,
    /// Submit-to-pickup decomposition: time spent queued…
    queue_wait_p50_micros: f64,
    queue_wait_p95_micros: f64,
    queue_wait_p99_micros: f64,
    /// …versus time a worker spent producing the answer.
    service_p50_micros: f64,
    service_p95_micros: f64,
    service_p99_micros: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CacheTotals {
    cache: String,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    hit_rate: f64,
}

#[derive(Debug, Clone, Serialize)]
struct OverloadResult {
    requests: usize,
    accepted: usize,
    shed_sync: u64,
    shed_total_metric: f64,
    answered: usize,
    all_accepted_resolved: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ServeArtifact {
    bench: String,
    quick: bool,
    concurrency: usize,
    arrival_rate_per_sec: f64,
    seed: u64,
    available_parallelism: usize,
    questions: usize,
    passes: Vec<PassResult>,
    caches: Vec<CacheTotals>,
    overload: OverloadResult,
    cold_speedup_vs_sequential: f64,
    warm_speedup_vs_sequential: f64,
    ex_delta_cold_vs_sequential: i64,
    /// Flight-recorder tail sample: where the dumped span trees live
    /// and what the recorder kept.
    trace_dump_path: String,
    retained_traces: usize,
    retained_slow: usize,
    retained_shed: usize,
    /// Spans unreachable from their trace root across every finished
    /// trace (must be 0; gated below).
    orphan_spans: usize,
}

fn flag_value(name: &str) -> Option<String> {
    std::env::args()
        .find_map(|a| a.strip_prefix(&format!("--{name}=")).map(str::to_string))
}

fn percentile(sorted_micros: &[f64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx]
}

/// Replay `questions` through the service, one submission per entry,
/// pacing arrivals at `rate` (0 = no pacing), and score the answers.
fn run_pass(
    service: &QueryService,
    questions: &[&BenchmarkQuestion],
    eval_ts: i64,
    rate: f64,
    pass: &str,
    mutate_text: bool,
) -> PassResult {
    let hits_before = service.answer_cache_stats().hits;
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(questions.len());
    for (i, q) in questions.iter().enumerate() {
        if rate > 0.0 {
            // Deterministic uniform pacing at the requested rate.
            let due = started + Duration::from_secs_f64(i as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let text = if mutate_text {
            // Warm-pass phrasing noise the normalizer must absorb.
            format!("  {}  ", q.text.to_uppercase())
        } else {
            q.text.clone()
        };
        let tenant = TENANTS[i % TENANTS.len()];
        match service.submit(QueryRequest::new(tenant, text, eval_ts)) {
            Ok(t) => tickets.push((q, Some(t))),
            Err(_) => tickets.push((q, None)),
        }
    }

    let mut answered = 0;
    let mut shed = 0;
    let mut correct = 0;
    let mut latencies = Vec::with_capacity(tickets.len());
    let mut queue_waits = Vec::with_capacity(tickets.len());
    let mut service_times = Vec::with_capacity(tickets.len());
    for (q, ticket) in tickets {
        let Some(ticket) = ticket else {
            shed += 1;
            continue;
        };
        match ticket.wait() {
            ServeOutcome::Answered(a) => {
                answered += 1;
                latencies.push((a.queue_wait + a.service_time).as_micros() as f64);
                queue_waits.push(a.queue_wait.as_micros() as f64);
                service_times.push(a.service_time.as_micros() as f64);
                let ok = a
                    .response
                    .numeric_answer
                    .map(|v| numeric_match(v, q.reference.numeric))
                    .unwrap_or(false);
                if ok {
                    correct += 1;
                }
            }
            ServeOutcome::Shed(_) => shed += 1,
        }
    }
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    queue_waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    service_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cache_hits = (service.answer_cache_stats().hits - hits_before) as usize;
    PassResult {
        pass: pass.to_string(),
        requests: questions.len(),
        answered,
        shed,
        correct,
        ex_percent: 100.0 * correct as f64 / questions.len().max(1) as f64,
        wall_seconds: wall,
        qps: answered as f64 / wall.max(1e-9),
        answer_cache_hits: cache_hits,
        answer_cache_hit_rate: cache_hits as f64 / questions.len().max(1) as f64,
        p50_micros: percentile(&latencies, 0.50),
        p95_micros: percentile(&latencies, 0.95),
        p99_micros: percentile(&latencies, 0.99),
        queue_wait_p50_micros: percentile(&queue_waits, 0.50),
        queue_wait_p95_micros: percentile(&queue_waits, 0.95),
        queue_wait_p99_micros: percentile(&queue_waits, 0.99),
        service_p50_micros: percentile(&service_times, 0.50),
        service_p95_micros: percentile(&service_times, 0.95),
        service_p99_micros: percentile(&service_times, 0.99),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let concurrency: usize = flag_value("concurrency")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let rate: f64 = flag_value("rate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let seed: u64 = flag_value("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5e12_7e5e);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("building world ({})…", if quick { "quick" } else { "full" });
    let exp = if quick {
        Experiment::with_config(WorldConfig::small(), 40)
    } else {
        Experiment::standard()
    };
    let eval_ts = exp.world.eval_ts;
    let n = exp.questions.len();

    // Phase 1: the sequential baseline.
    eprintln!("sequential baseline ({n} questions)…");
    let mut sequential = exp.copilot(Experiment::gpt4());
    let seq_started = Instant::now();
    let mut seq_correct = 0;
    for q in &exp.questions {
        let r = sequential.ask(&q.text, eval_ts);
        if r.numeric_answer
            .map(|v| numeric_match(v, q.reference.numeric))
            .unwrap_or(false)
        {
            seq_correct += 1;
        }
    }
    let seq_wall = seq_started.elapsed().as_secs_f64();
    let seq_qps = n as f64 / seq_wall.max(1e-9);
    eprintln!(
        "  sequential: EX {seq_correct}/{n}, {seq_wall:.2}s, {seq_qps:.2} qps"
    );

    // Phases 2+3: the service, cold then warm, over a seeded shuffle.
    let mut order: Vec<&BenchmarkQuestion> = exp.questions.iter().collect();
    order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let service = QueryService::spawn(
        &exp.copilot(Experiment::gpt4()),
        Experiment::gpt4,
        ServeConfig {
            workers: concurrency,
            queue_depth: n.max(64),
            tenant: TenantPolicy::unlimited(),
            // The whole set is submitted as one burst into a queue
            // sized to hold it, so occupancy pins at 1.0 by design;
            // leave the brownout ladder out of this EX-parity
            // throughput measurement (overload_drill measures it).
            brownout: BrownoutConfig::disabled(),
            ..ServeConfig::default()
        },
    );
    eprintln!("serve cold pass (concurrency {concurrency})…");
    let cold = run_pass(&service, &order, eval_ts, rate, "serve_cold", false);
    eprintln!(
        "  cold: EX {}/{}, {:.2}s, {:.2} qps, {} cache hits",
        cold.correct, n, cold.wall_seconds, cold.qps, cold.answer_cache_hits
    );
    eprintln!("serve warm pass…");
    let warm = run_pass(&service, &order, eval_ts, rate, "serve_warm", true);
    eprintln!(
        "  warm: EX {}/{}, {:.2}s, {:.2} qps, hit rate {:.1}%",
        warm.correct,
        n,
        warm.wall_seconds,
        warm.qps,
        100.0 * warm.answer_cache_hit_rate
    );
    let caches = vec![
        {
            let s = service.answer_cache_stats();
            CacheTotals {
                cache: "answer".into(),
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                invalidations: s.invalidations,
                hit_rate: s.hit_rate(),
            }
        },
        {
            let s = service.embed_cache_stats();
            CacheTotals {
                cache: "embed".into(),
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                invalidations: s.invalidations,
                hit_rate: s.hit_rate(),
            }
        },
    ];

    // Flight recorder: the service's tracer offered every finished
    // request trace; dump the retained tail (slow / shed / degraded /
    // errored trees) next to the artifact and gate on structure.
    let recorder = service.obs().recorder().clone();
    let tracer = service.obs().tracer().clone();
    service.shutdown();
    let orphan_spans: usize = tracer
        .recent(4096)
        .iter()
        .filter(|t| t.finished)
        .map(|t| t.orphan_count())
        .sum();
    let trace_dump_path = std::path::PathBuf::from("results").join("TRACES_serve.json");
    std::fs::create_dir_all("results").expect("create results dir");
    let retained_traces = recorder.dump(&trace_dump_path).expect("dump trace trees");
    let retained_slow = recorder.retained_for("slow").len();
    let retained_shed = recorder.retained_for("shed").len();
    eprintln!(
        "  flight recorder: {} trace trees retained ({} slow, {} shed) -> {}",
        retained_traces,
        retained_slow,
        retained_shed,
        trace_dump_path.display()
    );

    // Phase 4: overload an undersized service. A fresh prototype keeps
    // its shed counters on a registry of their own.
    eprintln!("overload phase (1 worker, 4-deep queue)…");
    let small = QueryService::spawn(
        &exp.copilot(Experiment::gpt4()),
        Experiment::gpt4,
        ServeConfig {
            workers: 1,
            queue_depth: 4,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );
    let mut accepted = Vec::new();
    for (i, q) in exp.questions.iter().enumerate() {
        let tenant = TENANTS[i % TENANTS.len()];
        if let Ok(t) = small.submit(QueryRequest::new(tenant, &q.text, eval_ts)) {
            accepted.push(t);
        }
    }
    let shed_sync = small.shed_count();
    let accepted_n = accepted.len();
    let mut overload_answered = 0;
    let mut all_resolved = true;
    for t in accepted {
        match t.wait() {
            ServeOutcome::Answered(_) => overload_answered += 1,
            // DeadlineExpired is a legal resolution under overload;
            // what is not legal is a missing reply (wait() maps a
            // severed channel to WorkerPanic, which would trip this).
            ServeOutcome::Shed(s) if s.reason == dio_serve::ShedReason::DeadlineExpired => {}
            ServeOutcome::Shed(_) => all_resolved = false,
        }
    }
    let shed_metric = small
        .obs()
        .registry()
        .snapshot()
        .total("dio_serve_shed_total");
    let overload = OverloadResult {
        requests: n,
        accepted: accepted_n,
        shed_sync,
        shed_total_metric: shed_metric,
        answered: overload_answered,
        all_accepted_resolved: all_resolved,
    };
    small.shutdown();
    eprintln!(
        "  overload: {} accepted, {} shed (metric {}), {} answered",
        accepted_n, shed_sync, shed_metric, overload_answered
    );

    // Assemble + gate.
    let cold_speedup = cold.qps / seq_qps.max(1e-9);
    let warm_speedup = warm.qps / seq_qps.max(1e-9);
    let ex_delta = cold.correct as i64 - seq_correct as i64;
    let artifact = ServeArtifact {
        bench: "serve".into(),
        quick,
        concurrency,
        arrival_rate_per_sec: rate,
        seed,
        available_parallelism: parallelism,
        questions: n,
        passes: vec![
            PassResult {
                pass: "sequential".into(),
                requests: n,
                answered: n,
                shed: 0,
                correct: seq_correct,
                ex_percent: 100.0 * seq_correct as f64 / n.max(1) as f64,
                wall_seconds: seq_wall,
                qps: seq_qps,
                answer_cache_hits: 0,
                answer_cache_hit_rate: 0.0,
                p50_micros: 0.0,
                p95_micros: 0.0,
                p99_micros: 0.0,
                queue_wait_p50_micros: 0.0,
                queue_wait_p95_micros: 0.0,
                queue_wait_p99_micros: 0.0,
                service_p50_micros: 0.0,
                service_p95_micros: 0.0,
                service_p99_micros: 0.0,
            },
            cold.clone(),
            warm.clone(),
        ],
        caches,
        overload: overload.clone(),
        cold_speedup_vs_sequential: cold_speedup,
        warm_speedup_vs_sequential: warm_speedup,
        ex_delta_cold_vs_sequential: ex_delta,
        trace_dump_path: trace_dump_path.display().to_string(),
        retained_traces,
        retained_slow,
        retained_shed,
        orphan_spans,
    };
    let path = std::path::PathBuf::from("results").join("BENCH_serve.json");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("serialise artifact"),
    )
    .expect("write artifact");
    eprintln!("wrote {}", path.display());

    // Hard gates.
    assert!(
        ex_delta.abs() <= 1,
        "EX parity violated: sequential {seq_correct}, serve cold {} (delta {ex_delta})",
        cold.correct
    );
    assert!(
        warm.answer_cache_hit_rate >= 0.95,
        "warm pass hit rate {:.3} below 0.95",
        warm.answer_cache_hit_rate
    );
    assert!(
        warm_speedup >= 4.0,
        "warm service throughput {:.2} qps is under 4x the sequential {:.2} qps",
        warm.qps,
        seq_qps
    );
    assert!(
        overload.shed_sync > 0 && overload.shed_total_metric > 0.0,
        "undersized queue did not shed"
    );
    assert!(
        overload.all_accepted_resolved,
        "an accepted request was dropped under overload"
    );
    assert_eq!(
        orphan_spans, 0,
        "finished traces contain spans unreachable from their root"
    );
    assert!(
        retained_slow >= 1,
        "flight recorder retained no slow trace across {} requests",
        3 * n
    );
    // The cold-path parallel speedup needs physical cores; gate it so
    // single-core containers still exercise everything above.
    if parallelism >= 8 && concurrency >= 8 {
        assert!(
            cold_speedup >= 4.0,
            "cold service throughput {:.2} qps is under 4x the sequential {:.2} qps on {parallelism} cores",
            cold.qps,
            seq_qps
        );
    } else if parallelism < 8 {
        eprintln!(
            "note: {parallelism} core(s) available — cold-path 4x gate skipped (reported {cold_speedup:.2}x)"
        );
    }
    eprintln!(
        "serve_load ok: cold {cold_speedup:.2}x, warm {warm_speedup:.2}x, EX delta {ex_delta}"
    );
}

//! **Ablation: few-shot exemplar count.** The paper uses 20 expert
//! tuples and attributes much of the bare-model gap to their absence
//! ("using just the base foundation model … without few-shot learning
//! performs poorly"). This sweep shows accuracy versus exemplar count.
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_fewshot
//! ```

use dio_baselines::NlQuerySystem;
use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_copilot::{CopilotBuilder, CopilotConfig};

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    println!("\nAblation — few-shot exemplars in the prompt (paper setting: 20)\n");
    println!("{:>9} | {:>6} | {:>11}", "exemplars", "EX (%)", "cents/query");
    println!("----------+--------+------------");
    let mut artifact = BenchArtifact::new("ablation_fewshot");
    for n in [0usize, 1, 5, 10, 20] {
        let mut dio = CopilotBuilder::new(exp.world.domain_db(), exp.world.store.clone())
            .model(Experiment::gpt4())
            .config(CopilotConfig {
                generate_dashboards: false,
                ..CopilotConfig::default()
            })
            .exemplars(exp.exemplars.iter().take(n).cloned().collect())
            .build();
        let r = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
        let _ = dio.system_name();
        println!(
            "{:>9} | {:>6.1} | {:>11.2}",
            n, r.ex_percent, r.mean_cost_cents
        );
        artifact.push(&format!("exemplars={n}"), &r);
        if n == 20 {
            artifact.set_stages(&dio.obs().registry().snapshot());
        }
    }
    artifact.write();
}

//! **Chaos soak: the full pipeline under combined LLM + data-plane
//! faults.** Runs the benchmark twice — fault-free baseline, then with
//! [`dio_llm::FaultyModel`] *and* [`dio_faults`] data-plane chaos both
//! at the same fault probability — and asserts EX stays within a stated
//! band of the baseline. A crash sweep then kills the tsdb WAL writer
//! and the feedback journal writer at **every byte offset** and proves
//! recovery never loses an acknowledged write nor surfaces a corrupt
//! one.
//!
//! ```text
//! cargo run --release -p dio-bench --bin chaos_soak            # full 200-question soak
//! cargo run --release -p dio-bench --bin chaos_soak -- --quick # CI smoke (small world)
//! ```
//!
//! Writes `results/BENCH_chaos_soak.json` and exits non-zero when the
//! EX band or a crash-consistency invariant is violated.

use dio_bench::artifact::{stage_latencies, StageLatency, SystemResult};
use dio_bench::Experiment;
use dio_benchmark::{evaluate, EvalReport, WorldConfig};
use dio_copilot::{CopilotBuilder, CopilotConfig, DioCopilot, RetrievalMode};
use dio_faults::{ChaosConfig, MemMedium};
use dio_llm::{FaultConfig, FaultyModel, ModelProfile, SimulatedModel};
use dio_obs::{ObsHub, SeriesValue};
use dio_tsdb::{DurableStore, Labels, Sample};
use serde::Serialize;
use std::fs;

/// Per-operation fault probability for both fault planes.
const FAULT_P: f64 = 0.2;
/// Maximum EX drop (percentage points) the chaos run may show against
/// the fault-free baseline.
const EX_BAND: f64 = 10.0;

/// One `layer × kind` data-fault cell from the copilot's registry.
#[derive(Debug, Clone, Serialize)]
struct FaultCell {
    layer: String,
    kind: String,
    count: f64,
}

/// Where the chaos run's answers came from — the degradation and
/// completeness attribution the acceptance criteria ask for.
#[derive(Debug, Clone, Serialize, Default)]
struct Attribution {
    answers_full: f64,
    answers_repaired: f64,
    answers_degraded: f64,
    completeness_complete: f64,
    completeness_partial: f64,
    model_faults_injected: f64,
    data_faults: Vec<FaultCell>,
    index_demotions: f64,
}

/// Crash-sweep outcome: every byte offset of both logs was a kill
/// point, and every recovery held the durability contract.
#[derive(Debug, Clone, Serialize)]
struct CrashSweep {
    wal_bytes: usize,
    wal_records: usize,
    wal_offsets_checked: usize,
    journal_bytes: usize,
    journal_ops: usize,
    journal_offsets_checked: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ChaosSoakArtifact {
    bench: String,
    quick: bool,
    questions: usize,
    fault_probability: f64,
    ex_band_points: f64,
    baseline: SystemResult,
    chaos: SystemResult,
    ex_delta_points: f64,
    within_band: bool,
    attribution: Attribution,
    crash_sweep: CrashSweep,
    stage_latency_micros: Vec<StageLatency>,
}

fn soak_config(chaos: bool) -> CopilotConfig {
    CopilotConfig {
        generate_dashboards: false,
        // HNSW so the demotion ladder (hnsw → ivf → flat) is exercised.
        retrieval: RetrievalMode::Hnsw { ef_search: 64 },
        data_chaos: chaos.then(|| ChaosConfig::with_probability(seed(), FAULT_P)),
        ..CopilotConfig::default()
    }
}

fn seed() -> u64 {
    0xc4a0_5017
}

fn run(exp: &Experiment, chaos: bool) -> (EvalReport, DioCopilot) {
    let hub = ObsHub::new();
    let inner = SimulatedModel::new(ModelProfile::gpt4_sim());
    let model: Box<dyn dio_llm::FoundationModel> = if chaos {
        Box::new(
            FaultyModel::new(inner, FaultConfig::with_probability(seed(), FAULT_P))
                .with_registry(hub.registry().clone()),
        )
    } else {
        Box::new(inner)
    };
    let mut dio = CopilotBuilder::new(exp.world.domain_db(), exp.world.store.clone())
        .model(model)
        .config(soak_config(chaos))
        .exemplars(exp.exemplars.clone())
        .obs(hub)
        .build();
    let report = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
    (report, dio)
}

/// Sum a labelled counter family into per-label cells.
fn fault_cells(snapshot: &dio_obs::Snapshot, family: &str) -> Vec<FaultCell> {
    let mut out = Vec::new();
    let Some(fam) = snapshot.family(family) else {
        return out;
    };
    for s in &fam.series {
        let SeriesValue::Counter(v) = &s.value else {
            continue;
        };
        if *v == 0.0 {
            continue;
        }
        let get = |key: &str| {
            s.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        out.push(FaultCell {
            layer: get("layer"),
            kind: get("kind"),
            count: *v,
        });
    }
    out
}

fn labelled_total(snapshot: &dio_obs::Snapshot, family: &str, key: &str, value: &str) -> f64 {
    snapshot
        .family(family)
        .map(|fam| {
            fam.series
                .iter()
                .filter(|s| s.labels.contains(&(key.to_string(), value.to_string())))
                .map(|s| match &s.value {
                    SeriesValue::Counter(v) => *v,
                    _ => 0.0,
                })
                // + 0.0 normalises the empty sum: `Sum for f64` uses
                // -0.0 as its identity, which would render as "-0".
                .sum::<f64>()
                + 0.0
        })
        .unwrap_or(0.0)
}

fn attribution(dio: &DioCopilot) -> Attribution {
    let snap = dio.obs().registry().snapshot();
    Attribution {
        answers_full: labelled_total(&snap, "dio_copilot_answers_total", "degradation", "full"),
        answers_repaired: labelled_total(
            &snap,
            "dio_copilot_answers_total",
            "degradation",
            "repaired",
        ),
        answers_degraded: labelled_total(
            &snap,
            "dio_copilot_answers_total",
            "degradation",
            "degraded",
        ),
        completeness_complete: labelled_total(
            &snap,
            dio_copilot::obs::COMPLETENESS_NAME,
            "level",
            "complete",
        ),
        completeness_partial: labelled_total(
            &snap,
            dio_copilot::obs::COMPLETENESS_NAME,
            "level",
            "partial",
        ),
        model_faults_injected: snap.total("dio_llm_faults_injected_total"),
        data_faults: fault_cells(&snap, dio_copilot::obs::DATA_FAULTS_NAME),
        index_demotions: snap.total(dio_copilot::obs::DEMOTIONS_NAME),
    }
}

/// Kill the tsdb WAL writer at every byte offset: recovery from any
/// prefix must yield a prefix-closed set of the acknowledged appends
/// with zero corrupt frames. Returns (bytes, records, offsets checked).
fn wal_crash_sweep() -> (usize, usize, usize) {
    let mut durable = DurableStore::new(MemMedium::new());
    let mut acked = Vec::new();
    for i in 0..40i64 {
        let labels = Labels::from_pairs([
            ("__name__", "soak_crash_metric"),
            ("shard", if i % 2 == 0 { "a" } else { "b" }),
        ]);
        let sample = Sample {
            timestamp_ms: 1_000 * i,
            value: i as f64 * 1.5,
        };
        durable
            .append(labels.clone(), sample)
            .expect("healthy append");
        acked.push((labels, sample));
    }
    let (_, medium) = durable.into_parts();
    let bytes = medium.bytes().to_vec();
    let mut checked = 0usize;
    for cut in 0..=bytes.len() {
        let recovery = dio_tsdb::wal::recover(&bytes[..cut]);
        assert!(
            recovery.corrupt_frames == 0 && recovery.unparsable == 0,
            "crash at offset {cut}: recovery surfaced corrupt frames"
        );
        let n = recovery.records.len();
        assert!(n <= acked.len(), "crash at offset {cut}: phantom records");
        for (got, want) in recovery.records.iter().zip(acked.iter()) {
            assert_eq!(got.labels, want.0, "crash at offset {cut}: wrong order");
            assert_eq!(got.sample, want.1, "crash at offset {cut}: wrong sample");
        }
        if cut == bytes.len() {
            assert_eq!(n, acked.len(), "full log must recover every acked write");
        }
        checked += 1;
    }
    (bytes.len(), acked.len(), checked)
}

/// Same sweep for the feedback journal: replay of any prefix applies
/// cleanly (no rejected ops — the prefix property guarantees causal
/// order survives the crash).
fn journal_crash_sweep() -> (usize, usize, usize) {
    use dio_feedback::{Journal, JournalOp};
    let mut journal = Journal::new(MemMedium::new());
    let mut ops = Vec::new();
    for i in 0..12u64 {
        let op = JournalOp::RaiseHand {
            question: format!("soak question {i}?"),
            context_metrics: vec![format!("metric_{i}")],
            response: format!("answer {i}"),
        };
        journal.record(&op).expect("healthy record");
        ops.push(op);
        let comment = JournalOp::Comment {
            id: i,
            author: "soak".into(),
            text: format!("comment {i}"),
        };
        journal.record(&comment).expect("healthy record");
        ops.push(comment);
    }
    let bytes = journal.into_medium().into_bytes();
    let mut checked = 0usize;
    for cut in 0..=bytes.len() {
        let recovery = dio_feedback::journal::recover(&bytes[..cut]);
        assert!(
            recovery.corrupt_frames == 0 && recovery.unparsable == 0,
            "journal crash at offset {cut}: corrupt frames"
        );
        assert!(recovery.ops.len() <= ops.len());
        for (got, want) in recovery.ops.iter().zip(ops.iter()) {
            assert_eq!(got, want, "journal crash at offset {cut}: op mismatch");
        }
        checked += 1;
    }
    (bytes.len(), ops.len(), checked)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("building world ({})…", if quick { "quick" } else { "full" });
    let exp = if quick {
        Experiment::with_config(WorldConfig::small(), 40)
    } else {
        Experiment::standard()
    };

    eprintln!("baseline run ({} questions, fault-free)…", exp.questions.len());
    let (baseline, _) = run(&exp, false);
    eprintln!(
        "baseline EX {:.1}% — chaos run (p={FAULT_P} on model and data planes)…",
        baseline.ex_percent
    );
    let (chaos, dio) = run(&exp, true);
    let attribution = attribution(&dio);
    let snap = dio.obs().registry().snapshot();

    eprintln!("crash sweep: killing the WAL writer at every byte offset…");
    let (wal_bytes, wal_records, wal_offsets) = wal_crash_sweep();
    let (journal_bytes, journal_ops, journal_offsets) = journal_crash_sweep();

    let ex_delta = baseline.ex_percent - chaos.ex_percent;
    let within_band = ex_delta.abs() <= EX_BAND;
    let all_answered = chaos.total == exp.questions.len();

    let artifact = ChaosSoakArtifact {
        bench: "chaos_soak".into(),
        quick,
        questions: exp.questions.len(),
        fault_probability: FAULT_P,
        ex_band_points: EX_BAND,
        baseline: SystemResult::from_report("baseline", &baseline),
        chaos: SystemResult::from_report(&format!("chaos p={FAULT_P}"), &chaos),
        ex_delta_points: ex_delta,
        within_band,
        attribution,
        crash_sweep: CrashSweep {
            wal_bytes,
            wal_records,
            wal_offsets_checked: wal_offsets,
            journal_bytes,
            journal_ops,
            journal_offsets_checked: journal_offsets,
        },
        stage_latency_micros: stage_latencies(&snap),
    };

    fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&artifact).expect("serialise artifact");
    fs::write("results/BENCH_chaos_soak.json", &json).expect("write artifact");
    eprintln!("wrote results/BENCH_chaos_soak.json");

    println!(
        "chaos soak: baseline EX {:.1}%, chaos EX {:.1}% (delta {:+.1} pts, band ±{EX_BAND}), \
         {} degraded / {} repaired / {} full; WAL sweep {} offsets, journal sweep {} offsets",
        baseline.ex_percent,
        chaos.ex_percent,
        -ex_delta,
        artifact.attribution.answers_degraded,
        artifact.attribution.answers_repaired,
        artifact.attribution.answers_full,
        wal_offsets,
        journal_offsets,
    );

    if !within_band {
        eprintln!(
            "FAIL: chaos EX {:.1}% fell more than {EX_BAND} points below baseline {:.1}%",
            chaos.ex_percent, baseline.ex_percent
        );
        std::process::exit(1);
    }
    if !all_answered {
        eprintln!(
            "FAIL: chaos run answered {}/{} questions",
            chaos.total,
            exp.questions.len()
        );
        std::process::exit(1);
    }
}

//! Exports the benchmark artifacts as JSON — the analogue of the
//! paper's public code/dataset release (reference \[20\], with "the
//! operator-specific data and metrics omitted"; here nothing is
//! proprietary, so everything ships):
//!
//! * `results/benchmark_questions.json` — the 200 questions with
//!   reference metrics, PromQL, and numeric answers;
//! * `results/fewshot_exemplars.json` — the 20 expert tuples;
//! * `results/vendor_manual.md` — the segmented vendor documentation
//!   the domain-specific database is built from.
//!
//! ```text
//! cargo run --release -p dio-bench --bin dataset_export
//! ```

use dio_bench::Experiment;
use dio_catalog::docs::render_manual;
use std::fs;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();
    fs::create_dir_all("results").expect("create results dir");

    let questions = serde_json::to_string_pretty(&exp.questions).expect("serialise questions");
    fs::write("results/benchmark_questions.json", &questions).expect("write questions");

    let fewshot = serde_json::to_string_pretty(&exp.exemplars).expect("serialise exemplars");
    fs::write("results/fewshot_exemplars.json", &fewshot).expect("write exemplars");

    let manual = render_manual(&exp.world.catalog);
    fs::write("results/vendor_manual.md", &manual).expect("write manual");

    println!(
        "exported {} questions ({} bytes), {} exemplars, vendor manual ({} metrics, {} bytes)",
        exp.questions.len(),
        questions.len(),
        exp.exemplars.len(),
        exp.world.catalog.len(),
        manual.len(),
    );
}

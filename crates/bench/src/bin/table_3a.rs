//! Reproduces **Table 3a** (paper §4.2.3): end-to-end execution
//! accuracy of DIO copilot vs DIN-SQL vs the bare foundation model on
//! the 200-question operator benchmark.
//!
//! Paper numbers: DIO 66 %, DIN-SQL 48 %, GPT-4 12 %.
//!
//! ```text
//! cargo run --release -p dio-bench --bin table_3a
//! ```

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::report::{format_comparison_table, format_shape_breakdown};
use dio_benchmark::evaluate;

fn main() {
    eprintln!("building world (3000+ metrics, synthetic traffic)…");
    let exp = Experiment::standard();
    eprintln!(
        "world: {} metrics, {} series, {} samples; benchmark: {} questions",
        exp.world.catalog.len(),
        exp.world.store.series_count(),
        exp.world.store.sample_count(),
        exp.questions.len()
    );

    eprintln!("evaluating DIO copilot…");
    let mut dio = exp.copilot(Experiment::gpt4());
    let r_dio = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);

    eprintln!("evaluating DIN-SQL…");
    let mut dinsql = exp.dinsql(Experiment::gpt4());
    let r_din = evaluate(&mut dinsql, &exp.questions, exp.world.eval_ts);

    eprintln!("evaluating bare model…");
    let mut direct = exp.direct(Experiment::gpt4());
    let r_dir = evaluate(&mut direct, &exp.questions, exp.world.eval_ts);

    println!();
    println!(
        "{}",
        format_comparison_table(
            "Table 3a — End-to-end comparison (paper: DIO 66, DIN-SQL 48, GPT-4 12)",
            &[&r_dio, &r_din, &r_dir]
        )
    );
    println!("{}", format_shape_breakdown(&r_dio));
    println!("{}", format_shape_breakdown(&r_din));
    println!("{}", format_shape_breakdown(&r_dir));

    let mut artifact = BenchArtifact::new("table_3a");
    artifact.push("dio-copilot", &r_dio);
    artifact.push("din-sql", &r_din);
    artifact.push("bare-model", &r_dir);
    artifact.set_stages(&dio.obs().registry().snapshot());
    artifact.write();
}

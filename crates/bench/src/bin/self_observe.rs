//! **Self-observation**: the copilot queries its own telemetry.
//!
//! Runs an instrumented, fault-injected benchmark slice, scrapes the
//! `dio-obs` registry into a `dio-tsdb` store after every chunk, derives
//! a `dio-catalog` description of every exported instrument, and then
//! asks a second copilot natural-language questions about the first
//! one's recovery and latency behaviour — verifying each numeric answer
//! against the registry's ground truth.
//!
//! ```text
//! cargo run --release -p dio-bench --bin self_observe
//! ```
//!
//! Exits non-zero if the exposition fails to round-trip, any instrument
//! lacks a catalog description, or fewer than three self-directed
//! questions verify.

use dio_bench::artifact::BenchArtifact;
use dio_bench::selfobs::run_self_observation;
use dio_obs::parse_exposition;

fn main() {
    eprintln!("running instrumented benchmark slice (60 questions, p-fault 0.25)…");
    let outcome = run_self_observation(60, 0.25);

    println!("\nSelf-observation — the copilot on its own telemetry\n");
    println!(
        "benchmark: {} questions, EX {:.1}%, {} scrapes, {} samples into the obs store",
        outcome.questions_run,
        outcome.ex_percent(),
        outcome.scrapes,
        outcome.samples_appended,
    );
    println!(
        "catalog: {} instrument descriptions derived from the registry",
        outcome.catalog_len
    );

    // Exposition must survive its own parser.
    let families = parse_exposition(&outcome.exposition)
        .expect("exporter output must round-trip through the exposition parser");
    println!(
        "exposition: {} families, {} bytes, round-trips cleanly",
        families.len(),
        outcome.exposition.len()
    );

    assert!(
        outcome.undocumented.is_empty(),
        "exported instruments without catalog descriptions: {:?}",
        outcome.undocumented
    );

    println!("\n{:<72} | {:>12} | {:>12} | ok", "question", "answer", "truth");
    println!("{}", "-".repeat(110));
    for qa in &outcome.qa {
        println!(
            "{:<72} | {:>12} | {:>12.1} | {}",
            qa.question,
            qa.answered
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "—".into()),
            qa.expected,
            if qa.correct { "yes" } else { "NO" },
        );
    }
    let correct = outcome.qa_correct();
    println!(
        "\n{}/{} self-directed questions verified against the registry",
        correct,
        outcome.qa.len()
    );

    let mut artifact = BenchArtifact::new("self_observe");
    for r in &outcome.chunk_reports {
        artifact.push(&format!("chunk_{}", artifact.systems.len()), r);
    }
    artifact.set_stages(&outcome.final_snapshot);
    artifact.write();

    assert!(
        correct >= 3,
        "need at least 3 verified self-directed answers, got {correct}"
    );
}

//! Measurable counterpart of **Figure 2** (the system architecture):
//! traces a set of questions through the pipeline and reports the mean
//! wall-clock spent in each architectural component — context
//! extraction, code generation, sandboxed execution, and dashboard
//! generation.
//!
//! ```text
//! cargo run --release -p dio-bench --bin figure_2_pipeline
//! ```

use dio_bench::Experiment;
use std::collections::BTreeMap;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();
    let mut dio = exp.copilot(Experiment::gpt4());

    // Durations are u64 micros end to end now (saturating), so the
    // report-side accumulator no longer silently mixes widths.
    let mut totals: BTreeMap<String, (u64, usize)> = BTreeMap::new();
    let sample: Vec<_> = exp.questions.iter().take(50).collect();
    for q in &sample {
        let r = dio.ask(&q.text, exp.world.eval_ts);
        for agg in r.trace.aggregates() {
            let e = totals.entry(agg.stage.clone()).or_insert((0, 0));
            e.0 = e.0.saturating_add(agg.total_micros);
            e.1 += agg.invocations;
        }
    }

    println!("\nFigure 2 — pipeline stage timing over {} questions\n", sample.len());
    println!("{:<12} | {:>12} | {:>8}", "stage", "mean (µs)", "calls");
    println!("{:-<12}-+-{:-<12}-+---------", "", "");
    let mut total_mean = 0.0;
    for (stage, (micros, calls)) in &totals {
        let mean = *micros as f64 / *calls as f64;
        total_mean += mean;
        println!("{:<12} | {:>12.0} | {:>8}", stage, mean, calls);
    }
    println!("{:-<12}-+-{:-<12}-+---------", "", "");
    println!("{:<12} | {:>12.0} |", "total", total_mean);
    println!(
        "\n(components per Figure 2: context extractor = retrieve, foundation model =\n\
         generate, sandboxed DB execution = execute, dashboard generation = dashboard)"
    );
}

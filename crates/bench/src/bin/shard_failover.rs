//! `shard_failover` — the sharded-serving failover drill: prove the
//! cluster layer is invisible to correctness and that no acknowledged
//! write is ever lost through a primary crash.
//!
//! Phases:
//!
//! 1. **baseline** — the sequential single-node copilot answers every
//!    question (no cluster), establishing EX and qps;
//! 2. **shard sweep** — the same questions through a cluster-backed
//!    copilot at 1/2/4/8 shards (1/2/4 with `--quick`); EX must match
//!    the single-node baseline within ±1 question at every width;
//! 3. **write drill** — a seeded [`CrashSchedule`] kills and restarts
//!    nodes while a write stream appends through the router over a
//!    chaotic replication link; after the dust settles every
//!    acknowledged write must still be readable (zero acked-write
//!    loss), and failover detection→takeover latencies are collected;
//! 4. **query drill** — a burst through the dio-serve service with a
//!    primary killed mid-burst and an immediate drain; every accepted
//!    ticket must resolve;
//! 5. **rejoin** — a killed primary restarts, replays its durable WAL,
//!    catches up the suffix written while it was down, and then takes
//!    the shard back when its successor is killed (fail-back).
//!
//! Flags: `--quick` (small world, 40 questions, shard sweep capped at
//! 4), `--seed=S` (chaos schedule seed).
//!
//! Writes `results/BENCH_shard_failover.json`.

use dio_bench::Experiment;
use dio_benchmark::eval::numeric_match;
use dio_benchmark::WorldConfig;
use dio_cluster::{Cluster, ClusterConfig, ClusterError};
use dio_copilot::ShardTiming;
use dio_faults::{ChaosConfig, CrashSchedule, NodeFault};
use dio_sandbox::StoreResolver;
use dio_serve::{QueryRequest, QueryService, ServeConfig, ServeOutcome, TenantPolicy};
use dio_tsdb::labels::NAME_LABEL;
use dio_tsdb::{Labels, Sample};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct SweepResult {
    shards: usize,
    correct: usize,
    ex_percent: f64,
    ex_delta_vs_baseline: i64,
    wall_seconds: f64,
    qps: f64,
    routes_pushdown: u64,
    routes_gather: u64,
    routes_gather_all: u64,
    /// Per-shard span totals aggregated over every question in the
    /// sweep: which shards the fan-out actually touched, via which
    /// routing path, and how much wall time each soaked up.
    shard_breakdown: Vec<ShardTiming>,
}

#[derive(Debug, Clone, Serialize)]
struct WriteDrill {
    nodes: usize,
    attempted: usize,
    acked: usize,
    refused_unavailable: usize,
    acked_verified: usize,
    acked_lost: usize,
    crashes: usize,
    restarts: usize,
    failovers: u64,
    reships: u64,
    replayed_wal_bytes: usize,
    caught_up_records: usize,
    max_replication_lag_seconds: f64,
}

#[derive(Debug, Clone, Serialize)]
struct QueryDrill {
    nodes: usize,
    submitted: usize,
    accepted: usize,
    answered: usize,
    shed: usize,
    all_accepted_resolved: bool,
    failovers: u64,
    /// Complete span trees the flight recorder retained because the
    /// request paid for a shard promotion mid-flight.
    retained_failed_over: usize,
    /// Spans unreachable from their trace root across every finished
    /// trace of the drill (must be zero).
    orphan_spans: usize,
}

#[derive(Debug, Clone, Serialize)]
struct RejoinDrill {
    writes_while_down: usize,
    replayed_wal_bytes: usize,
    caught_up_records: usize,
    failback_verified: bool,
}

#[derive(Debug, Clone, Serialize)]
struct FailoverLatency {
    count: usize,
    p50_micros: f64,
    p99_micros: f64,
    max_micros: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ShardFailoverArtifact {
    bench: String,
    quick: bool,
    seed: u64,
    available_parallelism: usize,
    questions: usize,
    baseline_correct: usize,
    baseline_ex_percent: f64,
    baseline_qps: f64,
    sweep: Vec<SweepResult>,
    write_drill: WriteDrill,
    query_drill: QueryDrill,
    rejoin: RejoinDrill,
    failover_latency: FailoverLatency,
    /// Where the failed-over trace trees were dumped.
    trace_dump_path: String,
}

fn flag_value(name: &str) -> Option<String> {
    std::env::args()
        .find_map(|a| a.strip_prefix(&format!("--{name}=")).map(str::to_string))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Counter value for one `path` label of `dio_cluster_routes_total`.
fn route_count(cluster: &Cluster, path: &str) -> u64 {
    cluster
        .registry()
        .snapshot()
        .family("dio_cluster_routes_total")
        .map(|f| {
            f.series
                .iter()
                .filter(|s| s.labels.iter().any(|(k, v)| k == "path" && v == path))
                .map(|s| match s.value {
                    dio_obs::SeriesValue::Counter(v) | dio_obs::SeriesValue::Gauge(v) => v as u64,
                    _ => 0,
                })
                .sum()
        })
        .unwrap_or(0)
}

/// Ask every question through `copilot`, counting EX-correct answers
/// and folding each response's per-shard span timings into one
/// aggregate breakdown for the sweep width.
fn score(
    exp: &Experiment,
    copilot: &mut dio_copilot::DioCopilot,
) -> (usize, f64, Vec<ShardTiming>) {
    let started = Instant::now();
    let mut correct = 0;
    let mut breakdown: Vec<ShardTiming> = Vec::new();
    for q in &exp.questions {
        let r = copilot.ask(&q.text, exp.world.eval_ts);
        if r.numeric_answer
            .map(|v| numeric_match(v, q.reference.numeric))
            .unwrap_or(false)
        {
            correct += 1;
        }
        for shard in r.trace.shard_breakdown() {
            match breakdown
                .iter_mut()
                .find(|t| t.shard == shard.shard && t.path == shard.path)
            {
                Some(t) => {
                    t.invocations += shard.invocations;
                    t.total_micros = t.total_micros.saturating_add(shard.total_micros);
                }
                None => breakdown.push(shard),
            }
        }
    }
    breakdown.sort_by(|a, b| a.shard.cmp(&b.shard).then(a.path.cmp(&b.path)));
    (correct, started.elapsed().as_secs_f64(), breakdown)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = flag_value("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xfa11_07e5);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("building world ({})…", if quick { "quick" } else { "full" });
    let exp = if quick {
        Experiment::with_config(WorldConfig::small(), 40)
    } else {
        Experiment::standard()
    };
    let n_questions = exp.questions.len();

    // ---- Phase 1: single-node sequential baseline ------------------
    eprintln!("phase 1: single-node baseline over {n_questions} questions…");
    let mut baseline = exp.copilot(Experiment::gpt4());
    let (baseline_correct, baseline_wall, _) = score(&exp, &mut baseline);
    let baseline_qps = n_questions as f64 / baseline_wall.max(1e-9);
    eprintln!(
        "  baseline EX {baseline_correct}/{n_questions} in {baseline_wall:.2}s ({baseline_qps:.1} qps)"
    );

    // ---- Phase 2: shard sweep --------------------------------------
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut sweep = Vec::new();
    for &shards in shard_counts {
        eprintln!("phase 2: sweep at {shards} shard(s)…");
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(shards)));
        cluster.load_from(&exp.world.store).expect("cluster load");
        let mut copilot = exp.copilot(Experiment::gpt4());
        copilot.attach_store_resolver(cluster.clone() as Arc<dyn StoreResolver>);
        let (correct, wall, shard_breakdown) = score(&exp, &mut copilot);
        let delta = correct as i64 - baseline_correct as i64;
        eprintln!(
            "  {shards} shard(s): EX {correct}/{n_questions} (Δ{delta:+}) in {wall:.2}s ({:.1} qps)",
            n_questions as f64 / wall.max(1e-9)
        );
        assert!(
            delta.abs() <= 1,
            "EX parity broken at {shards} shards: {correct} vs baseline {baseline_correct}"
        );
        sweep.push(SweepResult {
            shards,
            correct,
            ex_percent: 100.0 * correct as f64 / n_questions.max(1) as f64,
            ex_delta_vs_baseline: delta,
            wall_seconds: wall,
            qps: n_questions as f64 / wall.max(1e-9),
            routes_pushdown: route_count(&cluster, "pushdown"),
            routes_gather: route_count(&cluster, "gather"),
            routes_gather_all: route_count(&cluster, "gather_all"),
            shard_breakdown,
        });
    }

    let mut failover_latencies: Vec<f64> = Vec::new();

    // ---- Phase 3: write drill (zero acked-write loss) --------------
    let drill_nodes = 4;
    let rounds = if quick { 40 } else { 200 };
    eprintln!("phase 3: write drill on {drill_nodes} nodes, {rounds} rounds under node chaos…");
    let cluster = Arc::new(Cluster::new(ClusterConfig::with_link_chaos(
        drill_nodes,
        ChaosConfig::with_probability(seed ^ 0x5e11_ed11, 0.25),
    )));
    cluster.load_from(&exp.world.store).expect("cluster load");
    let base_ts = exp.world.store.max_timestamp().unwrap_or(0);
    let families: Vec<String> = {
        let mut names: Vec<String> = exp
            .world
            .store
            .metric_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        names.sort();
        names.truncate(24);
        names
    };
    let mut schedule = CrashSchedule::new(seed, 0.05, drill_nodes);
    let mut acked: Vec<(String, i64, f64)> = Vec::new();
    let mut attempted = 0usize;
    let mut refused = 0usize;
    let mut crashes = 0usize;
    let mut restarts = 0usize;
    let mut replayed_wal_bytes = 0usize;
    let mut caught_up_records = 0usize;
    let mut max_lag = 0.0f64;
    for round in 0..rounds {
        match schedule.decide() {
            Some(NodeFault::Crash { node }) if cluster.kill_node(node) => crashes += 1,
            Some(NodeFault::Crash { .. }) => {}
            Some(NodeFault::Restart { node }) => {
                let report = cluster.restart_node(node);
                replayed_wal_bytes += report.replayed_wal_bytes;
                caught_up_records += report.caught_up_records;
                restarts += 1;
            }
            None => {}
        }
        let ts = base_ts + 1_000 * (round as i64 + 1);
        for family in &families {
            let labels = Labels::from_pairs([(NAME_LABEL, family.as_str()), ("instance", "drill-0")]);
            attempted += 1;
            match cluster.append(labels, Sample::new(ts, round as f64)) {
                Ok(_) => acked.push((family.clone(), ts, round as f64)),
                Err(ClusterError::Unavailable { .. }) => refused += 1,
                Err(e) => panic!("write drill append failed hard: {e}"),
            }
        }
        max_lag = max_lag.max(cluster.replication_lag_seconds());
    }
    // Bring every node back (replaying durable WALs) before auditing.
    for node in cluster.down_nodes() {
        let report = cluster.restart_node(node);
        replayed_wal_bytes += report.replayed_wal_bytes;
        caught_up_records += report.caught_up_records;
        restarts += 1;
    }
    let mut verified = 0usize;
    for (family, ts, value) in &acked {
        let store = cluster
            .resolve(std::slice::from_ref(family), false)
            .expect("post-drill resolve");
        let found = store
            .series_for(family)
            .iter()
            .any(|s| s.samples().iter().any(|p| p.timestamp_ms == *ts && p.value == *value));
        if found {
            verified += 1;
        }
    }
    let lost = acked.len() - verified;
    eprintln!(
        "  {} acked / {attempted} attempted ({refused} refused), {crashes} crashes, {restarts} restarts, {} reships — {lost} lost",
        acked.len(),
        cluster.reships()
    );
    assert_eq!(lost, 0, "acked-write loss: {lost} acknowledged writes unreadable");
    let write_drill = WriteDrill {
        nodes: drill_nodes,
        attempted,
        acked: acked.len(),
        refused_unavailable: refused,
        acked_verified: verified,
        acked_lost: lost,
        crashes,
        restarts,
        failovers: cluster.failovers(),
        reships: cluster.reships(),
        replayed_wal_bytes,
        caught_up_records,
        max_replication_lag_seconds: max_lag,
    };
    failover_latencies.extend(cluster.take_failover_latencies().iter().map(|&m| m as f64));

    // ---- Phase 4: query drill (kill a primary mid-burst, drain) ----
    let qnodes = 3;
    let burst = (n_questions * 2).min(48);
    eprintln!("phase 4: query drill — {burst}-request burst on {qnodes} nodes, kill mid-burst…");
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(qnodes)));
    cluster.load_from(&exp.world.store).expect("cluster load");
    let mut prototype = exp.copilot(Experiment::gpt4());
    prototype.attach_store_resolver(cluster.clone() as Arc<dyn StoreResolver>);
    let service = QueryService::spawn(
        &prototype,
        Experiment::gpt4,
        ServeConfig {
            workers: 2.min(parallelism),
            queue_depth: burst,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );
    let mut tickets = Vec::new();
    let mut shed_sync = 0usize;
    for (i, q) in exp.questions.iter().cycle().take(burst).enumerate() {
        match service.submit(QueryRequest::new(
            format!("tenant-{}", i % 3),
            &q.text,
            exp.world.eval_ts,
        )) {
            Ok(t) => tickets.push(t),
            Err(_) => shed_sync += 1,
        }
        if i == burst / 3 {
            cluster.kill_node(0);
        }
    }
    let accepted = tickets.len();
    let drill_obs = service.obs().clone();
    service.shutdown(); // drain-not-drop: every accepted ticket resolves
    let mut answered = 0usize;
    let mut shed_late = 0usize;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Answered(_) => answered += 1,
            ServeOutcome::Shed(_) => shed_late += 1,
        }
    }
    let all_resolved = answered + shed_late == accepted;
    eprintln!(
        "  accepted {accepted}, answered {answered}, shed {} — all resolved: {all_resolved}",
        shed_sync + shed_late
    );
    assert!(all_resolved, "drain dropped accepted tickets");
    assert!(answered > 0, "no accepted request produced an answer");
    // Every trace the drill finished must assemble into one rooted
    // tree, and the request that paid for the mid-burst promotion must
    // have been tail-sampled by the flight recorder.
    let orphan_spans: usize = drill_obs
        .tracer()
        .recent(burst * 2)
        .iter()
        .filter(|t| t.finished)
        .map(|t| t.orphan_count())
        .sum();
    assert_eq!(orphan_spans, 0, "query drill produced orphan spans");
    let retained_failed_over = drill_obs.recorder().retained_for("failed_over").len();
    assert!(
        retained_failed_over >= 1,
        "no failed-over trace retained: the mid-burst kill left no span evidence"
    );
    std::fs::create_dir_all("results").expect("create results/");
    let trace_dump_path = "results/TRACES_shard_failover.json".to_string();
    let dumped = drill_obs
        .recorder()
        .dump(std::path::Path::new(&trace_dump_path))
        .expect("dump trace trees");
    eprintln!(
        "  flight recorder: {dumped} trace trees retained ({retained_failed_over} failed-over) -> {trace_dump_path}"
    );
    let query_drill = QueryDrill {
        nodes: qnodes,
        submitted: burst,
        accepted,
        answered,
        shed: shed_sync + shed_late,
        all_accepted_resolved: all_resolved,
        failovers: cluster.failovers(),
        retained_failed_over,
        orphan_spans,
    };
    failover_latencies.extend(cluster.take_failover_latencies().iter().map(|&m| m as f64));

    // ---- Phase 5: rejoin + fail-back -------------------------------
    eprintln!("phase 5: rejoin drill — kill, write through failover, restart, fail back…");
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(4)));
    cluster.load_from(&exp.world.store).expect("cluster load");
    let family = families.first().expect("drill family").clone();
    let shard = cluster.shard_for(&family);
    let old_primary = cluster.primary_of(shard);
    assert!(cluster.kill_node(old_primary));
    let writes_while_down = if quick { 16 } else { 64 };
    let mut rejoin_acked = Vec::new();
    for i in 0..writes_while_down {
        let ts = base_ts + 1_000 * (i as i64 + 1);
        let labels = Labels::from_pairs([(NAME_LABEL, family.as_str()), ("instance", "rejoin-0")]);
        cluster
            .append(labels, Sample::new(ts, i as f64))
            .expect("write through failover");
        rejoin_acked.push((ts, i as f64));
    }
    failover_latencies.extend(cluster.take_failover_latencies().iter().map(|&m| m as f64));
    let report = cluster.restart_node(old_primary);
    assert!(
        report.replayed_wal_bytes > 0,
        "rejoin replayed no durable WAL bytes"
    );
    assert!(
        report.caught_up_records >= writes_while_down,
        "rejoin caught up {} records, expected at least {writes_while_down}",
        report.caught_up_records
    );
    // Fail back: kill the promoted successor; the rejoined node must
    // serve the shard with every write intact.
    let successor = cluster.primary_of(shard);
    assert_ne!(successor, old_primary, "failover never moved the primary");
    assert!(cluster.kill_node(successor));
    let store = cluster
        .resolve(std::slice::from_ref(&family), false)
        .expect("fail-back resolve");
    let failback_verified = rejoin_acked.iter().all(|(ts, value)| {
        store
            .series_for(&family)
            .iter()
            .any(|s| s.samples().iter().any(|p| p.timestamp_ms == *ts && p.value == *value))
    });
    assert!(failback_verified, "fail-back lost writes made while the old primary was down");
    failover_latencies.extend(cluster.take_failover_latencies().iter().map(|&m| m as f64));
    eprintln!(
        "  rejoin replayed {} WAL bytes, caught up {} records, fail-back verified",
        report.replayed_wal_bytes, report.caught_up_records
    );
    let rejoin = RejoinDrill {
        writes_while_down,
        replayed_wal_bytes: report.replayed_wal_bytes,
        caught_up_records: report.caught_up_records,
        failback_verified,
    };

    failover_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(
        !failover_latencies.is_empty(),
        "the drill never exercised a failover"
    );
    let failover_latency = FailoverLatency {
        count: failover_latencies.len(),
        p50_micros: percentile(&failover_latencies, 0.50),
        p99_micros: percentile(&failover_latencies, 0.99),
        max_micros: failover_latencies.last().copied().unwrap_or(0.0),
    };
    eprintln!(
        "failover detection→takeover: {} events, p50 {:.0}µs, p99 {:.0}µs",
        failover_latency.count, failover_latency.p50_micros, failover_latency.p99_micros
    );

    let artifact = ShardFailoverArtifact {
        bench: "shard_failover".to_string(),
        quick,
        seed,
        available_parallelism: parallelism,
        questions: n_questions,
        baseline_correct,
        baseline_ex_percent: 100.0 * baseline_correct as f64 / n_questions.max(1) as f64,
        baseline_qps,
        sweep,
        write_drill,
        query_drill,
        rejoin,
        failover_latency,
        trace_dump_path,
    };
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_shard_failover.json";
    std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap()).expect("write artifact");
    eprintln!("wrote {path}");
    println!("{}", serde_json::to_string_pretty(&artifact).unwrap());
}

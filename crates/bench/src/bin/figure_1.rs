//! Reproduces **Figure 1**: side-by-side comparison of a bare chat
//! model (Figure 1a) and DIO copilot (Figure 1b) on a sample operator
//! question about PDU sessions.
//!
//! The paper's figure shows ChatGPT failing to produce a relevant,
//! grounded answer, while the copilot lists the relevant metrics with
//! descriptions, the query it will run, and a numerically accurate
//! answer plus a dashboard.
//!
//! ```text
//! cargo run --release -p dio-bench --bin figure_1
//! ```

use dio_bench::Experiment;
use dio_dashboard::render_ascii;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();
    let question = "How many PDU sessions are currently active at the SMF?";

    // Figure 1a: the bare chat model.
    let direct = exp.direct(Experiment::gpt4());
    println!("===== Figure 1a — bare chat model =====\n");
    println!("Q: {question}\n");
    println!("{}\n", direct.chat_response(question));

    // Figure 1b: DIO copilot.
    let mut dio = exp.copilot(Experiment::gpt4());
    let response = dio.ask(question, exp.world.eval_ts);
    println!("===== Figure 1b — DIO copilot =====\n");
    println!("{}", response.render());

    if let Some(d) = &response.dashboard {
        println!("{}", render_ascii(d, dio.engine(), 48));
    }
}

//! `model_gateway` — measure the model-plane gateway against the
//! plain serving tier on a duplicate-heavy question mix.
//!
//! Operator question streams are heavily redundant: the same handful
//! of questions arrives rephrased, re-cased, and re-punctuated from
//! many tenants and auto-refreshing dashboards. The gateway exploits
//! that redundancy in three layers — singleflight coalescing of
//! concurrent identicals, bounded-delay batching of overlapping model
//! calls (shared prompt prefix billed once), and a semantic answer
//! cache serving embedding neighbors above a similarity floor.
//!
//! Phases:
//!
//! 1. **sequential probe** — a lone copilot answers every unique
//!    question (ground truth + per-ask cost/latency calibration), then
//!    every candidate paraphrase; a paraphrase is only admitted into
//!    the schedule when its fresh-computed correctness matches the
//!    original's (so EX parity below is structural, not lucky);
//! 2. **baseline** — the duplicate-heavy schedule through
//!    [`QueryService::spawn`] (answer cache on, no gateway);
//! 3. **gateway** — the same schedule through
//!    [`QueryService::spawn_gateway`];
//! 4. **deadline drill** — an undersized gateway service takes a burst
//!    under a tight calibrated deadline; traces are audited for model
//!    calls after a lapse and answers past the budget.
//!
//! Gates: EX delta exactly 0 between the passes, ≥ 3x fewer upstream
//! model calls, ≥ 2x lower cost per answered question, zero healthy
//! answers past a lapsed deadline, zero model calls after a lapse.
//!
//! Flags: `--quick` (small world), `--concurrency=N` (default 8),
//! `--seed=S` (schedule shuffle seed).
//!
//! Writes `results/BENCH_gateway.json`.

use dio_bench::Experiment;
use dio_benchmark::eval::numeric_match;
use dio_benchmark::WorldConfig;
use dio_llm::{BatchExpander, FoundationModel, ModelProfile, SimulatedModel};
use dio_obs::{TraceRecord, TraceStatus};
use dio_serve::{
    BrownoutConfig, GatewayConfig, QueryRequest, QueryService, ServeConfig, ServeOutcome,
    ShedReason, TenantPolicy,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::{Duration, Instant};

const TENANTS: [&str; 4] = ["noc-east", "noc-west", "core-eng", "dashboards"];
/// Punctuation-only paraphrase suffixes: same content words (identical
/// embedding, cosine 1.0) but distinct normalized cache keys.
const PARAPHRASE_SUFFIXES: [&str; 3] = [" ?", " ??", " ???"];
/// Deadline-drill calibration (same scheme as `overload_drill`).
const DEADLINE_MULT: u32 = 3;
const DEADLINE_FLOOR: Duration = Duration::from_millis(40);
const AUDIT_GRACE_MICROS: u64 = 25_000;

/// One schedule entry: a question text plus the unique it derives from
/// (for scoring against that unique's reference).
#[derive(Clone)]
struct Entry {
    text: String,
    unique: usize,
    class: &'static str,
}

#[derive(Debug, Clone, Serialize)]
struct PassPanel {
    pass: String,
    requests: usize,
    answered: usize,
    shed: usize,
    correct: usize,
    ex_percent: f64,
    wall_seconds: f64,
    qps: f64,
    /// Upstream model calls actually made (baseline: every pipeline
    /// inference; gateway: batched calls leaving the gateway).
    model_calls: f64,
    cost_cents: f64,
    cost_cents_per_answer: f64,
    answer_cache_hits: usize,
    semantic_hits: usize,
    coalesced: usize,
    /// Submit-to-reply latency (queue wait + service time).
    p50_micros: f64,
    p95_micros: f64,
    p99_micros: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BatchingPanel {
    upstream_calls: f64,
    batches: usize,
    flushes: usize,
    mean_flush_size: f64,
    flush_full: usize,
    flush_due: usize,
    flush_deadline: usize,
    prefix_tokens_saved: usize,
    prefix_saved_cents: f64,
}

#[derive(Debug, Clone, Serialize)]
struct SingleflightPanel {
    leaders: u64,
    followers: u64,
    abandoned: u64,
    timeouts: u64,
}

#[derive(Debug, Clone, Serialize)]
struct SemanticPanel {
    hits: u64,
    misses: u64,
    rejects: u64,
    invalidations: u64,
    floor: f32,
}

#[derive(Debug, Clone, Serialize)]
struct DeadlinePanel {
    deadline_micros: u64,
    requests: usize,
    answered_ok: usize,
    answered_degraded: usize,
    shed: usize,
    /// Healthy answers delivered after their own budget had lapsed
    /// (gated to 0).
    late_healthy_answers: usize,
    /// `model_call` trace events recorded after a `deadline_exceeded`
    /// event on the same trace (gated to 0).
    model_calls_after_lapse: usize,
    deadline_exceeded_traces: usize,
    /// Items the gateway failed locally because their deadline lapsed
    /// in its queue (never sent upstream).
    queue_lapsed: f64,
    /// Flush-log conservation: batched + lapsed items must equal the
    /// requests the gateway admitted.
    flush_log_entries: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ClassCount {
    class: String,
    count: usize,
}

#[derive(Debug, Clone, Serialize)]
struct GatewayArtifact {
    bench: String,
    quick: bool,
    concurrency: usize,
    seed: u64,
    uniques: usize,
    paraphrase_candidates: usize,
    paraphrases_admitted: usize,
    schedule_len: usize,
    schedule_mix: Vec<ClassCount>,
    passes: Vec<PassPanel>,
    batching: BatchingPanel,
    singleflight: SingleflightPanel,
    semantic: SemanticPanel,
    deadline: DeadlinePanel,
    model_call_reduction: f64,
    cost_per_answer_reduction: f64,
    ex_delta_gateway_vs_baseline: i64,
}

fn flag_value(name: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(&format!("--{name}=")).map(str::to_string))
}

fn percentile(sorted_micros: &[f64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx]
}

fn upstream() -> Box<dyn FoundationModel> {
    Box::new(BatchExpander::new(SimulatedModel::new(
        ModelProfile::gpt4_sim(),
    )))
}

/// Audit finished traces: once `deadline_exceeded` is on a trace no
/// `model_call` may follow it. Returns `(after_lapse, lapsed_traces)`.
fn audit_deadline_work(traces: &[TraceRecord]) -> (usize, usize) {
    let mut after_lapse = 0usize;
    let mut lapsed_traces = 0usize;
    for t in traces.iter().filter(|t| t.finished) {
        if t.status == TraceStatus::DeadlineExceeded {
            lapsed_traces += 1;
        }
        let mut lapsed = false;
        for e in &t.events {
            match e.name.as_str() {
                "deadline_exceeded" => lapsed = true,
                "model_call" if lapsed => after_lapse += 1,
                _ => {}
            }
        }
    }
    (after_lapse, lapsed_traces)
}

/// Submit the schedule in two waves (uniques first, duplicates after —
/// so the caches the duplicates target actually exist), score EX
/// against each entry's unique reference, and read the pass's model
/// calls + cost off the service.
fn run_schedule(
    service: &QueryService,
    schedule: &[Entry],
    uniques: usize,
    refs: &[f64],
    eval_ts: i64,
    pass: &str,
    gateway: bool,
) -> PassPanel {
    let started = Instant::now();
    let mut answered = 0usize;
    let mut refused = 0usize;
    let mut shed = 0usize;
    let mut correct = 0usize;
    let mut cache_hits = 0usize;
    let mut semantic_hits = 0usize;
    let mut coalesced = 0usize;
    let mut latencies: Vec<f64> = Vec::with_capacity(schedule.len());
    {
        let mut score = |entry: &Entry, outcome: ServeOutcome| match outcome {
            ServeOutcome::Answered(a) => {
                answered += 1;
                latencies.push((a.queue_wait + a.service_time).as_micros() as f64);
                if a.answer_cache_hit {
                    cache_hits += 1;
                }
                if a.semantic_cache_hit {
                    semantic_hits += 1;
                }
                if a.coalesced {
                    coalesced += 1;
                }
                if a.response
                    .numeric_answer
                    .map(|v| numeric_match(v, refs[entry.unique]))
                    .unwrap_or(false)
                {
                    correct += 1;
                }
            }
            ServeOutcome::Shed(_) => shed += 1,
        };
        for wave in [&schedule[..uniques], &schedule[uniques..]] {
            let tickets: Vec<_> = wave
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let tenant = TENANTS[i % TENANTS.len()];
                    (
                        e,
                        service
                            .submit(QueryRequest::new(tenant, &e.text, eval_ts))
                            .ok(),
                    )
                })
                .collect();
            for (e, t) in tickets {
                match t {
                    Some(t) => score(e, t.wait()),
                    None => refused += 1,
                }
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();
    shed += refused;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let snap = service.obs().registry().snapshot();
    let (model_calls, cost_cents) = if gateway {
        let ledger = service
            .gateway_stats()
            .expect("gateway plane present")
            .ledger;
        (
            snap.total("dio_gateway_upstream_calls_total"),
            ledger.total_usd() * 100.0,
        )
    } else {
        (
            snap.total("dio_llm_model_calls_total"),
            snap.total("dio_llm_cost_cents_total"),
        )
    };
    PassPanel {
        pass: pass.to_string(),
        requests: schedule.len(),
        answered,
        shed,
        correct,
        ex_percent: 100.0 * correct as f64 / schedule.len().max(1) as f64,
        wall_seconds: wall,
        qps: answered as f64 / wall.max(1e-9),
        model_calls,
        cost_cents,
        cost_cents_per_answer: cost_cents / answered.max(1) as f64,
        answer_cache_hits: cache_hits,
        semantic_hits,
        coalesced,
        p50_micros: percentile(&latencies, 0.50),
        p95_micros: percentile(&latencies, 0.95),
        p99_micros: percentile(&latencies, 0.99),
    }
}

fn open_config(workers: usize, depth: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_depth: depth,
        tenant: TenantPolicy::unlimited(),
        // Occupancy pins at 1.0 under burst submission by design;
        // brownout degradation would muddy the EX-parity comparison.
        brownout: BrownoutConfig::disabled(),
        ..ServeConfig::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let concurrency: usize = flag_value("concurrency")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let seed: u64 = flag_value("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x9a7e_ca11);

    // Question budget: `uniques` seed the schedule, `extras` feed the
    // coalescing burst, `drill` feeds the deadline phase.
    let (uniques, extras, drill_n, dup_target) = if quick {
        (16usize, 4usize, 12usize, 48usize)
    } else {
        (60usize, 8usize, 40usize, 200usize)
    };
    eprintln!("building world ({})…", if quick { "quick" } else { "full" });
    let config = if quick {
        WorldConfig::small()
    } else {
        WorldConfig::default()
    };
    let exp = Experiment::with_config(config, uniques + extras + drill_n);
    let eval_ts = exp.world.eval_ts;
    let unique_qs = &exp.questions[..uniques];
    let extra_qs = &exp.questions[uniques..uniques + extras];
    let drill_qs = &exp.questions[uniques + extras..];

    // Phase 1: sequential ground truth + paraphrase calibration. The
    // simulated models hash the *raw* question text into their noise,
    // so a re-punctuated paraphrase freshly computed by the baseline
    // can land on a different answer than its original. Admitting only
    // parity-checked paraphrases makes "EX delta 0" a structural
    // property of the schedule rather than a coin flip: the gateway
    // serves the neighbor's answer, the baseline recomputes — both
    // score identically either way.
    eprintln!("sequential probe ({uniques} uniques)…");
    let mut sequential = exp.copilot(Experiment::gpt4());
    let seq_started = Instant::now();
    let refs: Vec<f64> = exp.questions.iter().map(|q| q.reference.numeric).collect();
    let original_ok: Vec<bool> = unique_qs
        .iter()
        .map(|q| {
            sequential
                .ask(&q.text, eval_ts)
                .numeric_answer
                .map(|v| numeric_match(v, q.reference.numeric))
                .unwrap_or(false)
        })
        .collect();
    let per_ask = seq_started.elapsed() / uniques.max(1) as u32;
    let mut calibrator = exp.copilot(Experiment::gpt4());
    let mut admitted: Vec<(usize, String)> = Vec::new();
    let mut candidates = 0usize;
    for (i, q) in unique_qs.iter().enumerate() {
        for suffix in PARAPHRASE_SUFFIXES {
            let text = format!("{}{}", q.text.trim_end_matches('?').trim_end(), suffix);
            candidates += 1;
            let ok = calibrator
                .ask(&text, eval_ts)
                .numeric_answer
                .map(|v| numeric_match(v, q.reference.numeric))
                .unwrap_or(false);
            if ok == original_ok[i] {
                admitted.push((i, text));
            }
        }
    }
    eprintln!(
        "  {}/{} paraphrases admitted ({:?}/ask)",
        admitted.len(),
        candidates,
        per_ask
    );

    // The duplicate-heavy schedule: every unique once (wave 1), then a
    // shuffled mix of exact repeats, noisy-cased repeats, admitted
    // paraphrases, and a concurrent-identical burst on the held-out
    // extras (wave 2).
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut schedule: Vec<Entry> = unique_qs
        .iter()
        .enumerate()
        .map(|(i, q)| Entry {
            text: q.text.clone(),
            unique: i,
            class: "unique",
        })
        .collect();
    // Duplicate budget: everything between the unique wave and the
    // coalescing burst. Paraphrases get at most two thirds of it so
    // exact and noisy-cased repeats (answer-cache traffic) stay in the
    // mix.
    let dup_budget = dup_target.saturating_sub(uniques + 4 * extras);
    let mut dups: Vec<Entry> = Vec::new();
    for (i, text) in admitted.iter().take(2 * dup_budget / 3) {
        dups.push(Entry {
            text: text.clone(),
            unique: *i,
            class: "paraphrase",
        });
    }
    while dups.len() < dup_budget {
        let i = rng.gen_range(0..uniques);
        let q = &unique_qs[i];
        dups.push(if rng.gen_bool(0.5) {
            Entry {
                text: q.text.clone(),
                unique: i,
                class: "exact",
            }
        } else {
            Entry {
                text: format!("  {}  ", q.text.to_uppercase()),
                unique: i,
                class: "noisy",
            }
        });
    }
    dups.shuffle(&mut rng);
    // Coalescing burst: 4 identical copies of each held-out extra,
    // submitted back-to-back — they miss every cache and overlap in
    // flight, so the gateway pass coalesces where the baseline
    // recomputes.
    for (j, q) in extra_qs.iter().enumerate() {
        for _ in 0..4 {
            dups.push(Entry {
                text: q.text.clone(),
                unique: uniques + j,
                class: "burst",
            });
        }
    }
    schedule.extend(dups);
    let n = schedule.len();
    let schedule_mix: Vec<ClassCount> = ["unique", "exact", "noisy", "paraphrase", "burst"]
        .iter()
        .map(|c| ClassCount {
            class: c.to_string(),
            count: schedule.iter().filter(|e| e.class == *c).count(),
        })
        .collect();
    eprintln!(
        "schedule: {n} requests over {} uniques ({})",
        uniques + extras,
        schedule_mix
            .iter()
            .map(|c| format!("{} {}", c.count, c.class))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Phase 2: the plain serving tier.
    eprintln!("baseline pass (concurrency {concurrency})…");
    let baseline_service = QueryService::spawn(
        &exp.copilot(Experiment::gpt4()),
        Experiment::gpt4,
        open_config(concurrency, n.max(64)),
    );
    let baseline = run_schedule(
        &baseline_service,
        &schedule,
        uniques,
        &refs,
        eval_ts,
        "baseline",
        false,
    );
    baseline_service.shutdown();
    eprintln!(
        "  baseline: EX {}/{}, {:.0} model calls, {:.2}¢, {:.2}s",
        baseline.correct, n, baseline.model_calls, baseline.cost_cents, baseline.wall_seconds
    );

    // Phase 3: the same schedule through the gateway.
    eprintln!("gateway pass…");
    let gateway_service = QueryService::spawn_gateway(
        &exp.copilot(Experiment::gpt4()),
        upstream(),
        open_config(concurrency, n.max(64)),
        GatewayConfig::default(),
    );
    let gateway = run_schedule(
        &gateway_service,
        &schedule,
        uniques,
        &refs,
        eval_ts,
        "gateway",
        true,
    );
    let stats = gateway_service
        .gateway_stats()
        .expect("gateway plane present");
    let sem_cfg = GatewayConfig::default().semantic.expect("default floor");
    gateway_service.shutdown();
    let flushes = stats.flush_log.len();
    let flushed_items: usize = stats.flush_log.iter().map(|f| f.size).sum();
    let batching = BatchingPanel {
        upstream_calls: gateway.model_calls,
        batches: stats.ledger.batches(),
        flushes,
        mean_flush_size: flushed_items as f64 / flushes.max(1) as f64,
        flush_full: stats
            .flush_log
            .iter()
            .filter(|f| f.trigger.label() == "full")
            .count(),
        flush_due: stats
            .flush_log
            .iter()
            .filter(|f| f.trigger.label() == "due")
            .count(),
        flush_deadline: stats
            .flush_log
            .iter()
            .filter(|f| f.trigger.label() == "deadline")
            .count(),
        prefix_tokens_saved: stats.ledger.prefix_tokens_saved(),
        prefix_saved_cents: stats
            .ledger
            .prefix_saved_usd(SimulatedModel::new(ModelProfile::gpt4_sim()).pricing())
            * 100.0,
    };
    let semantic = stats.semantic.expect("semantic layer on by default");
    eprintln!(
        "  gateway: EX {}/{}, {:.0} upstream calls, {:.2}¢, {:.2}s ({} semantic hits, {} coalesced, mean flush {:.2})",
        gateway.correct,
        n,
        gateway.model_calls,
        gateway.cost_cents,
        gateway.wall_seconds,
        gateway.semantic_hits,
        gateway.coalesced,
        batching.mean_flush_size
    );

    // Phase 4: tight-deadline burst through an undersized gateway
    // service; every answer and trace audited for post-lapse work.
    let drill_deadline = (per_ask * DEADLINE_MULT).max(DEADLINE_FLOOR);
    eprintln!("deadline drill ({drill_n} requests, deadline {drill_deadline:?})…");
    let drill_service = QueryService::spawn_gateway(
        &exp.copilot(Experiment::gpt4()),
        upstream(),
        ServeConfig {
            workers: 2,
            queue_depth: drill_n.max(16),
            default_deadline: drill_deadline,
            tenant: TenantPolicy::unlimited(),
            brownout: BrownoutConfig::disabled(),
            ..ServeConfig::default()
        },
        GatewayConfig::default(),
    );
    let drill_tickets: Vec<_> = drill_qs
        .iter()
        .enumerate()
        .map(|(i, q)| {
            drill_service
                .submit(QueryRequest::new(
                    TENANTS[i % TENANTS.len()],
                    &q.text,
                    eval_ts,
                ))
                .ok()
        })
        .collect();
    let mut answered_ok = 0usize;
    let mut answered_degraded = 0usize;
    let mut drill_shed = 0usize;
    let mut late_healthy = 0usize;
    let grace = Duration::from_micros(AUDIT_GRACE_MICROS);
    for t in drill_tickets {
        match t.map(|t| t.wait()) {
            Some(ServeOutcome::Answered(a)) => {
                if a.response.error.is_none() {
                    answered_ok += 1;
                    if a.queue_wait + a.service_time > drill_deadline + grace {
                        late_healthy += 1;
                    }
                } else {
                    answered_degraded += 1;
                }
            }
            Some(ServeOutcome::Shed(s)) => {
                assert!(
                    matches!(
                        s.reason,
                        ShedReason::DeadlineExpired | ShedReason::QueueFull
                    ),
                    "unexpected drill shed: {:?}",
                    s.reason
                );
                drill_shed += 1;
            }
            None => drill_shed += 1,
        }
    }
    let traces = drill_service.obs().tracer().recent(4096);
    let (after_lapse, lapsed_traces) = audit_deadline_work(&traces);
    let drill_stats = drill_service.gateway_stats().expect("gateway stats");
    let drill_snap = drill_service.obs().registry().snapshot();
    let queue_lapsed = drill_snap.total("dio_gateway_queue_lapsed_total");
    drill_service.shutdown();
    let deadline = DeadlinePanel {
        deadline_micros: drill_deadline.as_micros() as u64,
        requests: drill_n,
        answered_ok,
        answered_degraded,
        shed: drill_shed,
        late_healthy_answers: late_healthy,
        model_calls_after_lapse: after_lapse,
        deadline_exceeded_traces: lapsed_traces,
        queue_lapsed,
        flush_log_entries: drill_stats.flush_log.len(),
    };
    eprintln!(
        "  drill: {answered_ok} ok, {answered_degraded} degraded, {drill_shed} shed, {lapsed_traces} lapsed traces, {after_lapse} post-lapse model calls, {late_healthy} late answers"
    );

    // Assemble + gate.
    let call_reduction = baseline.model_calls / gateway.model_calls.max(1.0);
    let cost_reduction = baseline.cost_cents_per_answer / gateway.cost_cents_per_answer.max(1e-9);
    let ex_delta = gateway.correct as i64 - baseline.correct as i64;
    let artifact = GatewayArtifact {
        bench: "model_gateway".into(),
        quick,
        concurrency,
        seed,
        uniques: uniques + extras,
        paraphrase_candidates: candidates,
        paraphrases_admitted: admitted.len(),
        schedule_len: n,
        schedule_mix,
        passes: vec![baseline.clone(), gateway.clone()],
        batching,
        singleflight: SingleflightPanel {
            leaders: stats.leaders,
            followers: stats.followers,
            abandoned: stats.abandoned,
            timeouts: stats.timeouts,
        },
        semantic: SemanticPanel {
            hits: semantic.hits,
            misses: semantic.misses,
            rejects: semantic.rejects,
            invalidations: semantic.invalidations,
            floor: sem_cfg.floor,
        },
        deadline: deadline.clone(),
        model_call_reduction: call_reduction,
        cost_per_answer_reduction: cost_reduction,
        ex_delta_gateway_vs_baseline: ex_delta,
    };
    let path = std::path::PathBuf::from("results").join("BENCH_gateway.json");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("serialise artifact"),
    )
    .expect("write artifact");
    eprintln!("wrote {}", path.display());

    assert_eq!(
        ex_delta, 0,
        "EX parity violated: baseline {} vs gateway {}",
        baseline.correct, gateway.correct
    );
    assert_eq!(baseline.shed + gateway.shed, 0, "open-config pass shed");
    assert!(
        call_reduction >= 3.0,
        "model calls only reduced {call_reduction:.2}x ({:.0} -> {:.0}), need 3x",
        baseline.model_calls,
        gateway.model_calls
    );
    assert!(
        cost_reduction >= 2.0,
        "cost/answer only reduced {cost_reduction:.2}x ({:.4}¢ -> {:.4}¢), need 2x",
        baseline.cost_cents_per_answer,
        gateway.cost_cents_per_answer
    );
    assert!(
        gateway.semantic_hits > 0,
        "no duplicate was served semantically"
    );
    assert_eq!(
        deadline.late_healthy_answers, 0,
        "a healthy answer was delivered past its lapsed deadline"
    );
    assert_eq!(
        deadline.model_calls_after_lapse, 0,
        "a model call was recorded after the deadline lapsed"
    );
    assert_eq!(stats.timeouts, 0, "a coalesced follower timed out");
    eprintln!(
        "model_gateway ok: calls {call_reduction:.2}x down, cost/answer {cost_reduction:.2}x down, EX delta {ex_delta}"
    );
}

//! **Ablation: retrieval quality.** Compares exact flat search (the
//! paper's FAISS setup), approximate IVF search at several probe
//! widths, and random context — quantifying how much of DIO's accuracy
//! the semantic-search component carries (§3.2's core contribution).
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_retrieval
//! ```

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_copilot::{CopilotConfig, RetrievalMode};

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    let modes: Vec<(&str, RetrievalMode)> = vec![
        ("flat (exact)", RetrievalMode::Flat),
        ("ivf nlist=64 nprobe=16", RetrievalMode::Ivf { nlist: 64, nprobe: 16 }),
        ("ivf nlist=64 nprobe=4", RetrievalMode::Ivf { nlist: 64, nprobe: 4 }),
        ("ivf nlist=64 nprobe=1", RetrievalMode::Ivf { nlist: 64, nprobe: 1 }),
        ("hnsw (graph search)", RetrievalMode::Hnsw { ef_search: 64 }),
        ("random context", RetrievalMode::Random { seed: 7 }),
    ];

    println!("\nAblation — retrieval quality (paper: exact FAISS cosine search)\n");
    println!("{:<24} | {:>6}", "mode", "EX (%)");
    println!("{:-<24}-+-------", "");
    let mut artifact = BenchArtifact::new("ablation_retrieval");
    for (label, mode) in modes {
        let mut dio = exp.copilot_with_config(
            Experiment::gpt4(),
            CopilotConfig {
                retrieval: mode,
                generate_dashboards: false,
                ..CopilotConfig::default()
            },
        );
        let r = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
        println!("{:<24} | {:>6.1}", label, r.ex_percent);
        artifact.push(label, &r);
        artifact.set_stages(&dio.obs().registry().snapshot());
    }
    artifact.write();
}

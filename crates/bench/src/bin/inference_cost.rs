//! Reproduces the **§4.2.5 inference-cost analysis**: mean cost per
//! query for DIO copilot under GPT-4 vs GPT-3.5-turbo pricing.
//!
//! Paper numbers: 4.25 ¢/query (GPT-4) dropping to 0.35 ¢ (GPT-3.5)
//! "without significant reduction in performance".
//!
//! ```text
//! cargo run --release -p dio-bench --bin inference_cost
//! ```

use dio_baselines::NlQuerySystem;
use dio_bench::Experiment;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();

    println!("\n§4.2.5 — Inference cost (paper: GPT-4 4.25¢, GPT-3.5-turbo 0.35¢)\n");
    println!(
        "{:<22} | {:>10} | {:>12} | {:>12} | {:>6}",
        "Model", "cents/query", "prompt tok", "completion", "EX (%)"
    );
    println!("{:-<22}-+-{:-<11}-+-{:-<12}-+-{:-<12}-+-------", "", "", "", "");

    for (label, model) in [
        ("GPT-4 sim", Experiment::gpt4()),
        ("GPT-3.5-turbo sim", Experiment::gpt35()),
    ] {
        let mut dio = exp.copilot(model);
        let mut correct = 0usize;
        for q in &exp.questions {
            let a = dio.answer(&q.text, exp.world.eval_ts);
            if a.numeric_answer
                .map(|v| {
                    (v - q.reference.numeric).abs()
                        <= 1e-9 * q.reference.numeric.abs().max(1e-300)
                })
                .unwrap_or(false)
            {
                correct += 1;
            }
        }
        let meter = dio.meter();
        let n = meter.queries() as f64;
        println!(
            "{:<22} | {:>10.2} | {:>12.0} | {:>12.0} | {:>6.1}",
            label,
            meter.mean_cents_per_query(),
            meter.usage().prompt_tokens as f64 / n,
            meter.usage().completion_tokens as f64 / n,
            correct as f64 * 100.0 / exp.questions.len() as f64,
        );
    }
    println!(
        "\n(The paper's claim is the *ratio*: switching to GPT-3.5-turbo cuts cost by an\n\
         order of magnitude with a modest accuracy drop. Absolute cents differ because\n\
         the synthetic catalog's counter names tokenize longer than the vendor's.)"
    );
}

//! **Ablation: fault injection × recovery policy.** Wraps the GPT-4
//! simulation in [`dio_llm::FaultyModel`] and sweeps the per-call fault
//! probability with the self-repair loop enabled vs disabled, measuring
//! EX at each point. The fault schedule is seeded, so every cell of the
//! table replays exactly.
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_faults
//! ```
//!
//! Writes the table to `results/ablation_faults.txt` as well as stdout.

use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::{evaluate, WorldConfig};
use dio_copilot::{CopilotConfig, RecoveryPolicy};
use dio_llm::{FaultConfig, FaultyModel, ModelProfile, SimulatedModel};
use std::fs;

/// Seed for every fault schedule in the sweep (per-cell schedules stay
/// aligned because the wrapped RNG never sees pipeline state).
const FAULT_SEED: u64 = 0xfa_017;

fn main() {
    eprintln!("building world…");
    // The compact world keeps the 2×4 sweep tractable; fault handling
    // does not depend on catalog scale.
    let exp = Experiment::with_config(WorldConfig::small(), 60);

    let probabilities = [0.0, 0.1, 0.3, 0.5];
    let mut rows = Vec::new();
    let mut artifact = BenchArtifact::new("ablation_faults");
    for &p in &probabilities {
        let mut cells = Vec::new();
        for recovery_on in [true, false] {
            let label = if recovery_on { "recovery" } else { "baseline" };
            eprintln!("p={p:.1} {label}…");
            let model = Box::new(FaultyModel::new(
                SimulatedModel::new(ModelProfile::gpt4_sim()),
                FaultConfig::with_probability(FAULT_SEED, p),
            ));
            let config = CopilotConfig {
                generate_dashboards: false,
                recovery: if recovery_on {
                    RecoveryPolicy::default()
                } else {
                    RecoveryPolicy::disabled()
                },
                ..CopilotConfig::default()
            };
            let mut dio = exp.copilot_with_config(model, config);
            let report = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);
            cells.push((report.ex_percent, report.repairs_total, report.degraded_count));
            artifact.push(&format!("p={p:.1} {label}"), &report);
            artifact.set_stages(&dio.obs().registry().snapshot());
        }
        rows.push((p, cells));
    }

    let mut table = String::new();
    table.push_str("Ablation — fault injection x recovery policy\n");
    table.push_str(&format!(
        "({} questions, seed {FAULT_SEED:#x}; EX in %, repairs/degraded are totals)\n\n",
        exp.questions.len()
    ));
    table.push_str(&format!(
        "{:>7} | {:>8} {:>8} {:>9} | {:>8} {:>9}\n",
        "p-fault", "EX(rec)", "repairs", "degraded", "EX(none)", "delta"
    ));
    table.push_str(&format!("{}\n", "-".repeat(62)));
    for (p, cells) in &rows {
        let (ex_rec, repairs, degraded) = cells[0];
        let (ex_none, _, _) = cells[1];
        table.push_str(&format!(
            "{:>7.1} | {:>8.1} {:>8} {:>9} | {:>8.1} {:>9.1}\n",
            p,
            ex_rec,
            repairs,
            degraded,
            ex_none,
            ex_rec - ex_none
        ));
    }

    print!("\n{table}");
    fs::create_dir_all("results").expect("create results dir");
    fs::write("results/ablation_faults.txt", &table).expect("write table");
    eprintln!("\nwrote results/ablation_faults.txt");
    artifact.write();
}

//! **Ablation: the expert-feedback loop** (§3.4 / §5.2). Runs the
//! benchmark, files an issue for every miss, has experts resolve a
//! budget of them by enriching the relevant metrics' documentation with
//! the operators' phrasing, and re-runs — "fostering a system that
//! improves with usage".
//!
//! ```text
//! cargo run --release -p dio-bench --bin ablation_feedback
//! ```

use dio_baselines::NlQuerySystem;
use dio_bench::artifact::BenchArtifact;
use dio_bench::Experiment;
use dio_benchmark::evaluate;
use dio_copilot::CopilotConfig;
use dio_feedback::Contribution;

fn main() {
    eprintln!("building world…");
    let exp = Experiment::standard();
    let config = CopilotConfig {
        generate_dashboards: false,
        ..CopilotConfig::default()
    };
    let mut dio = exp.copilot_with_config(Experiment::gpt4(), config);

    eprintln!("first pass…");
    let before = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);

    // Operators raise their hands on failures; experts resolve a budget
    // of issues by appending the operator phrasing to the vendor docs of
    // the metrics the question actually needs.
    let budget = 40usize;
    let mut resolved = 0usize;
    for outcome in before.outcomes.iter().filter(|o| !o.correct) {
        if resolved >= budget {
            break;
        }
        let q = &exp.questions[outcome.id];
        let issue = dio.tracker().len() as u64;
        let _ = issue;
        let response = dio.ask(&q.text, exp.world.eval_ts);
        let issue = dio.request_expert_help(&response);
        for metric_name in &q.reference.metrics {
            if let Some(def) = exp.world.catalog.get(metric_name) {
                let mut enriched = def.clone();
                enriched.description = format!(
                    "{} Operators also ask about this as: {}",
                    def.description, q.text
                );
                // Re-filing per metric is allowed only once per issue;
                // contribute the first metric through the issue and the
                // rest directly as expert metrics.
                let _ = dio.resolve_issue(
                    issue,
                    "expert:alice",
                    Contribution::MetricDoc(enriched),
                );
                break;
            }
        }
        resolved += 1;
        if resolved % 10 == 0 {
            eprintln!("  resolved {resolved} issues…");
        }
    }

    eprintln!("second pass…");
    let after = evaluate(&mut dio, &exp.questions, exp.world.eval_ts);

    println!("\nAblation — expert feedback loop ({} issues resolved)\n", resolved);
    println!("{:<14} | {:>6}", "pass", "EX (%)");
    println!("---------------+-------");
    println!("{:<14} | {:>6.1}", "before", before.ex_percent);
    println!("{:<14} | {:>6.1}", "after", after.ex_percent);
    println!(
        "\nissues filed: {}, system: {}",
        dio.tracker().len(),
        dio.system_name()
    );

    let mut artifact = BenchArtifact::new("ablation_feedback");
    artifact.push("before-feedback", &before);
    artifact.push("after-feedback", &after);
    artifact.set_stages(&dio.obs().registry().snapshot());
    artifact.write();
}

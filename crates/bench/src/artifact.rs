//! Machine-readable benchmark artifacts.
//!
//! Every table/figure binary prints its human-readable table *and*
//! writes a `results/BENCH_<name>.json` companion so downstream
//! tooling (plots, regression dashboards) never scrapes stdout. The
//! JSON carries per-system execution accuracy and cost from the
//! [`EvalReport`]s plus per-stage latency percentiles pulled from the
//! copilot's own `dio-obs` stage-duration histogram.

use dio_benchmark::EvalReport;
use dio_obs::{SeriesValue, Snapshot};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// One evaluated system's headline numbers.
#[derive(Debug, Clone, Serialize)]
pub struct SystemResult {
    /// Sweep-cell label chosen by the binary (e.g. `top_k=29`).
    pub label: String,
    /// The system's self-reported name.
    pub system: String,
    /// Execution accuracy in percent.
    pub ex_percent: f64,
    /// Questions evaluated.
    pub total: usize,
    /// Questions answered correctly.
    pub correct: usize,
    /// Mean inference cost per question, US cents.
    pub mean_cost_cents: f64,
    /// Total repair rounds across the run.
    pub repairs_total: usize,
    /// Questions answered by the degraded fallback.
    pub degraded_count: usize,
}

impl SystemResult {
    /// Project an [`EvalReport`] into its artifact row.
    pub fn from_report(label: &str, r: &EvalReport) -> Self {
        SystemResult {
            label: label.to_string(),
            system: r.system.clone(),
            ex_percent: r.ex_percent,
            total: r.total,
            correct: r.correct,
            mean_cost_cents: r.mean_cost_cents,
            repairs_total: r.repairs_total,
            degraded_count: r.degraded_count,
        }
    }
}

/// Latency percentiles for one pipeline stage, estimated from the
/// copilot's `dio_copilot_stage_duration_micros` histogram.
#[derive(Debug, Clone, Serialize)]
pub struct StageLatency {
    /// Stage name (`retrieve`, `generate`, `execute`, …).
    pub stage: String,
    /// Observations recorded.
    pub count: u64,
    /// Estimated 50th percentile, microseconds.
    pub p50_micros: f64,
    /// Estimated 90th percentile, microseconds.
    pub p90_micros: f64,
    /// Estimated 99th percentile, microseconds.
    pub p99_micros: f64,
}

/// Pull per-stage latency percentiles out of a registry snapshot.
/// Stages that never ran (zero observations) are omitted — their
/// quantiles would be NaN, which JSON cannot carry.
pub fn stage_latencies(snapshot: &Snapshot) -> Vec<StageLatency> {
    let mut out = Vec::new();
    let Some(fam) = snapshot.family(dio_copilot::obs::STAGE_DURATION_NAME) else {
        return out;
    };
    for series in &fam.series {
        let SeriesValue::Histogram(h) = &series.value else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        let stage = series
            .labels
            .iter()
            .find(|(k, _)| k == "stage")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        out.push(StageLatency {
            stage,
            count: h.count,
            p50_micros: h.quantile(0.5),
            p90_micros: h.quantile(0.9),
            p99_micros: h.quantile(0.99),
        });
    }
    out
}

/// The full artifact one benchmark binary writes.
#[derive(Debug, Clone, Serialize)]
pub struct BenchArtifact {
    /// Benchmark name (`table_3a`, `ablation_faults`, …).
    pub bench: String,
    /// One row per evaluated system / sweep cell.
    pub systems: Vec<SystemResult>,
    /// Stage latency percentiles from the copilot's observability
    /// registry (empty when no copilot registry was sampled).
    pub stage_latency_micros: Vec<StageLatency>,
}

impl BenchArtifact {
    /// Start an artifact for `bench`.
    pub fn new(bench: &str) -> Self {
        BenchArtifact {
            bench: bench.to_string(),
            systems: Vec::new(),
            stage_latency_micros: Vec::new(),
        }
    }

    /// Add one evaluated system.
    pub fn push(&mut self, label: &str, report: &EvalReport) {
        self.systems.push(SystemResult::from_report(label, report));
    }

    /// Record stage latencies from a copilot's registry snapshot.
    pub fn set_stages(&mut self, snapshot: &Snapshot) {
        self.stage_latency_micros = stage_latencies(snapshot);
    }

    /// Write `results/BENCH_<bench>.json` (creating `results/`),
    /// returning the path.
    pub fn write(&self) -> PathBuf {
        let path = PathBuf::from("results").join(format!("BENCH_{}.json", self.bench));
        fs::create_dir_all("results").expect("create results dir");
        let json = serde_json::to_string_pretty(self).expect("serialise artifact");
        fs::write(&path, json).expect("write artifact");
        eprintln!("wrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_obs::{Buckets, Registry};

    #[test]
    fn stage_latencies_skip_empty_series_and_stay_finite() {
        let reg = Registry::new();
        let h = reg.histogram_with(
            dio_copilot::obs::STAGE_DURATION_NAME,
            "help",
            &Buckets::latency_micros(),
            &[("stage", "retrieve")],
        );
        // An empty series alongside a populated one.
        reg.histogram_with(
            dio_copilot::obs::STAGE_DURATION_NAME,
            "help",
            &Buckets::latency_micros(),
            &[("stage", "dashboard")],
        );
        for v in [120.0, 250.0, 900.0, 4000.0] {
            h.observe(v);
        }
        let stages = stage_latencies(&reg.snapshot());
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage, "retrieve");
        assert_eq!(stages[0].count, 4);
        assert!(stages[0].p50_micros.is_finite());
        assert!(stages[0].p50_micros <= stages[0].p90_micros);
        assert!(stages[0].p90_micros <= stages[0].p99_micros);
    }

    #[test]
    fn artifact_serialises_to_valid_json() {
        let mut a = BenchArtifact::new("unit_test");
        a.systems.push(SystemResult {
            label: "cell".into(),
            system: "dio".into(),
            ex_percent: 66.0,
            total: 200,
            correct: 132,
            mean_cost_cents: 4.25,
            repairs_total: 3,
            degraded_count: 1,
        });
        // The vendored serde_json only serialises; assert on the text.
        let json = serde_json::to_string_pretty(&a).unwrap();
        assert!(json.contains("\"bench\": \"unit_test\""), "{json}");
        assert!(json.contains("\"ex_percent\": 66"), "{json}");
        assert!(json.contains("\"mean_cost_cents\": 4.25"), "{json}");
    }
}

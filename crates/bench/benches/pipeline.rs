//! End-to-end copilot latency: one `ask` through retrieval, the
//! simulated model, sandboxed execution, and dashboard generation —
//! the per-question cost of the whole Figure 2 architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use dio_benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio_copilot::{CopilotBuilder, CopilotConfig};
use dio_llm::{ModelProfile, SimulatedModel};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let world = OperatorWorld::build(WorldConfig::small());
    let exemplars = fewshot_exemplars(&world.catalog);
    let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(exemplars)
        .build();
    let ts = world.eval_ts;

    c.bench_function("pipeline/ask_success_rate", |b| {
        b.iter(|| {
            copilot.ask(
                black_box("What is the initial registration procedure success rate at the AMF?"),
                ts,
            )
        })
    });

    c.bench_function("pipeline/ask_current_gauge", |b| {
        b.iter(|| {
            copilot.ask(
                black_box("How many PDU sessions are currently active at the SMF?"),
                ts,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);

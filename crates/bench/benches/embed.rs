//! Microbenchmarks for the embedding substrate: corpus fitting and
//! per-text embedding throughput (the §3.2 offline pass and the online
//! query-embedding cost).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dio_catalog::generator::{generate_catalog, CatalogConfig};
use dio_embed::{Embedder, EmbedderConfig};
use std::hint::black_box;

fn corpus() -> Vec<String> {
    let catalog = generate_catalog(&CatalogConfig {
        slice_variants: false,
        sbi_counters: false,
        ..CatalogConfig::default()
    });
    catalog
        .metrics
        .iter()
        .map(|m| m.text_sample())
        .collect()
}

fn bench_embed(c: &mut Criterion) {
    let texts = corpus();
    let embedder = Embedder::fit(&EmbedderConfig::default(), texts.iter().map(|s| s.as_str()));
    let question = "What is the initial registration procedure success rate at the AMF?";

    c.bench_function("embed/fit_corpus_2k_docs", |b| {
        b.iter_batched(
            || texts.clone(),
            |t| Embedder::fit(&EmbedderConfig::default(), t.iter().map(|s| s.as_str())),
            BatchSize::LargeInput,
        )
    });

    c.bench_function("embed/embed_question", |b| {
        b.iter(|| embedder.embed(black_box(question)))
    });

    c.bench_function("embed/embed_description", |b| {
        b.iter(|| embedder.embed(black_box(&texts[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_embed
}
criterion_main!(benches);

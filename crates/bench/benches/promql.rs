//! Microbenchmarks for the PromQL engine: parsing, instant queries,
//! and range queries over the synthesised operator store.

use criterion::{criterion_group, criterion_main, Criterion};
use dio_benchmark::{OperatorWorld, WorldConfig};
use std::hint::black_box;

fn bench_promql(c: &mut Criterion) {
    let world = OperatorWorld::build(WorldConfig::small());
    let engine = world.reference_engine();
    let ts = world.eval_ts;
    let rate_q = "sum(rate(amfcc_n1_initial_registration_attempt[5m]))";
    let ratio_q = "100 * sum(amfcc_n1_initial_registration_success) / sum(amfcc_n1_initial_registration_attempt)";

    c.bench_function("promql/parse_ratio", |b| {
        b.iter(|| dio_promql::parse(black_box(ratio_q)).unwrap())
    });

    c.bench_function("promql/instant_sum", |b| {
        b.iter(|| {
            engine
                .instant_query(black_box("sum(amfcc_n1_initial_registration_attempt)"), ts)
                .unwrap()
        })
    });

    c.bench_function("promql/instant_rate", |b| {
        b.iter(|| engine.instant_query(black_box(rate_q), ts).unwrap())
    });

    c.bench_function("promql/instant_ratio", |b| {
        b.iter(|| engine.instant_query(black_box(ratio_q), ts).unwrap())
    });

    c.bench_function("promql/range_rate_60steps", |b| {
        b.iter(|| {
            engine
                .range_query(black_box(rate_q), ts - 3_600_000, ts, 60_000)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_promql
}
criterion_main!(benches);

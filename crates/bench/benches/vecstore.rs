//! Microbenchmarks for the vector store (the FAISS substitute): exact
//! flat search vs approximate IVF probing over a catalog-scale corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use dio_embed::{Embedder, EmbedderConfig, Vector};
use dio_catalog::generator::{generate_catalog, CatalogConfig};
use dio_vecstore::{FlatIndex, IvfConfig, IvfIndex, VectorIndex};
use std::hint::black_box;

fn vectors() -> (Vec<Vector>, Vector) {
    let catalog = generate_catalog(&CatalogConfig::default());
    let texts: Vec<String> = catalog.metrics.iter().map(|m| m.text_sample()).collect();
    let embedder = Embedder::fit(&EmbedderConfig::default(), texts.iter().map(|s| s.as_str()));
    let vectors: Vec<Vector> = texts.iter().map(|t| embedder.embed(t)).collect();
    let query = embedder.embed("How many PDU sessions are currently active at the SMF?");
    (vectors, query)
}

fn bench_vecstore(c: &mut Criterion) {
    let (vectors, query) = vectors();
    let n = vectors.len();
    let flat = FlatIndex::from_vectors(384, vectors.clone());
    let ivf = IvfIndex::train(
        384,
        IvfConfig {
            nlist: 64,
            nprobe: 4,
            ..IvfConfig::default()
        },
        vectors.clone(),
    );

    c.bench_function(&format!("vecstore/flat_top29_n{n}"), |b| {
        b.iter(|| flat.search(black_box(&query), 29))
    });

    c.bench_function(&format!("vecstore/ivf_nprobe4_top29_n{n}"), |b| {
        b.iter(|| ivf.search(black_box(&query), 29))
    });

    c.bench_function("vecstore/ivf_train_nlist64", |b| {
        b.iter(|| {
            IvfIndex::train(
                384,
                IvfConfig {
                    nlist: 64,
                    nprobe: 4,
                    ..IvfConfig::default()
                },
                vectors.clone(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vecstore
}
criterion_main!(benches);

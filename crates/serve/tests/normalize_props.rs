//! Property tests for answer-cache key normalization: questions that
//! differ only in whitespace or letter case must map to the same key,
//! and normalization must be a projection (idempotent, canonical).

use dio_serve::normalize_question;
use proptest::prelude::*;

proptest! {
    /// Normalizing twice changes nothing (the codomain is the set of
    /// fixed points).
    #[test]
    fn idempotent(q in ".{0,80}") {
        let once = normalize_question(&q);
        prop_assert_eq!(normalize_question(&once), once);
    }

    /// The canonical form never carries leading/trailing whitespace,
    /// runs of spaces, or uppercase ASCII.
    #[test]
    fn canonical_shape(q in ".{0,80}") {
        let n = normalize_question(&q);
        prop_assert!(!n.starts_with(' '));
        prop_assert!(!n.ends_with(' '));
        prop_assert!(!n.contains("  "));
        prop_assert!(!n.contains('\t'));
        prop_assert!(!n.contains('\n'));
        prop_assert!(!n.chars().any(|c| c.is_ascii_uppercase()));
    }

    /// Whitespace placement is irrelevant: padding the word joints
    /// with arbitrary whitespace yields the same cache key.
    #[test]
    fn whitespace_variants_collide(
        a in "[a-zA-Z0-9?%]{1,12}",
        b in "[a-zA-Z0-9?%]{1,12}",
        c in "[a-zA-Z0-9?%]{1,12}",
        pad in "[ \t\n]{0,4}",
    ) {
        let plain = format!("{a} {b} {c}");
        let padded = format!("{pad}{a}{pad} \t{b}\n {c}{pad}");
        prop_assert_eq!(normalize_question(&plain), normalize_question(&padded));
    }

    /// Letter case is irrelevant: upper-, lower-, and mixed-case
    /// renderings of a question share one cache key.
    #[test]
    fn case_variants_collide(q in "[a-zA-Z0-9 ?%]{0,60}") {
        let lower = normalize_question(&q.to_lowercase());
        prop_assert_eq!(normalize_question(&q.to_uppercase()), lower.clone());
        prop_assert_eq!(normalize_question(&q), lower);
    }

    /// Normalization preserves the word sequence itself — it never
    /// merges, drops, or reorders words.
    #[test]
    fn words_preserved(q in "[a-zA-Z0-9 ?%]{0,60}") {
        let n = normalize_question(&q);
        let expect: Vec<String> =
            q.split_whitespace().map(|w| w.to_lowercase()).collect();
        let got: Vec<String> =
            n.split_whitespace().map(str::to_string).collect();
        prop_assert_eq!(got, expect);
    }
}

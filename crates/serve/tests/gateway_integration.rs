//! End-to-end tests of the query service spawned with the model-plane
//! gateway: cold-pass answer parity through the batching front-end,
//! singleflight coalescing under concurrent duplicates, semantic
//! serving of punctuation paraphrases, and generation invalidation of
//! the semantic layer.

use dio_benchmark::{
    fewshot_exemplars, generate_benchmark, BenchmarkQuestion, OperatorWorld, WorldConfig,
};
use dio_copilot::{CopilotBuilder, DioCopilot};
use dio_llm::{
    BatchExpander, Completion, CompletionRequest, FoundationModel, ModelError, ModelProfile,
    Pricing, SimulatedModel,
};
use dio_serve::{GatewayConfig, QueryRequest, QueryService, ServeConfig, TenantPolicy};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Duration;

struct Setup {
    world: OperatorWorld,
    questions: Vec<BenchmarkQuestion>,
}

fn setup() -> &'static Setup {
    static CELL: OnceLock<Setup> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = OperatorWorld::build(WorldConfig::small());
        let questions = generate_benchmark(&world, 10, 0x6a7e_11ed);
        Setup { world, questions }
    })
}

fn upstream() -> Box<dyn FoundationModel> {
    Box::new(BatchExpander::new(SimulatedModel::new(
        ModelProfile::gpt4_sim(),
    )))
}

fn prototype() -> DioCopilot {
    let s = setup();
    CopilotBuilder::new(s.world.domain_db(), s.world.store.clone())
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .exemplars(fewshot_exemplars(&s.world.catalog))
        .build()
}

fn open_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_depth: 256,
        tenant: TenantPolicy::unlimited(),
        ..ServeConfig::default()
    }
}

/// A model that holds every completion for a fixed pause — long enough
/// that concurrent duplicates reliably overlap in flight.
struct SlowModel {
    inner: Box<dyn FoundationModel>,
    pause: Duration,
}

impl FoundationModel for SlowModel {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn pricing(&self) -> Pricing {
        self.inner.pricing()
    }
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        std::thread::sleep(self.pause);
        self.inner.complete(request)
    }
}

#[test]
fn gateway_cold_pass_matches_the_sequential_pipeline() {
    let s = setup();
    let mut sequential = prototype();
    let expected: Vec<_> = s
        .questions
        .iter()
        .map(|q| sequential.ask(&q.text, s.world.eval_ts).numeric_answer)
        .collect();

    let service = QueryService::spawn_gateway(
        &prototype(),
        upstream(),
        open_config(4),
        GatewayConfig::default(),
    );
    let tickets: Vec<_> = s
        .questions
        .iter()
        .map(|q| {
            service
                .submit(QueryRequest::new("ops-a", &q.text, s.world.eval_ts))
                .expect("open config must admit")
        })
        .collect();
    for (ticket, want) in tickets.into_iter().zip(&expected) {
        let outcome = ticket.wait();
        let a = outcome.answer().expect("gateway pass answered");
        // Batched prompts reconstruct byte-identically upstream, so
        // the answers match the unbatched sequential pipeline exactly.
        assert_eq!(a.response.numeric_answer, *want);
    }
    let stats = service.gateway_stats().expect("gateway plane present");
    assert!(stats.ledger.queries() > 0, "gateway billed no model calls");
    service.shutdown();
}

#[test]
fn concurrent_duplicates_coalesce_onto_one_computation() {
    let s = setup();
    let question = &s.questions[0].text;
    let service = QueryService::spawn_gateway(
        &prototype(),
        Box::new(SlowModel {
            inner: upstream(),
            pause: Duration::from_millis(40),
        }),
        open_config(4),
        GatewayConfig::default(),
    );
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            service
                .submit(QueryRequest::new(
                    format!("tenant-{i}"),
                    question,
                    s.world.eval_ts,
                ))
                .expect("admitted")
        })
        .collect();
    let answers: Vec<_> = tickets
        .into_iter()
        .map(|t| match t.wait() {
            dio_serve::ServeOutcome::Answered(a) => a,
            dio_serve::ServeOutcome::Shed(shed) => panic!("unexpected shed: {shed:?}"),
        })
        .collect();
    // Every duplicate observed the same answer…
    let first = &answers[0].response.numeric_answer;
    assert!(answers.iter().all(|a| a.response.numeric_answer == *first));
    // …and at most a couple of full pipeline runs happened: the rest
    // coalesced as followers or hit the answer cache the leader filled.
    let fresh = answers
        .iter()
        .filter(|a| !a.coalesced && !a.answer_cache_hit && !a.semantic_cache_hit)
        .count();
    assert!(fresh <= 2, "expected ≤2 fresh computations, got {fresh}");
    let stats = service.gateway_stats().unwrap();
    // With a 40ms-per-call upstream and 4 workers on 8 identical jobs,
    // the overlap guarantees real followers.
    assert!(
        stats.followers >= 1,
        "expected singleflight followers, got {stats:?}"
    );
    assert_eq!(stats.timeouts, 0);
    service.shutdown();
}

#[test]
fn punctuation_paraphrase_is_served_semantically() {
    let s = setup();
    let question = &s.questions[0].text;
    // Same content words, different normalized key: the exact caches
    // miss but the embedding is identical (cosine 1.0).
    let paraphrase = format!("{} ?", question.trim_end_matches('?'));
    assert_ne!(
        dio_serve::normalize_question(question),
        dio_serve::normalize_question(&paraphrase)
    );
    let service = QueryService::spawn_gateway(
        &prototype(),
        upstream(),
        open_config(2),
        GatewayConfig::default(),
    );
    let original = service
        .ask("t", question, s.world.eval_ts)
        .answer()
        .expect("original answered")
        .response
        .clone();
    let served = service.ask("t", &paraphrase, s.world.eval_ts);
    let a = served.answer().expect("paraphrase answered");
    assert!(
        a.semantic_cache_hit,
        "expected a semantic hit for {paraphrase:?}"
    );
    assert!(!a.answer_cache_hit);
    // A semantic hit serves the *neighbor's* answer verbatim.
    assert_eq!(a.response.numeric_answer, original.numeric_answer);
    assert_eq!(a.response.query, original.query);
    let stats = service.gateway_stats().unwrap();
    let sem = stats.semantic.expect("semantic layer enabled");
    assert_eq!(sem.hits, 1);
    service.shutdown();
}

#[test]
fn generation_bump_invalidates_the_semantic_layer() {
    let s = setup();
    let question = &s.questions[1].text;
    let paraphrase = format!("{} ?", question.trim_end_matches('?'));
    let proto = prototype();
    let generation = proto.generation_handle();
    let service = QueryService::spawn_gateway(
        &proto,
        upstream(),
        open_config(2),
        GatewayConfig::default(),
    );
    service
        .ask("t", question, s.world.eval_ts)
        .answer()
        .expect("original answered");
    // Knowledge generation bump: the same atomic that invalidates the
    // answer and embed caches must clear semantic neighbors too.
    generation.fetch_add(1, Ordering::Release);
    let served = service.ask("t", &paraphrase, s.world.eval_ts);
    let a = served.answer().expect("paraphrase answered");
    assert!(
        !a.semantic_cache_hit,
        "stale-generation neighbor must not serve"
    );
    let stats = service.gateway_stats().unwrap();
    let sem = stats.semantic.expect("semantic layer enabled");
    assert_eq!(sem.hits, 0);
    assert!(sem.invalidations >= 1);
    service.shutdown();
}

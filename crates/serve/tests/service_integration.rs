//! End-to-end tests of the query service over a small operator world:
//! concurrency parity with the sequential pipeline, warm-cache
//! behaviour, generation invalidation, fair-share throttling, and the
//! overload/shutdown guarantees (shed explicitly, never drop).

use dio_benchmark::{fewshot_exemplars, generate_benchmark, BenchmarkQuestion, OperatorWorld, WorldConfig};
use dio_copilot::{CopilotBuilder, DioCopilot};
use dio_llm::{FoundationModel, ModelProfile, SimulatedModel};
use dio_serve::{
    QueryRequest, QueryService, ServeConfig, ServeOutcome, ShedReason, TenantPolicy,
};
use std::sync::OnceLock;
use std::time::Duration;

struct Setup {
    world: OperatorWorld,
    questions: Vec<BenchmarkQuestion>,
}

fn setup() -> &'static Setup {
    static CELL: OnceLock<Setup> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = OperatorWorld::build(WorldConfig::small());
        let questions = generate_benchmark(&world, 12, 0xbe9c_4a11);
        Setup { world, questions }
    })
}

fn model() -> Box<dyn FoundationModel> {
    Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
}

fn prototype() -> DioCopilot {
    let s = setup();
    CopilotBuilder::new(s.world.domain_db(), s.world.store.clone())
        .model(model())
        .exemplars(fewshot_exemplars(&s.world.catalog))
        .build()
}

fn open_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_depth: 256,
        tenant: TenantPolicy::unlimited(),
        ..ServeConfig::default()
    }
}

#[test]
fn concurrent_answers_match_sequential_pipeline() {
    let s = setup();
    let mut sequential = prototype();
    let expected: Vec<_> = s
        .questions
        .iter()
        .map(|q| sequential.ask(&q.text, s.world.eval_ts).numeric_answer)
        .collect();

    let service = QueryService::spawn(&prototype(), || model(), open_config(4));
    let tickets: Vec<_> = s
        .questions
        .iter()
        .map(|q| {
            service
                .submit(QueryRequest::new("ops-a", &q.text, s.world.eval_ts))
                .expect("open config must admit")
        })
        .collect();
    for (ticket, want) in tickets.into_iter().zip(&expected) {
        match ticket.wait() {
            ServeOutcome::Answered(a) => assert_eq!(a.response.numeric_answer, *want),
            ServeOutcome::Shed(s) => panic!("unexpected shed: {s:?}"),
        }
    }
    service.shutdown();
}

#[test]
fn warm_pass_is_served_from_the_answer_cache() {
    let s = setup();
    let service = QueryService::spawn(&prototype(), || model(), open_config(2));
    for q in &s.questions {
        assert!(service.ask("t", &q.text, s.world.eval_ts).answer().is_some());
    }
    let cold = service.answer_cache_stats();
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.misses as usize, s.questions.len());

    // Second pass: same questions, messier phrasing — all hits.
    for q in &s.questions {
        let noisy = format!("  {}  ", q.text.to_uppercase());
        let out = service.ask("t", &noisy, s.world.eval_ts);
        let a = out.answer().expect("warm pass answered");
        assert!(a.answer_cache_hit, "expected cache hit for {noisy:?}");
    }
    let warm = service.answer_cache_stats();
    assert_eq!(warm.hits as usize, s.questions.len());
    // The embedding cache only sees answer-cache misses: one per
    // unique question from the cold pass.
    assert_eq!(service.embed_cache_stats().misses as usize, s.questions.len());
    service.shutdown();
}

#[test]
fn knowledge_generation_bump_invalidates_caches() {
    let s = setup();
    let proto = prototype();
    let generation = proto.generation_handle();
    let service = QueryService::spawn(&proto, || model(), open_config(2));
    let q = &s.questions[0].text;

    assert!(service.ask("t", q, s.world.eval_ts).answer().is_some());
    let first = service.ask("t", q, s.world.eval_ts);
    assert!(first.answer().unwrap().answer_cache_hit);

    // A feedback-loop catalog update bumps the shared generation …
    generation.fetch_add(1, std::sync::atomic::Ordering::AcqRel);

    // … so the next lookup must re-run the pipeline, not serve stale.
    let after = service.ask("t", q, s.world.eval_ts);
    assert!(!after.answer().unwrap().answer_cache_hit);
    assert!(service.answer_cache_stats().invalidations >= 1);
    service.shutdown();
}

#[test]
fn tenant_throttling_is_isolated_per_tenant() {
    let s = setup();
    let mut config = open_config(1);
    config.tenant = TenantPolicy {
        rate_per_sec: 0.001, // effectively no refill during the test
        burst: 2.0,
    };
    let service = QueryService::spawn(&prototype(), || model(), config);
    let q = &s.questions[0].text;

    let mut throttled = 0;
    let mut tickets = Vec::new();
    for _ in 0..5 {
        match service.submit(QueryRequest::new("noisy", q, s.world.eval_ts)) {
            Ok(t) => tickets.push(t),
            Err(shed) => {
                assert_eq!(shed.reason, ShedReason::TenantThrottle);
                assert!(shed.retry_after > Duration::ZERO);
                throttled += 1;
            }
        }
    }
    assert_eq!(tickets.len(), 2, "burst admits exactly two");
    assert_eq!(throttled, 3);

    // A different tenant is unaffected by the noisy one.
    assert!(service
        .submit(QueryRequest::new("quiet", q, s.world.eval_ts))
        .is_ok());
    for t in tickets {
        assert!(t.wait().answer().is_some());
    }
    service.shutdown();
}

#[test]
fn undersized_queue_sheds_overload_without_dropping_accepted_requests() {
    let s = setup();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 2,
        tenant: TenantPolicy::unlimited(),
        ..ServeConfig::default()
    };
    let service = QueryService::spawn(&prototype(), || model(), config);

    let total = 30;
    let mut tickets = Vec::new();
    let mut shed_sync = 0;
    for i in 0..total {
        let q = &s.questions[i % s.questions.len()].text;
        match service.submit(QueryRequest::new("burst", q, s.world.eval_ts)) {
            Ok(t) => tickets.push(t),
            Err(shed) => {
                assert_eq!(shed.reason, ShedReason::QueueFull);
                shed_sync += 1;
            }
        }
    }
    assert!(shed_sync > 0, "a 2-deep queue must shed a 30-burst");
    assert_eq!(service.shed_count(), shed_sync);

    // Every accepted request resolves — answered or explicitly shed,
    // never silently dropped.
    let mut answered = 0;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Answered(_) => answered += 1,
            ServeOutcome::Shed(s) => panic!("accepted request shed: {s:?}"),
        }
    }
    assert_eq!(answered + shed_sync as usize, total);

    // The sheds are visible in the shared registry under the reason
    // label the dashboards alert on.
    let snap = service.obs().registry().snapshot();
    assert_eq!(snap.total("dio_serve_shed_total") as u64, shed_sync);
    service.shutdown();
}

#[test]
fn queue_refusal_hint_grows_under_load() {
    let s = setup();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 2,
        tenant: TenantPolicy::unlimited(),
        ..ServeConfig::default()
    };
    let service = QueryService::spawn(&prototype(), || model(), config);
    let mut tickets = Vec::new();
    let mut worst_hint = Duration::ZERO;
    for i in 0..30 {
        let q = &s.questions[i % s.questions.len()].text;
        match service.submit(QueryRequest::new("burst", q, s.world.eval_ts)) {
            Ok(t) => tickets.push(t),
            Err(shed) => worst_hint = worst_hint.max(shed.retry_after),
        }
    }
    // The hint is derived from the backlog, not a constant: with the
    // 2-deep queue full it must exceed the empty-queue base (10ms).
    assert!(
        worst_hint > Duration::from_millis(10),
        "queue-full retry_after must grow with the backlog, got {worst_hint:?}"
    );
    for t in tickets {
        assert!(t.wait().answer().is_some());
    }
    service.shutdown();
}

#[test]
fn sustained_overload_engages_the_brownout_ladder() {
    let s = setup();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 4,
        tenant: TenantPolicy::unlimited(),
        ..ServeConfig::default()
    };
    let service = QueryService::spawn(&prototype(), || model(), config);
    // Hammer until 40 requests are accepted, retrying each refusal:
    // the queue stays saturated, so every worker pickup observes high
    // occupancy and the ladder must engage.
    let mut tickets = Vec::new();
    while tickets.len() < 40 {
        let q = &s.questions[tickets.len() % s.questions.len()].text;
        if let Ok(t) = service.submit(QueryRequest::new("burst", q, s.world.eval_ts)) {
            tickets.push(t);
        }
    }
    for t in tickets {
        // Accepted requests still resolve — degraded under brownout,
        // never lost.
        assert!(t.wait().answer().is_some());
    }
    let snap = service.obs().registry().snapshot();
    assert!(
        snap.total("dio_serve_brownout_transitions_total") >= 1.0,
        "sustained saturation must step the ladder at least once"
    );
    service.shutdown();
}

#[test]
fn shed_rung_refuses_only_while_a_backlog_exists() {
    let s = setup();
    // A ladder that descends on every pickup: queue_high 0.0 makes
    // every observation pressured, so four pickups latch the top rung.
    let config = ServeConfig {
        workers: 1,
        queue_depth: 4,
        tenant: TenantPolicy::unlimited(),
        brownout: dio_serve::BrownoutConfig {
            queue_high: 0.0,
            step_up_after: 1,
            ..dio_serve::BrownoutConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = QueryService::spawn(&prototype(), || model(), config);

    // Enough accepted work to walk the ladder to Shed.
    let mut tickets = Vec::new();
    while tickets.len() < 8 {
        let q = &s.questions[tickets.len() % s.questions.len()].text;
        if let Ok(t) = service.submit(QueryRequest::new("burst", q, s.world.eval_ts)) {
            tickets.push(t);
        }
    }
    for t in tickets {
        assert!(t.wait().answer().is_some());
    }
    assert_eq!(
        service.brownout_level(),
        dio_serve::BrownoutLevel::Shed,
        "every-pickup escalation must reach the top rung"
    );

    // The backlog has fully drained (every ticket above resolved), so
    // the Shed rung must not latch the service shut: the next arrival
    // is admitted — it is what hands the controller its recovery
    // observations — and is served, if degraded.
    let q = &s.questions[0].text;
    let out = service.ask("after-drain", q, s.world.eval_ts);
    assert!(
        out.answer().is_some(),
        "an empty-queue service refused work at the Shed rung: {out:?}"
    );
    service.shutdown();
}

#[test]
fn zero_budget_requests_are_shed_as_expired_not_dropped() {
    let s = setup();
    let service = QueryService::spawn(&prototype(), || model(), open_config(1));
    let q = &s.questions[0].text;
    let ticket = service
        .submit_with_deadline(
            QueryRequest::new("t", q, s.world.eval_ts),
            Duration::ZERO,
        )
        .expect("zero budget is admitted, then expires in queue");
    match ticket.wait() {
        ServeOutcome::Shed(shed) => assert_eq!(shed.reason, ShedReason::DeadlineExpired),
        ServeOutcome::Answered(_) => {
            // Tolerated only if the worker dequeued it in the same
            // instant it was submitted — impossible with Duration::ZERO
            // since picked_up >= submitted == deadline.
            panic!("zero-budget request must expire");
        }
    }
    service.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests() {
    let s = setup();
    let service = QueryService::spawn(&prototype(), || model(), open_config(1));
    let tickets: Vec<_> = s.questions[..4]
        .iter()
        .map(|q| {
            service
                .submit(QueryRequest::new("t", &q.text, s.world.eval_ts))
                .unwrap()
        })
        .collect();
    service.shutdown();
    for t in tickets {
        assert!(
            t.wait().answer().is_some(),
            "shutdown must drain accepted requests"
        );
    }
}

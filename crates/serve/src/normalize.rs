//! Cache-key normalization for natural-language questions.
//!
//! The normalizer itself lives in [`dio_gateway::normalize`], below
//! this crate in the dependency order, because *two* planes key on it:
//! the serve tier's `(eval_ts, normalized question)` answer cache and
//! the gateway's singleflight coalescer. Re-exporting the one function
//! (rather than keeping a copy here) makes drift impossible — a
//! question that hits the normalized answer cache is, by construction,
//! the same key a concurrent duplicate coalesces on.

pub use dio_gateway::normalize_question;

#[cfg(test)]
mod tests {
    use super::*;

    /// The serve-tier contract the re-export must keep honoring.
    #[test]
    fn trims_collapses_and_casefolds() {
        assert_eq!(
            normalize_question("  What   is\tthe PRB\n utilization? "),
            "what is the prb utilization?"
        );
    }

    /// Regression for the one-normalizer invariant: the key the answer
    /// cache stores under and the key the singleflight coalescer joins
    /// on are the *same function applied to the same string*, so a
    /// coalesced follower always observes the leader's cache key.
    #[test]
    fn serve_and_gateway_share_one_normalizer() {
        let leader = "How many PDU sessions dropped?";
        let follower = "  how   many pdu sessions dropped? ";
        let serve_key = normalize_question(follower);
        let gateway_key = dio_gateway::normalize_question(follower);
        assert_eq!(serve_key, gateway_key);
        assert_eq!(serve_key, normalize_question(leader));
    }
}

//! The serving caches: a TTL + generation-stamped LRU.
//!
//! Two instances back the service (see `service.rs`):
//!
//! * the **answer cache**, keyed on `(eval_ts, normalized question)`,
//!   holding full [`dio_copilot::CopilotResponse`]s;
//! * the **embedding cache**, keyed on the normalized question alone,
//!   holding the question's embedding vector.
//!
//! Both are invalidated by the copilot's *knowledge generation*
//! counter: every feedback-loop catalog update bumps the shared
//! generation, and entries stamped with an older generation are
//! treated as misses and dropped on next access (the catalog text,
//! few-shot pool, and embedder fit all changed under them). A TTL
//! bounds staleness for deployments where the metric data itself
//! moves; `None` disables time-based expiry.
//!
//! Every cache event (hit, miss, eviction, generation invalidation,
//! TTL expiry) is counted in `dio_serve_cache_events_total` in the
//! shared dio-obs registry.

use dio_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-cache event counters, registered under
/// `dio_serve_cache_events_total{cache=<name>,event=...}`.
#[derive(Debug, Clone)]
struct CacheCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    expirations: Counter,
}

impl CacheCounters {
    fn register(registry: &Registry, cache: &str) -> Self {
        let counter = |event: &str| {
            registry.counter_with(
                "dio_serve_cache_events_total",
                "serving-cache events by cache and kind",
                &[("cache", cache), ("event", event)],
            )
        };
        CacheCounters {
            hits: counter("hit"),
            misses: counter("miss"),
            evictions: counter("evict"),
            invalidations: counter("invalidate"),
            expirations: counter("expire"),
        }
    }
}

/// A point-in-time summary of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable (includes invalidated and
    /// expired entries, which also bump their own counters).
    pub misses: u64,
    /// Entries dropped to make room (LRU).
    pub evictions: u64,
    /// Entries dropped because the knowledge generation moved.
    pub invalidations: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `1.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    generation: u64,
    inserted: Instant,
    last_used: u64,
}

#[derive(Debug)]
struct Inner<V> {
    map: HashMap<String, Entry<V>>,
    /// Monotonic access clock for LRU ordering (not wall time).
    clock: u64,
}

/// A bounded, thread-safe LRU with TTL and generation invalidation.
///
/// All methods take `&self`; a single mutex guards the map. Lookups
/// clone the value out, so `V` is typically an `Arc` or a cheap
/// aggregate. Capacity 0 disables caching entirely (every lookup is a
/// miss, inserts are dropped) — useful for A/B-ing the cache away.
#[derive(Debug)]
pub struct TtlLru<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    ttl: Option<Duration>,
    counters: CacheCounters,
}

impl<V: Clone> TtlLru<V> {
    /// Build a cache registering its counters as `cache=<name>`.
    pub fn new(
        registry: &Registry,
        name: &str,
        capacity: usize,
        ttl: Option<Duration>,
    ) -> Self {
        TtlLru {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            ttl,
            counters: CacheCounters::register(registry, name),
        }
    }

    /// Look up `key`, requiring the entry to carry `generation` and be
    /// within TTL as of now.
    pub fn get(&self, key: &str, generation: u64) -> Option<V> {
        self.get_at(key, generation, Instant::now())
    }

    /// [`TtlLru::get`] with an explicit clock (deterministic tests).
    pub fn get_at(&self, key: &str, generation: u64, now: Instant) -> Option<V> {
        enum Verdict {
            Absent,
            Stale,
            Expired,
            Live,
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let verdict = match inner.map.get(key) {
            None => Verdict::Absent,
            Some(e) if e.generation != generation => Verdict::Stale,
            Some(e)
                if self
                    .ttl
                    .is_some_and(|ttl| now.duration_since(e.inserted) > ttl) =>
            {
                Verdict::Expired
            }
            Some(_) => Verdict::Live,
        };
        match verdict {
            Verdict::Live => {
                let e = inner.map.get_mut(key).unwrap();
                e.last_used = clock;
                self.counters.hits.inc();
                Some(e.value.clone())
            }
            Verdict::Stale | Verdict::Expired => {
                inner.map.remove(key);
                if matches!(verdict, Verdict::Expired) {
                    self.counters.expirations.inc();
                } else {
                    self.counters.invalidations.inc();
                }
                self.counters.misses.inc();
                None
            }
            Verdict::Absent => {
                self.counters.misses.inc();
                None
            }
        }
    }

    /// Insert (or replace) `key`, stamped with `generation`.
    pub fn insert(&self, key: String, value: V, generation: u64) {
        self.insert_at(key, value, generation, Instant::now())
    }

    /// [`TtlLru::insert`] with an explicit clock (deterministic tests).
    pub fn insert_at(&self, key: String, value: V, generation: u64, now: Instant) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let replacing = inner.map.contains_key(&key);
        if !replacing && inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry. Linear scan: serving
            // caches are small (hundreds to a few thousand entries) and
            // eviction is off the hit path.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.counters.evictions.inc();
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                generation,
                inserted: now,
                last_used: clock,
            },
        );
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counts nothing; administrative reset).
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.value() as u64,
            misses: self.counters.misses.value() as u64,
            evictions: self.counters.evictions.value() as u64,
            invalidations: self.counters.invalidations.value() as u64,
            expirations: self.counters.expirations.value() as u64,
            len: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, ttl: Option<Duration>) -> TtlLru<String> {
        TtlLru::new(&Registry::new(), "test", capacity, ttl)
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let c = cache(4, None);
        c.insert("k".into(), "v".into(), 0);
        assert_eq!(c.get("k", 0), Some("v".to_string()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn generation_bump_invalidates() {
        let c = cache(4, None);
        c.insert("k".into(), "v".into(), 0);
        assert_eq!(c.get("k", 1), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 1, 1));
        // The stale entry is gone, not resurrected by asking for gen 0.
        assert_eq!(c.get("k", 0), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn ttl_expires_entries() {
        let c = cache(4, Some(Duration::from_secs(10)));
        let t0 = Instant::now();
        c.insert_at("k".into(), "v".into(), 0, t0);
        assert_eq!(c.get_at("k", 0, t0 + Duration::from_secs(5)), Some("v".into()));
        assert_eq!(c.get_at("k", 0, t0 + Duration::from_secs(11)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.expirations), (1, 1, 1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = cache(2, None);
        c.insert("a".into(), "1".into(), 0);
        c.insert("b".into(), "2".into(), 0);
        // Touch `a` so `b` becomes the victim.
        assert!(c.get("a", 0).is_some());
        c.insert("c".into(), "3".into(), 0);
        assert_eq!(c.len(), 2);
        assert!(c.get("a", 0).is_some());
        assert!(c.get("c", 0).is_some());
        assert_eq!(c.get("b", 0), None);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn replace_does_not_evict() {
        let c = cache(2, None);
        c.insert("a".into(), "1".into(), 0);
        c.insert("b".into(), "2".into(), 0);
        c.insert("a".into(), "1'".into(), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a", 0), Some("1'".into()));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = cache(0, None);
        c.insert("k".into(), "v".into(), 0);
        assert_eq!(c.get("k", 0), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_rate_computes() {
        let c = cache(4, None);
        c.insert("k".into(), "v".into(), 0);
        c.get("k", 0);
        c.get("absent", 0);
        let s = c.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}

//! # dio-serve
//!
//! The concurrent multi-tenant query service over the DIO copilot.
//!
//! The paper's copilot is a single-operator loop: one question in, one
//! answer out. A deployed analytics service fields many operators (and
//! dashboards auto-refreshing on their behalf) against one resident
//! copy of the telemetry, the catalog, and the vector index. This
//! crate adds that serving tier without taking on an async runtime:
//! plain `std::thread` workers, a mutex-and-condvar admission queue,
//! and `Arc`-shared read-only pipeline state.
//!
//! Layers, bottom to top:
//!
//! * [`normalize`] — cache-key normalization for NL questions;
//! * [`cache`] — the TTL + knowledge-generation LRU behind both the
//!   answer cache and the embedding cache;
//! * [`tenant`] — per-tenant fair-share token buckets;
//! * [`admission`] — the bounded earliest-deadline-first queue and the
//!   [`ShedReason`] taxonomy;
//! * [`brownout`] — the adaptive degradation ladder the service steps
//!   through under sustained pressure before it resorts to shedding;
//! * [`service`] — [`QueryService`]: worker pool, request path,
//!   instrumentation.
//!
//! Load shedding is explicit and observable: every refusal carries a
//! [`ShedReason`] plus a `retry_after` hint derived from live queue
//! pressure, and is counted in `dio_serve_shed_total{reason=...}`.
//! Accepted requests are never dropped — shutdown drains the queue
//! before the workers exit. Every request also carries a
//! [`dio_obs::Budget`] (deadline + cancellation) created at submit:
//! workers check it between stages and the pipeline checks it before
//! every model call, so no work happens past a lapsed deadline.

#![deny(missing_docs)]

pub mod admission;
pub mod brownout;
pub mod cache;
pub mod normalize;
pub mod service;
pub mod tenant;

pub use admission::{AdmissionQueue, PushRefused, ShedReason};
pub use brownout::{BrownoutConfig, BrownoutController, BrownoutLevel};
pub use cache::{CacheStats, TtlLru};
pub use normalize::normalize_question;
pub use service::{
    GatewayConfig, GatewayStats, QueryRequest, QueryService, ServeConfig, ServeOutcome,
    ServedAnswer, Shed, Ticket,
};
pub use tenant::{tenant_class, RateLimiter, TenantPolicy, TENANT_CLASSES};

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    /// The whole serving plane must be shareable across worker
    /// threads; this is the compile-time contract the thread pool
    /// relies on. (`QueryService` itself moves tickets around, so it
    /// only needs `Send + Sync` for the `&self` submit path.)
    #[test]
    fn serving_types_are_thread_safe() {
        assert_send_sync::<QueryService>();
        assert_send_sync::<AdmissionQueue<String>>();
        assert_send_sync::<TtlLru<String>>();
        assert_send_sync::<RateLimiter>();
        assert_send_sync::<ServeConfig>();
        assert_send_sync::<ShedReason>();
        assert_send::<Ticket>();
        assert_send::<ServeOutcome>();
        assert_send::<QueryRequest>();
    }
}

//! The concurrent query service.
//!
//! [`QueryService::spawn`] stamps out one pipeline instance per worker
//! thread via [`DioCopilot::fork_with_model`]: every worker shares the
//! prototype's read-only state (catalog, vector index, resident tsdb,
//! few-shot pool) behind `Arc`s and owns only its per-request mutable
//! state (model handle, sandbox audit log, cost meter, breaker).
//!
//! The request path:
//!
//! 1. **Admission** — the tenant's token bucket is charged
//!    ([`crate::RateLimiter`]); a dry bucket sheds with
//!    `TenantThrottle` and a refill-derived `retry_after`. Admitted
//!    requests enter the bounded earliest-deadline-first queue
//!    ([`crate::AdmissionQueue`]); a full queue sheds with `QueueFull`.
//! 2. **Caching** — a worker first consults the answer cache keyed on
//!    `(eval_ts, normalized question)`; a hit skips the pipeline
//!    entirely. On a miss it consults the embedding cache for the
//!    question vector before falling back to embedding, then runs
//!    [`DioCopilot::ask_prepared`] with the shared vector. Both caches
//!    are stamped with the copilot's knowledge generation so
//!    feedback-loop catalog updates invalidate them atomically.
//! 3. **Reply** — every *accepted* request receives exactly one
//!    [`ServeOutcome`] on its ticket, even if its deadline lapsed in
//!    the queue (`DeadlineExpired`), the pipeline panicked
//!    (`WorkerPanic`), or the service shut down first (drained, then
//!    served — never dropped).

use crate::admission::{AdmissionQueue, PushRefused, ShedReason};
use crate::cache::{CacheStats, TtlLru};
use crate::normalize::normalize_question;
use crate::tenant::{tenant_class, RateLimiter, TenantPolicy, TENANT_CLASSES};
use dio_copilot::{CopilotResponse, DegradationLevel, DioCopilot};
use dio_llm::FoundationModel;
use dio_obs::{Buckets, Counter, Gauge, Histogram, ObsHub, SpanContext, TraceStatus};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service sizing and policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads (= concurrent pipeline instances).
    pub workers: usize,
    /// Admission-queue capacity; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Deadline granted to requests that do not specify one.
    pub default_deadline: Duration,
    /// Per-tenant token-bucket policy.
    pub tenant: TenantPolicy,
    /// Answer-cache capacity (entries). 0 disables it.
    pub answer_cache_capacity: usize,
    /// Embedding-cache capacity (entries). 0 disables it.
    pub embed_cache_capacity: usize,
    /// Answer TTL; `None` relies on generation invalidation alone.
    pub answer_ttl: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            queue_depth: 64,
            default_deadline: Duration::from_secs(30),
            tenant: TenantPolicy::default(),
            answer_cache_capacity: 1024,
            embed_cache_capacity: 4096,
            answer_ttl: None,
        }
    }
}

/// One tenant question bound to an evaluation timestamp.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct QueryRequest {
    /// Tenant identity for fair-share accounting.
    pub tenant: String,
    /// The natural-language question.
    pub question: String,
    /// Evaluation timestamp (ms) the question is asked *as of*.
    pub ts: i64,
}

impl QueryRequest {
    /// Convenience constructor.
    pub fn new(tenant: impl Into<String>, question: impl Into<String>, ts: i64) -> Self {
        QueryRequest {
            tenant: tenant.into(),
            question: question.into(),
            ts,
        }
    }
}

/// A successfully served answer plus serving telemetry.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The pipeline's (or cache's) response.
    pub response: CopilotResponse,
    /// Whether the answer cache short-circuited the pipeline.
    pub answer_cache_hit: bool,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the worker spent producing the response.
    pub service_time: Duration,
    /// Index of the worker that served it.
    pub worker: usize,
}

/// A refusal, with a backoff hint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shed {
    /// Why the request was not answered.
    pub reason: ShedReason,
    /// How long the caller should wait before retrying.
    pub retry_after: Duration,
}

/// Terminal outcome of one submitted request.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// Served to completion.
    Answered(Box<ServedAnswer>),
    /// Refused or abandoned.
    Shed(Shed),
}

impl ServeOutcome {
    /// The answer, if any.
    pub fn answer(&self) -> Option<&ServedAnswer> {
        match self {
            ServeOutcome::Answered(a) => Some(a),
            ServeOutcome::Shed(_) => None,
        }
    }

    /// The shed record, if any.
    pub fn shed(&self) -> Option<Shed> {
        match self {
            ServeOutcome::Answered(_) => None,
            ServeOutcome::Shed(s) => Some(*s),
        }
    }
}

/// Handle to one accepted request; resolves to exactly one outcome.
pub struct Ticket {
    rx: mpsc::Receiver<ServeOutcome>,
}

impl Ticket {
    /// Block until the request resolves. A severed channel (worker
    /// thread died outside the panic guard) reports as `WorkerPanic`
    /// rather than hanging or panicking the caller.
    pub fn wait(self) -> ServeOutcome {
        self.rx.recv().unwrap_or(ServeOutcome::Shed(Shed {
            reason: ShedReason::WorkerPanic,
            retry_after: Duration::from_millis(100),
        }))
    }
}

struct Job {
    req: QueryRequest,
    key: String,
    submitted: Instant,
    reply: mpsc::Sender<ServeOutcome>,
    /// Root span context of the request's trace, begun at submit and
    /// carried by value across the queue/thread boundary. Queue wait,
    /// cache probes, pipeline stages, and shard reads all parent here.
    ctx: SpanContext,
}

struct Metrics {
    answered: Counter,
    shed_total: Counter,
    shed: HashMap<ShedReason, Counter>,
    queue_depth: Gauge,
    queue_wait: Histogram,
    duration_hit: Histogram,
    duration_miss: Histogram,
    class_latency: HashMap<&'static str, Histogram>,
    class_requests: HashMap<(&'static str, &'static str), Counter>,
    worker_panics: Counter,
}

impl Metrics {
    fn register(obs: &ObsHub) -> Self {
        let r = obs.registry();
        let shed = ShedReason::all()
            .into_iter()
            .map(|reason| {
                (
                    reason,
                    r.counter_with(
                        "dio_serve_shed_total",
                        "requests shed by the query service, by reason",
                        &[("reason", reason.label())],
                    ),
                )
            })
            .collect();
        let duration = |cache: &str| {
            r.histogram_with(
                "dio_serve_request_duration_micros",
                "submit-to-reply latency of answered requests",
                &Buckets::latency_micros(),
                &[("cache", cache)],
            )
        };
        Metrics {
            answered: r.counter_with(
                "dio_serve_requests_total",
                "requests resolved by the query service, by outcome",
                &[("outcome", "answered")],
            ),
            shed_total: r.counter_with(
                "dio_serve_requests_total",
                "requests resolved by the query service, by outcome",
                &[("outcome", "shed")],
            ),
            shed,
            queue_depth: r.gauge(
                "dio_serve_queue_depth",
                "requests currently in the admission queue",
            ),
            queue_wait: r.histogram(
                "dio_serve_queue_wait_micros",
                "time requests spend queued before a worker picks them up",
                &Buckets::latency_micros(),
            ),
            duration_hit: duration("hit"),
            duration_miss: duration("miss"),
            class_latency: TENANT_CLASSES
                .iter()
                .map(|&class| {
                    (
                        class,
                        r.histogram_with(
                            "dio_serve_class_latency_micros",
                            "submit-to-reply latency of answered requests, by tenant class",
                            &Buckets::latency_micros(),
                            &[("class", class)],
                        ),
                    )
                })
                .collect(),
            class_requests: TENANT_CLASSES
                .iter()
                .flat_map(|&class| {
                    ["answered", "shed"].into_iter().map(move |outcome| {
                        (
                            (class, outcome),
                            r.counter_with(
                                "dio_serve_class_requests_total",
                                "requests resolved by the query service, by tenant class and outcome",
                                &[("class", class), ("outcome", outcome)],
                            ),
                        )
                    })
                })
                .collect(),
            worker_panics: r.counter(
                "dio_serve_worker_panics_total",
                "pipeline panics caught by the worker guard",
            ),
        }
    }

    fn count_shed(&self, reason: ShedReason) {
        self.shed_total.inc();
        if let Some(c) = self.shed.get(&reason) {
            c.inc();
        }
    }

    fn count_class(&self, tenant: &str, outcome: &'static str) {
        if let Some(c) = self.class_requests.get(&(tenant_class(tenant), outcome)) {
            c.inc();
        }
    }

    fn observe_class_latency(&self, tenant: &str, micros: f64) {
        if let Some(h) = self.class_latency.get(tenant_class(tenant)) {
            h.observe(micros);
        }
    }
}

struct Core {
    queue: AdmissionQueue<Job>,
    limiter: RateLimiter,
    answers: TtlLru<CopilotResponse>,
    embeds: TtlLru<Arc<dio_embed::Vector>>,
    generation: Arc<AtomicU64>,
    metrics: Metrics,
    config: ServeConfig,
    obs: ObsHub,
}

/// The concurrent multi-tenant query service.
pub struct QueryService {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Launch the service: fork `config.workers` pipeline instances
    /// off `prototype` (each with a model from `make_model`) and start
    /// their worker threads. The prototype itself is not consumed and
    /// can keep serving as a sequential baseline or feedback-loop
    /// writer; its knowledge-generation bumps invalidate this
    /// service's caches.
    pub fn spawn<F>(prototype: &DioCopilot, mut make_model: F, config: ServeConfig) -> Self
    where
        F: FnMut() -> Box<dyn FoundationModel>,
    {
        let obs = prototype.obs().clone();
        let core = Arc::new(Core {
            queue: AdmissionQueue::new(config.queue_depth),
            limiter: RateLimiter::new(config.tenant),
            answers: TtlLru::new(
                obs.registry(),
                "answer",
                config.answer_cache_capacity,
                config.answer_ttl,
            ),
            embeds: TtlLru::new(obs.registry(), "embed", config.embed_cache_capacity, None),
            generation: prototype.generation_handle(),
            metrics: Metrics::register(&obs),
            config: config.clone(),
            obs,
        });
        let workers = (0..config.workers.max(1))
            .map(|idx| {
                let copilot = prototype.fork_with_model(make_model());
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("dio-serve-{idx}"))
                    .spawn(move || worker_loop(core, copilot, idx))
                    .expect("spawn dio-serve worker")
            })
            .collect();
        QueryService { core, workers }
    }

    /// Submit with the default deadline.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, Shed> {
        let deadline = self.core.config.default_deadline;
        self.submit_with_deadline(req, deadline)
    }

    /// Submit with an explicit deadline budget. Sheds synchronously on
    /// throttle/overload; an `Ok` ticket is guaranteed a reply.
    pub fn submit_with_deadline(&self, req: QueryRequest, budget: Duration) -> Result<Ticket, Shed> {
        let now = Instant::now();
        let tracer = self.core.obs.tracer();
        let ctx = tracer.begin_trace(&req.question);
        tracer.event(
            &ctx,
            "submitted",
            &[
                ("tenant", &req.tenant),
                ("class", tenant_class(&req.tenant)),
            ],
        );
        if let Err(refill) = self.core.limiter.try_acquire_at(&req.tenant, now) {
            let shed = Shed {
                reason: ShedReason::TenantThrottle,
                retry_after: refill,
            };
            self.core.metrics.count_shed(shed.reason);
            self.core.metrics.count_class(&req.tenant, "shed");
            tracer.event(&ctx, "shed", &[("reason", shed.reason.label())]);
            tracer.finish_trace(&ctx, TraceStatus::Shed);
            return Err(shed);
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            key: normalize_question(&req.question),
            req,
            submitted: now,
            reply: tx,
            ctx,
        };
        match self.core.queue.try_push(job, now + budget) {
            Ok(()) => {
                self.core
                    .metrics
                    .queue_depth
                    .set(self.core.queue.len() as f64);
                Ok(Ticket { rx })
            }
            Err(PushRefused { reason, item: job }) => {
                // The tenant was charged a token on admission but the
                // service refused the work — refund it, or a queue
                // backup (say, mid-failover) throttles the tenant's
                // retries on top of shedding them.
                self.core.limiter.refund(&job.req.tenant);
                let shed = Shed {
                    reason,
                    // The queue drains at the service rate; a short,
                    // bounded backoff keeps well-behaved clients from
                    // hammering a saturated queue.
                    retry_after: Duration::from_millis(100),
                };
                self.core.metrics.count_shed(shed.reason);
                self.core.metrics.count_class(&job.req.tenant, "shed");
                tracer.event(&job.ctx, "shed", &[("reason", shed.reason.label())]);
                tracer.finish_trace(&job.ctx, TraceStatus::Shed);
                Err(shed)
            }
        }
    }

    /// Submit and block for the outcome (convenience for tests and
    /// sequential callers).
    pub fn ask(&self, tenant: &str, question: &str, ts: i64) -> ServeOutcome {
        match self.submit(QueryRequest::new(tenant, question, ts)) {
            Ok(ticket) => ticket.wait(),
            Err(shed) => ServeOutcome::Shed(shed),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// The shared observability hub (same registry as the copilots).
    pub fn obs(&self) -> &ObsHub {
        &self.core.obs
    }

    /// Answer-cache counters.
    pub fn answer_cache_stats(&self) -> CacheStats {
        self.core.answers.stats()
    }

    /// Embedding-cache counters.
    pub fn embed_cache_stats(&self) -> CacheStats {
        self.core.embeds.stats()
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    /// Total sheds so far (all reasons).
    pub fn shed_count(&self) -> u64 {
        self.core.metrics.shed_total.value() as u64
    }

    /// Stop accepting work, serve everything already accepted, and
    /// join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.core.queue.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Trace status a finished pipeline response maps to (mirrors the
/// copilot's own mapping for self-owned traces).
fn response_status(response: &CopilotResponse) -> TraceStatus {
    if response.degradation == DegradationLevel::Degraded {
        TraceStatus::Degraded
    } else if response.error.is_some() {
        TraceStatus::Error
    } else {
        TraceStatus::Ok
    }
}

fn worker_loop(core: Arc<Core>, mut copilot: DioCopilot, worker: usize) {
    while let Some((job, deadline)) = core.queue.pop() {
        core.metrics.queue_depth.set(core.queue.len() as f64);
        let picked_up = Instant::now();
        let queue_wait = picked_up.duration_since(job.submitted);
        core.metrics
            .queue_wait
            .observe(queue_wait.as_micros() as f64);
        // Queue wait becomes its own span: it starts at the trace root
        // (submit time ≈ offset 0) and ends at worker pickup, so a
        // dumped tree decomposes submit-to-reply into wait + service.
        let tracer = core.obs.tracer();
        let wait_ctx = tracer.child_of(&job.ctx);
        tracer.record_span(
            &wait_ctx,
            "queue_wait",
            0,
            dio_obs::micros_u64(queue_wait),
            &[("worker", &worker.to_string())],
        );
        if picked_up >= deadline {
            let shed = Shed {
                reason: ShedReason::DeadlineExpired,
                retry_after: Duration::from_millis(100),
            };
            core.metrics.count_shed(shed.reason);
            core.metrics.count_class(&job.req.tenant, "shed");
            tracer.event(&job.ctx, "shed", &[("reason", shed.reason.label())]);
            tracer.finish_trace(&job.ctx, TraceStatus::Shed);
            let _ = job.reply.send(ServeOutcome::Shed(shed));
            continue;
        }
        let reply = job.reply.clone();
        let root = job.ctx;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_one(&core, &mut copilot, &job, queue_wait, picked_up, worker)
        }));
        match outcome {
            Ok(answer) => {
                core.metrics.answered.inc();
                core.metrics.count_class(&job.req.tenant, "answered");
                core.metrics.observe_class_latency(
                    &job.req.tenant,
                    (queue_wait + answer.service_time).as_micros() as f64,
                );
                tracer.finish_trace(&root, response_status(&answer.response));
                let _ = reply.send(ServeOutcome::Answered(Box::new(answer)));
            }
            Err(_) => {
                core.metrics.worker_panics.inc();
                let shed = Shed {
                    reason: ShedReason::WorkerPanic,
                    retry_after: Duration::from_millis(100),
                };
                core.metrics.count_shed(shed.reason);
                core.metrics.count_class(&job.req.tenant, "shed");
                tracer.event(&root, "worker_panic", &[]);
                tracer.finish_trace(&root, TraceStatus::Error);
                let _ = reply.send(ServeOutcome::Shed(shed));
            }
        }
    }
}

fn serve_one(
    core: &Core,
    copilot: &mut DioCopilot,
    job: &Job,
    queue_wait: Duration,
    picked_up: Instant,
    worker: usize,
) -> ServedAnswer {
    let generation = core.generation.load(Ordering::Acquire);
    let tracer = core.obs.tracer();
    // The answer depends on both the question and the as-of timestamp.
    let answer_key = format!("{}\u{1f}{}", job.req.ts, job.key);
    let lookup_ctx = tracer.child_of(&job.ctx);
    let lookup_start = tracer.clock_micros(&lookup_ctx);
    let lookup_t0 = Instant::now();
    let cached = core.answers.get(&answer_key, generation);
    tracer.record_span(
        &lookup_ctx,
        "cache_lookup",
        lookup_start,
        dio_obs::micros_u64(lookup_t0.elapsed()),
        &[
            ("cache", "answer"),
            ("result", if cached.is_some() { "hit" } else { "miss" }),
        ],
    );
    if let Some(response) = cached {
        let service_time = picked_up.elapsed();
        core.metrics
            .duration_hit
            .observe((queue_wait + service_time).as_micros() as f64);
        return ServedAnswer {
            response,
            answer_cache_hit: true,
            queue_wait,
            service_time,
            worker,
        };
    }
    let embed_ctx = tracer.child_of(&job.ctx);
    let embed_start = tracer.clock_micros(&embed_ctx);
    let embed_t0 = Instant::now();
    let (qvec, embed_cached) = match core.embeds.get(&job.key, generation) {
        Some(v) => (v, true),
        None => {
            let v = Arc::new(copilot.extractor().embed_question(&job.req.question));
            core.embeds.insert(job.key.clone(), Arc::clone(&v), generation);
            (v, false)
        }
    };
    tracer.record_span(
        &embed_ctx,
        "embed",
        embed_start,
        dio_obs::micros_u64(embed_t0.elapsed()),
        &[
            ("cache", "embed"),
            ("result", if embed_cached { "hit" } else { "miss" }),
        ],
    );
    let response = copilot.ask_in_context(&job.req.question, job.req.ts, Some(&qvec), Some(&job.ctx));
    core.answers
        .insert(answer_key, response.clone(), generation);
    let service_time = picked_up.elapsed();
    core.metrics
        .duration_miss
        .observe((queue_wait + service_time).as_micros() as f64);
    ServedAnswer {
        response,
        answer_cache_hit: false,
        queue_wait,
        service_time,
        worker,
    }
}

//! The concurrent query service.
//!
//! [`QueryService::spawn`] stamps out one pipeline instance per worker
//! thread via [`DioCopilot::fork_with_model`]: every worker shares the
//! prototype's read-only state (catalog, vector index, resident tsdb,
//! few-shot pool) behind `Arc`s and owns only its per-request mutable
//! state (model handle, sandbox audit log, cost meter, breaker).
//!
//! The request path:
//!
//! 1. **Admission** — the tenant's token bucket is charged
//!    ([`crate::RateLimiter`]); a dry bucket sheds with
//!    `TenantThrottle` and a refill-derived `retry_after`. Admitted
//!    requests enter the bounded earliest-deadline-first queue
//!    ([`crate::AdmissionQueue`]); a full queue sheds with `QueueFull`.
//! 2. **Caching** — a worker first consults the answer cache keyed on
//!    `(eval_ts, normalized question)`; a hit skips the pipeline
//!    entirely. On a miss it consults the embedding cache for the
//!    question vector before falling back to embedding, then runs
//!    [`DioCopilot::ask_prepared`] with the shared vector. Both caches
//!    are stamped with the copilot's knowledge generation so
//!    feedback-loop catalog updates invalidate them atomically.
//! 3. **Reply** — every *accepted* request receives exactly one
//!    [`ServeOutcome`] on its ticket, even if its deadline lapsed in
//!    the queue (`DeadlineExpired`), the pipeline panicked
//!    (`WorkerPanic`), or the service shut down first (drained, then
//!    served — never dropped).

use crate::admission::{AdmissionQueue, PushRefused, ShedReason};
use crate::brownout::{BrownoutConfig, BrownoutController, BrownoutLevel};
use crate::cache::{CacheStats, TtlLru};
use crate::normalize::normalize_question;
use crate::tenant::{tenant_class, RateLimiter, TenantPolicy, TENANT_CLASSES};
use dio_copilot::{CopilotError, CopilotResponse, DegradationLevel, DioCopilot};
use dio_gateway::{
    BatchConfig, FlushRecord, FollowerOutcome, Join, ModelGateway, Probe, SemanticCache,
    SemanticConfig, SemanticStats, Singleflight,
};
use dio_llm::{CostLedger, FoundationModel};
use dio_obs::{Buckets, Budget, Counter, Gauge, Histogram, ObsHub, SpanContext, TraceStatus};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service sizing and policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads (= concurrent pipeline instances).
    pub workers: usize,
    /// Admission-queue capacity; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Deadline granted to requests that do not specify one.
    pub default_deadline: Duration,
    /// Per-tenant token-bucket policy.
    pub tenant: TenantPolicy,
    /// Answer-cache capacity (entries). 0 disables it.
    pub answer_cache_capacity: usize,
    /// Embedding-cache capacity (entries). 0 disables it.
    pub embed_cache_capacity: usize,
    /// Answer TTL; `None` relies on generation invalidation alone.
    pub answer_ttl: Option<Duration>,
    /// Brownout-ladder thresholds and hysteresis
    /// ([`BrownoutConfig::disabled`] for the binary-shedding baseline).
    pub brownout: BrownoutConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            queue_depth: 64,
            default_deadline: Duration::from_secs(30),
            tenant: TenantPolicy::default(),
            answer_cache_capacity: 1024,
            embed_cache_capacity: 4096,
            answer_ttl: None,
            brownout: BrownoutConfig::default(),
        }
    }
}

/// Model-plane gateway policy for [`QueryService::spawn_gateway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Batching policy for the shared [`ModelGateway`].
    pub batch: BatchConfig,
    /// Semantic answer-cache policy; `None` disables the layer.
    pub semantic: Option<SemanticConfig>,
    /// Whether concurrent identical questions singleflight-coalesce.
    pub coalesce: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            batch: BatchConfig::default(),
            semantic: Some(SemanticConfig::default()),
            coalesce: true,
        }
    }
}

/// Snapshot of the gateway plane's counters and cost ledger.
#[derive(Debug, Clone)]
pub struct GatewayStats {
    /// The gateway's cost ledger (batched upstream bills, prefix
    /// amortization).
    pub ledger: CostLedger,
    /// Semantic-cache counters, when the layer is enabled.
    pub semantic: Option<SemanticStats>,
    /// Requests that led a singleflight epoch.
    pub leaders: u64,
    /// Requests that attached to another request's epoch.
    pub followers: u64,
    /// Follower waits that ended in a leader abandon.
    pub abandoned: u64,
    /// Follower waits that ran out of budget.
    pub timeouts: u64,
    /// The (bounded) per-flush audit log.
    pub flush_log: Vec<FlushRecord>,
}

/// The per-service gateway plane: one singleflight map, one semantic
/// cache, one shared batching model — all workers go through them.
struct GatewayPlane {
    flights: Singleflight<CopilotResponse>,
    semantic: Option<SemanticCache<CopilotResponse>>,
    model: Arc<ModelGateway>,
    coalesce: bool,
    role_leader: Counter,
    role_follower: Counter,
    role_abandoned: Counter,
    role_timeout: Counter,
}

impl GatewayPlane {
    fn new(obs: &ObsHub, config: &GatewayConfig, model: Arc<ModelGateway>) -> Self {
        let r = obs.registry();
        let role = |role: &str| {
            r.counter_with(
                "dio_gateway_singleflight_total",
                "Singleflight joins at the serve tier, by role/outcome.",
                &[("role", role)],
            )
        };
        GatewayPlane {
            flights: Singleflight::new(),
            semantic: config
                .semantic
                .map(|sc| SemanticCache::new(r, sc)),
            model,
            coalesce: config.coalesce,
            role_leader: role("leader"),
            role_follower: role("follower"),
            role_abandoned: role("abandoned"),
            role_timeout: role("timeout"),
        }
    }
}

/// One tenant question bound to an evaluation timestamp.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct QueryRequest {
    /// Tenant identity for fair-share accounting.
    pub tenant: String,
    /// The natural-language question.
    pub question: String,
    /// Evaluation timestamp (ms) the question is asked *as of*.
    pub ts: i64,
}

impl QueryRequest {
    /// Convenience constructor.
    pub fn new(tenant: impl Into<String>, question: impl Into<String>, ts: i64) -> Self {
        QueryRequest {
            tenant: tenant.into(),
            question: question.into(),
            ts,
        }
    }
}

/// A successfully served answer plus serving telemetry.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The pipeline's (or cache's) response.
    pub response: CopilotResponse,
    /// Whether the answer cache short-circuited the pipeline.
    pub answer_cache_hit: bool,
    /// Whether a semantic-cache neighbor's answer was served (exact
    /// caches missed but an embedding neighbor cleared the floor).
    pub semantic_cache_hit: bool,
    /// Whether this answer was coalesced off another in-flight
    /// request's computation (singleflight follower).
    pub coalesced: bool,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the worker spent producing the response.
    pub service_time: Duration,
    /// Index of the worker that served it.
    pub worker: usize,
}

/// A refusal, with a backoff hint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shed {
    /// Why the request was not answered.
    pub reason: ShedReason,
    /// How long the caller should wait before retrying.
    pub retry_after: Duration,
}

/// Terminal outcome of one submitted request.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// Served to completion.
    Answered(Box<ServedAnswer>),
    /// Refused or abandoned.
    Shed(Shed),
}

impl ServeOutcome {
    /// The answer, if any.
    pub fn answer(&self) -> Option<&ServedAnswer> {
        match self {
            ServeOutcome::Answered(a) => Some(a),
            ServeOutcome::Shed(_) => None,
        }
    }

    /// The shed record, if any.
    pub fn shed(&self) -> Option<Shed> {
        match self {
            ServeOutcome::Answered(_) => None,
            ServeOutcome::Shed(s) => Some(*s),
        }
    }
}

/// Handle to one accepted request; resolves to exactly one outcome.
pub struct Ticket {
    rx: mpsc::Receiver<ServeOutcome>,
}

impl Ticket {
    /// Block until the request resolves. A severed channel (worker
    /// thread died outside the panic guard) reports as `WorkerPanic`
    /// rather than hanging or panicking the caller.
    pub fn wait(self) -> ServeOutcome {
        self.rx.recv().unwrap_or(ServeOutcome::Shed(Shed {
            reason: ShedReason::WorkerPanic,
            retry_after: Duration::from_millis(100),
        }))
    }
}

struct Job {
    req: QueryRequest,
    key: String,
    submitted: Instant,
    reply: mpsc::Sender<ServeOutcome>,
    /// Root span context of the request's trace, begun at submit and
    /// carried by value across the queue/thread boundary. Queue wait,
    /// cache probes, pipeline stages, and shard reads all parent here.
    ctx: SpanContext,
    /// The request's deadline-and-cancellation budget, created at
    /// submit and carried by value alongside the span context. Workers
    /// check it between pipeline stages; the copilot checks it before
    /// every model call, retry, and repair round.
    budget: Budget,
}

struct Metrics {
    answered: Counter,
    shed_total: Counter,
    shed: HashMap<ShedReason, Counter>,
    queue_depth: Gauge,
    queue_wait: Histogram,
    duration_hit: Histogram,
    duration_miss: Histogram,
    class_latency: HashMap<&'static str, Histogram>,
    class_requests: HashMap<(&'static str, &'static str), Counter>,
    worker_panics: Counter,
}

impl Metrics {
    fn register(obs: &ObsHub) -> Self {
        let r = obs.registry();
        let shed = ShedReason::all()
            .into_iter()
            .map(|reason| {
                (
                    reason,
                    r.counter_with(
                        "dio_serve_shed_total",
                        "requests shed by the query service, by reason",
                        &[("reason", reason.label())],
                    ),
                )
            })
            .collect();
        let duration = |cache: &str| {
            r.histogram_with(
                "dio_serve_request_duration_micros",
                "submit-to-reply latency of answered requests",
                &Buckets::latency_micros(),
                &[("cache", cache)],
            )
        };
        Metrics {
            answered: r.counter_with(
                "dio_serve_requests_total",
                "requests resolved by the query service, by outcome",
                &[("outcome", "answered")],
            ),
            shed_total: r.counter_with(
                "dio_serve_requests_total",
                "requests resolved by the query service, by outcome",
                &[("outcome", "shed")],
            ),
            shed,
            queue_depth: r.gauge(
                "dio_serve_queue_depth",
                "requests currently in the admission queue",
            ),
            queue_wait: r.histogram(
                "dio_serve_queue_wait_micros",
                "time requests spend queued before a worker picks them up",
                &Buckets::latency_micros(),
            ),
            duration_hit: duration("hit"),
            duration_miss: duration("miss"),
            class_latency: TENANT_CLASSES
                .iter()
                .map(|&class| {
                    (
                        class,
                        r.histogram_with(
                            "dio_serve_class_latency_micros",
                            "submit-to-reply latency of answered requests, by tenant class",
                            &Buckets::latency_micros(),
                            &[("class", class)],
                        ),
                    )
                })
                .collect(),
            class_requests: TENANT_CLASSES
                .iter()
                .flat_map(|&class| {
                    ["answered", "shed"].into_iter().map(move |outcome| {
                        (
                            (class, outcome),
                            r.counter_with(
                                "dio_serve_class_requests_total",
                                "requests resolved by the query service, by tenant class and outcome",
                                &[("class", class), ("outcome", outcome)],
                            ),
                        )
                    })
                })
                .collect(),
            worker_panics: r.counter(
                "dio_serve_worker_panics_total",
                "pipeline panics caught by the worker guard",
            ),
        }
    }

    fn count_shed(&self, reason: ShedReason) {
        self.shed_total.inc();
        if let Some(c) = self.shed.get(&reason) {
            c.inc();
        }
    }

    fn count_class(&self, tenant: &str, outcome: &'static str) {
        if let Some(c) = self.class_requests.get(&(tenant_class(tenant), outcome)) {
            c.inc();
        }
    }

    fn observe_class_latency(&self, tenant: &str, micros: f64) {
        if let Some(h) = self.class_latency.get(tenant_class(tenant)) {
            h.observe(micros);
        }
    }
}

struct Core {
    queue: AdmissionQueue<Job>,
    limiter: RateLimiter,
    answers: TtlLru<CopilotResponse>,
    embeds: TtlLru<Arc<dio_embed::Vector>>,
    generation: Arc<AtomicU64>,
    metrics: Metrics,
    brownout: Mutex<BrownoutController>,
    config: ServeConfig,
    obs: ObsHub,
    gateway: Option<GatewayPlane>,
}

/// The span-context cell a gateway-backed worker shares with its boxed
/// model handle (set per job so batch spans land under the right
/// trace).
type CtxCell = Arc<Mutex<Option<SpanContext>>>;

/// The concurrent multi-tenant query service.
pub struct QueryService {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Launch the service: fork `config.workers` pipeline instances
    /// off `prototype` (each with a model from `make_model`) and start
    /// their worker threads. The prototype itself is not consumed and
    /// can keep serving as a sequential baseline or feedback-loop
    /// writer; its knowledge-generation bumps invalidate this
    /// service's caches.
    pub fn spawn<F>(prototype: &DioCopilot, mut make_model: F, config: ServeConfig) -> Self
    where
        F: FnMut() -> Box<dyn FoundationModel>,
    {
        Self::spawn_inner(prototype, config, None, move |_| (make_model(), None))
    }

    /// Launch the service with the **model-plane gateway** between the
    /// workers and `upstream`: every worker's pipeline calls route
    /// through one shared [`ModelGateway`] (singleflight coalescing
    /// and the semantic cache sit on the request path in front of it).
    /// `upstream` is the one real model — typically a
    /// `BatchExpander<SimulatedModel>`, optionally under a
    /// `FaultyModel` — shared by all workers behind the gateway's
    /// serialization.
    pub fn spawn_gateway(
        prototype: &DioCopilot,
        upstream: Box<dyn FoundationModel>,
        config: ServeConfig,
        gateway: GatewayConfig,
    ) -> Self {
        let obs = prototype.obs().clone();
        let model = ModelGateway::new(
            upstream,
            gateway.batch,
            obs.registry(),
            Some(obs.tracer().clone()),
        );
        let plane = GatewayPlane::new(&obs, &gateway, Arc::clone(&model));
        Self::spawn_inner(prototype, config, Some(plane), move |_| {
            let handle = model.handle();
            let cell = handle.ctx_cell();
            (Box::new(handle) as Box<dyn FoundationModel>, Some(cell))
        })
    }

    fn spawn_inner(
        prototype: &DioCopilot,
        config: ServeConfig,
        gateway: Option<GatewayPlane>,
        mut make_worker: impl FnMut(usize) -> (Box<dyn FoundationModel>, Option<CtxCell>),
    ) -> Self {
        let obs = prototype.obs().clone();
        let brownout = Mutex::new(BrownoutController::new(
            config.brownout,
            config.queue_depth,
            config.default_deadline,
            obs.registry(),
        ));
        let core = Arc::new(Core {
            queue: AdmissionQueue::new(config.queue_depth),
            brownout,
            limiter: RateLimiter::new(config.tenant),
            answers: TtlLru::new(
                obs.registry(),
                "answer",
                config.answer_cache_capacity,
                config.answer_ttl,
            ),
            embeds: TtlLru::new(obs.registry(), "embed", config.embed_cache_capacity, None),
            generation: prototype.generation_handle(),
            metrics: Metrics::register(&obs),
            config: config.clone(),
            obs,
            gateway,
        });
        let workers = (0..config.workers.max(1))
            .map(|idx| {
                let (model, ctx_cell) = make_worker(idx);
                let copilot = prototype.fork_with_model(model);
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("dio-serve-{idx}"))
                    .spawn(move || worker_loop(core, copilot, idx, ctx_cell))
                    .expect("spawn dio-serve worker")
            })
            .collect();
        QueryService { core, workers }
    }

    /// Submit with the default deadline.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, Shed> {
        let deadline = self.core.config.default_deadline;
        self.submit_with_deadline(req, deadline)
    }

    /// Submit with an explicit deadline budget. Sheds synchronously on
    /// throttle/overload/brownout; an `Ok` ticket is guaranteed a
    /// reply.
    pub fn submit_with_deadline(&self, req: QueryRequest, budget: Duration) -> Result<Ticket, Shed> {
        let now = Instant::now();
        let tracer = self.core.obs.tracer();
        let ctx = tracer.begin_trace(&req.question);
        tracer.event(
            &ctx,
            "submitted",
            &[
                ("tenant", &req.tenant),
                ("class", tenant_class(&req.tenant)),
            ],
        );
        // The Shed rung refuses arrivals only while a backlog actually
        // exists. The controller observes at worker pickup, so once the
        // queue drains the next admitted request is what produces the
        // clear observations that let the ladder climb back — an
        // empty-queue refusal would latch the service shut forever.
        if self.core.brownout.lock().unwrap().level() == BrownoutLevel::Shed
            && !self.core.queue.is_empty()
        {
            let shed = Shed {
                reason: ShedReason::Brownout,
                retry_after: self.retry_hint(Duration::ZERO),
            };
            self.core.metrics.count_shed(shed.reason);
            self.core.metrics.count_class(&req.tenant, "shed");
            tracer.event(&ctx, "shed", &[("reason", shed.reason.label())]);
            tracer.finish_trace(&ctx, TraceStatus::Shed);
            return Err(shed);
        }
        if let Err(refill) = self.core.limiter.try_acquire_at(&req.tenant, now) {
            let shed = Shed {
                reason: ShedReason::TenantThrottle,
                // The refill time floors the hint; a backed-up queue
                // raises it further.
                retry_after: self.retry_hint(refill),
            };
            self.core.metrics.count_shed(shed.reason);
            self.core.metrics.count_class(&req.tenant, "shed");
            tracer.event(&ctx, "shed", &[("reason", shed.reason.label())]);
            tracer.finish_trace(&ctx, TraceStatus::Shed);
            return Err(shed);
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            key: normalize_question(&req.question),
            req,
            submitted: now,
            reply: tx,
            ctx,
            budget: Budget::with_deadline(now + budget),
        };
        match self.core.queue.try_push(job, now + budget) {
            Ok(()) => {
                self.core
                    .metrics
                    .queue_depth
                    .set(self.core.queue.len() as f64);
                Ok(Ticket { rx })
            }
            Err(PushRefused { reason, item: job }) => {
                // The tenant was charged a token on admission but the
                // service refused the work — refund it, or a queue
                // backup (say, mid-failover) throttles the tenant's
                // retries on top of shedding them.
                self.core.limiter.refund(&job.req.tenant);
                let shed = Shed {
                    reason,
                    // The queue drains at the worker pool's rate, so
                    // the advised backoff grows with the backlog.
                    retry_after: self.retry_hint(Duration::ZERO),
                };
                self.core.metrics.count_shed(shed.reason);
                self.core.metrics.count_class(&job.req.tenant, "shed");
                tracer.event(&job.ctx, "shed", &[("reason", shed.reason.label())]);
                tracer.finish_trace(&job.ctx, TraceStatus::Shed);
                Err(shed)
            }
        }
    }

    /// The current brownout-ladder position.
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.core.brownout.lock().unwrap().level()
    }

    fn retry_hint(&self, floor: Duration) -> Duration {
        retry_hint(
            self.core.queue.len(),
            self.core.config.workers,
            floor,
        )
    }

    /// Submit and block for the outcome (convenience for tests and
    /// sequential callers).
    pub fn ask(&self, tenant: &str, question: &str, ts: i64) -> ServeOutcome {
        match self.submit(QueryRequest::new(tenant, question, ts)) {
            Ok(ticket) => ticket.wait(),
            Err(shed) => ServeOutcome::Shed(shed),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// The shared observability hub (same registry as the copilots).
    pub fn obs(&self) -> &ObsHub {
        &self.core.obs
    }

    /// Answer-cache counters.
    pub fn answer_cache_stats(&self) -> CacheStats {
        self.core.answers.stats()
    }

    /// Embedding-cache counters.
    pub fn embed_cache_stats(&self) -> CacheStats {
        self.core.embeds.stats()
    }

    /// Gateway-plane counters and cost ledger, when the service was
    /// spawned with [`QueryService::spawn_gateway`].
    pub fn gateway_stats(&self) -> Option<GatewayStats> {
        self.core.gateway.as_ref().map(|gw| GatewayStats {
            ledger: gw.model.ledger(),
            semantic: gw.semantic.as_ref().map(|s| s.stats()),
            leaders: gw.role_leader.value() as u64,
            followers: gw.role_follower.value() as u64,
            abandoned: gw.role_abandoned.value() as u64,
            timeouts: gw.role_timeout.value() as u64,
            flush_log: gw.model.flush_log(),
        })
    }

    /// The shared batching gateway, when present.
    pub fn gateway_model(&self) -> Option<Arc<ModelGateway>> {
        self.core.gateway.as_ref().map(|gw| Arc::clone(&gw.model))
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    /// Total sheds so far (all reasons).
    pub fn shed_count(&self) -> u64 {
        self.core.metrics.shed_total.value() as u64
    }

    /// Stop accepting work, serve everything already accepted, and
    /// join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.core.queue.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Trace status a finished pipeline response maps to (mirrors the
/// copilot's own mapping for self-owned traces). A lapsed budget gets
/// its own class so the flight recorder retains deadline aborts
/// separately from ordinary errors.
fn response_status(response: &CopilotResponse) -> TraceStatus {
    if matches!(response.error, Some(CopilotError::DeadlineExceeded { .. })) {
        TraceStatus::DeadlineExceeded
    } else if response.degradation == DegradationLevel::Degraded {
        TraceStatus::Degraded
    } else if response.error.is_some() {
        TraceStatus::Error
    } else {
        TraceStatus::Ok
    }
}

/// Backoff hint derived from live pressure instead of a constant: the
/// queue drains at the worker pool's rate, so the advised wait grows
/// with the queued-requests-per-worker backlog; `floor` (the tenant
/// bucket's refill time, where relevant) sets the minimum.
fn retry_hint(queue_len: usize, workers: usize, floor: Duration) -> Duration {
    const BASE_MS: u64 = 10;
    const PER_QUEUED_MS: u64 = 25;
    const CAP_MS: u64 = 5_000;
    let backlog_ms =
        BASE_MS.saturating_add(PER_QUEUED_MS.saturating_mul(queue_len as u64) / workers.max(1) as u64);
    floor.max(Duration::from_millis(backlog_ms.min(CAP_MS)))
}

fn worker_loop(
    core: Arc<Core>,
    mut copilot: DioCopilot,
    worker: usize,
    ctx_cell: Option<CtxCell>,
) {
    // The full-fidelity knobs, restored whenever the ladder is at
    // normal; brownout levels shrink them per request.
    let base_knobs = (copilot.top_k(), copilot.max_repair_rounds());
    while let Some((job, deadline)) = core.queue.pop() {
        core.metrics.queue_depth.set(core.queue.len() as f64);
        let picked_up = Instant::now();
        let queue_wait = picked_up.duration_since(job.submitted);
        core.metrics
            .queue_wait
            .observe(queue_wait.as_micros() as f64);
        // Queue wait becomes its own span: it starts at the trace root
        // (submit time ≈ offset 0) and ends at worker pickup, so a
        // dumped tree decomposes submit-to-reply into wait + service.
        let tracer = core.obs.tracer();
        let wait_ctx = tracer.child_of(&job.ctx);
        tracer.record_span(
            &wait_ctx,
            "queue_wait",
            0,
            dio_obs::micros_u64(queue_wait),
            &[("worker", &worker.to_string())],
        );
        // One ladder observation per pickup: queue occupancy plus the
        // wait this request just paid. A transition lands on this
        // request's trace as a span event.
        let (level, transition) = core
            .brownout
            .lock()
            .unwrap()
            .observe(core.queue.len(), queue_wait);
        if let Some((from, to)) = transition {
            let at = tracer.clock_micros(&job.ctx).to_string();
            tracer.event(
                &job.ctx,
                "brownout",
                &[("from", from.label()), ("to", to.label()), ("at_micros", &at)],
            );
        }
        if picked_up >= deadline || job.budget.expired() {
            let shed = Shed {
                reason: ShedReason::DeadlineExpired,
                retry_after: retry_hint(core.queue.len(), core.config.workers, Duration::ZERO),
            };
            core.metrics.count_shed(shed.reason);
            core.metrics.count_class(&job.req.tenant, "shed");
            tracer.event(&job.ctx, "shed", &[("reason", shed.reason.label())]);
            tracer.finish_trace(&job.ctx, TraceStatus::Shed);
            let _ = job.reply.send(ServeOutcome::Shed(shed));
            continue;
        }
        let reply = job.reply.clone();
        let root = job.ctx;
        // Thread this job's trace context into the gateway handle so
        // batch_flush spans and `batched` events parent correctly.
        if let Some(cell) = &ctx_cell {
            *cell.lock().unwrap() = Some(job.ctx);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_one(
                &core, &mut copilot, &job, queue_wait, picked_up, worker, level, base_knobs,
            )
        }));
        if let Some(cell) = &ctx_cell {
            *cell.lock().unwrap() = None;
        }
        match outcome {
            Ok(Ok(answer)) => {
                core.metrics.answered.inc();
                core.metrics.count_class(&job.req.tenant, "answered");
                core.metrics.observe_class_latency(
                    &job.req.tenant,
                    (queue_wait + answer.service_time).as_micros() as f64,
                );
                tracer.finish_trace(&root, response_status(&answer.response));
                let _ = reply.send(ServeOutcome::Answered(Box::new(answer)));
            }
            Ok(Err(shed)) => {
                // The budget lapsed between stages: abandon the rest
                // of the work cooperatively.
                core.metrics.count_shed(shed.reason);
                core.metrics.count_class(&job.req.tenant, "shed");
                tracer.event(&root, "shed", &[("reason", shed.reason.label())]);
                tracer.finish_trace(&root, TraceStatus::DeadlineExceeded);
                let _ = reply.send(ServeOutcome::Shed(shed));
            }
            Err(_) => {
                core.metrics.worker_panics.inc();
                let shed = Shed {
                    reason: ShedReason::WorkerPanic,
                    retry_after: retry_hint(
                        core.queue.len(),
                        core.config.workers,
                        Duration::ZERO,
                    ),
                };
                core.metrics.count_shed(shed.reason);
                core.metrics.count_class(&job.req.tenant, "shed");
                tracer.event(&root, "worker_panic", &[]);
                tracer.finish_trace(&root, TraceStatus::Error);
                let _ = reply.send(ServeOutcome::Shed(shed));
            }
        }
    }
}

/// Retrieval top-k in effect from [`BrownoutLevel::ReducedRetrieval`]
/// onward.
const BROWNOUT_TOP_K: usize = 8;

/// The shed a worker reports when it observes a lapsed budget between
/// stages.
fn deadline_shed(core: &Core) -> Shed {
    Shed {
        reason: ShedReason::DeadlineExpired,
        retry_after: retry_hint(core.queue.len(), core.config.workers, Duration::ZERO),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_one(
    core: &Core,
    copilot: &mut DioCopilot,
    job: &Job,
    queue_wait: Duration,
    picked_up: Instant,
    worker: usize,
    level: BrownoutLevel,
    base_knobs: (usize, usize),
) -> Result<ServedAnswer, Shed> {
    let generation = core.generation.load(Ordering::Acquire);
    let tracer = core.obs.tracer();
    // The answer depends on both the question and the as-of timestamp.
    let answer_key = format!("{}\u{1f}{}", job.req.ts, job.key);
    let lookup_ctx = tracer.child_of(&job.ctx);
    let lookup_start = tracer.clock_micros(&lookup_ctx);
    let lookup_t0 = Instant::now();
    let cached = core.answers.get(&answer_key, generation);
    tracer.record_span(
        &lookup_ctx,
        "cache_lookup",
        lookup_start,
        dio_obs::micros_u64(lookup_t0.elapsed()),
        &[
            ("cache", "answer"),
            ("result", if cached.is_some() { "hit" } else { "miss" }),
        ],
    );
    if let Some(response) = cached {
        let service_time = picked_up.elapsed();
        core.metrics
            .duration_hit
            .observe((queue_wait + service_time).as_micros() as f64);
        return Ok(ServedAnswer {
            response,
            answer_cache_hit: true,
            semantic_cache_hit: false,
            coalesced: false,
            queue_wait,
            service_time,
            worker,
        });
    }
    // Budget checkpoint between the cache and embed stages: a request
    // whose deadline lapsed during the lookup does no further work.
    if job.budget.expired() {
        return Err(deadline_shed(core));
    }
    let embed_ctx = tracer.child_of(&job.ctx);
    let embed_start = tracer.clock_micros(&embed_ctx);
    let embed_t0 = Instant::now();
    let (qvec, embed_cached) = match core.embeds.get(&job.key, generation) {
        Some(v) => (v, true),
        None => {
            let v = Arc::new(copilot.extractor().embed_question(&job.req.question));
            core.embeds.insert(job.key.clone(), Arc::clone(&v), generation);
            (v, false)
        }
    };
    tracer.record_span(
        &embed_ctx,
        "embed",
        embed_start,
        dio_obs::micros_u64(embed_t0.elapsed()),
        &[
            ("cache", "embed"),
            ("result", if embed_cached { "hit" } else { "miss" }),
        ],
    );
    // Budget checkpoint between the embed and pipeline stages.
    if job.budget.expired() {
        return Err(deadline_shed(core));
    }
    let mut semantic_cache_hit = false;
    let mut coalesced = false;
    let response = 'resp: {
        // The gateway plane serves full-fidelity answers only: under a
        // CacheOnly-or-worse brownout the request degrades below
        // instead, and neither the semantic cache nor the coalescer
        // should publish degraded results.
        if let Some(gw) = core
            .gateway
            .as_ref()
            .filter(|_| level < BrownoutLevel::CacheOnly)
        {
            // Semantic probe: serve a near-duplicate's answer when a
            // cached neighbor clears the similarity floor.
            if let Some(sem) = &gw.semantic {
                let probe_ctx = tracer.child_of(&job.ctx);
                let probe_start = tracer.clock_micros(&probe_ctx);
                let probe_t0 = Instant::now();
                let probe = sem.probe(job.req.ts, generation, &qvec);
                let similarity = match &probe {
                    Probe::Hit { similarity, .. } | Probe::Reject { similarity } => {
                        format!("{similarity:.4}")
                    }
                    Probe::Miss => String::new(),
                };
                tracer.record_span(
                    &probe_ctx,
                    "semantic_probe",
                    probe_start,
                    dio_obs::micros_u64(probe_t0.elapsed()),
                    &[("result", probe.event()), ("similarity", &similarity)],
                );
                if let Probe::Hit { value, .. } = probe {
                    semantic_cache_hit = true;
                    break 'resp value;
                }
            }
            if job.budget.expired() {
                return Err(deadline_shed(core));
            }
            if gw.coalesce {
                // Singleflight: identical normalized questions at the
                // same (generation, ts) share one pipeline run. The
                // generation in the key means a knowledge bump opens a
                // fresh epoch rather than sharing a stale answer.
                let sf_key = format!("{}\u{1f}{}", generation, answer_key);
                let mut rejoins = 0;
                loop {
                    match gw.flights.join(&sf_key) {
                        Join::Leader(guard) => {
                            gw.role_leader.inc();
                            let response =
                                run_pipeline(copilot, job, &qvec, level, base_knobs);
                            // Deadline-aborted answers are never
                            // shared: dropping the guard abandons the
                            // epoch and followers recompute with their
                            // own (possibly healthier) budgets.
                            if matches!(
                                response.error,
                                Some(CopilotError::DeadlineExceeded { .. })
                            ) {
                                drop(guard);
                            } else {
                                guard.publish(response.clone());
                            }
                            break 'resp response;
                        }
                        Join::Follower(h) => {
                            gw.role_follower.inc();
                            let wait_ctx = tracer.child_of(&job.ctx);
                            let wait_start = tracer.clock_micros(&wait_ctx);
                            let wait_t0 = Instant::now();
                            let out = h.wait(&job.budget);
                            let outcome_label = match &out {
                                FollowerOutcome::Ready(_) => "ready",
                                FollowerOutcome::Abandoned => "abandoned",
                                FollowerOutcome::TimedOut => "timeout",
                            };
                            tracer.record_span(
                                &wait_ctx,
                                "coalesce_wait",
                                wait_start,
                                dio_obs::micros_u64(wait_t0.elapsed()),
                                &[("outcome", outcome_label)],
                            );
                            match out {
                                FollowerOutcome::Ready(v) => {
                                    coalesced = true;
                                    break 'resp v;
                                }
                                FollowerOutcome::Abandoned => {
                                    gw.role_abandoned.inc();
                                    rejoins += 1;
                                    if rejoins >= MAX_REJOINS {
                                        // Pathological abandon churn:
                                        // stop following, run solo.
                                        break;
                                    }
                                }
                                FollowerOutcome::TimedOut => {
                                    gw.role_timeout.inc();
                                    return Err(deadline_shed(core));
                                }
                            }
                        }
                    }
                }
            }
        }
        run_pipeline(copilot, job, &qvec, level, base_knobs)
    };
    // Browned-out and deadline-aborted responses stay out of the
    // answer cache: once pressure clears (or the client retries with
    // budget to spare) the question deserves a full-fidelity answer.
    // Coalesced and semantic hits skip insertion too — their leader or
    // neighbor already populated both caches under the same keys.
    let deadline_abort = matches!(response.error, Some(CopilotError::DeadlineExceeded { .. }));
    if level < BrownoutLevel::CacheOnly && !deadline_abort && !coalesced && !semantic_cache_hit {
        core.answers
            .insert(answer_key, response.clone(), generation);
        if let Some(sem) = core.gateway.as_ref().and_then(|gw| gw.semantic.as_ref()) {
            // Only healthy answers become semantic neighbors: serving
            // a paraphrase an *errored* answer would trade EX for
            // latency in exactly the wrong direction.
            if response.error.is_none() {
                sem.insert(
                    job.req.ts,
                    generation,
                    &job.key,
                    Arc::clone(&qvec),
                    response.clone(),
                );
            }
        }
    }
    let service_time = picked_up.elapsed();
    core.metrics
        .duration_miss
        .observe((queue_wait + service_time).as_micros() as f64);
    Ok(ServedAnswer {
        response,
        answer_cache_hit: false,
        semantic_cache_hit,
        coalesced,
        queue_wait,
        service_time,
        worker,
    })
}

/// Bounded abandon-rejoin attempts before a follower gives up on
/// coalescing and computes solo.
const MAX_REJOINS: usize = 3;

/// Run the pipeline under the brownout rung's knobs, restoring the
/// worker's full-fidelity knobs afterwards. Shared by the solo path
/// and the singleflight leader path.
fn run_pipeline(
    copilot: &mut DioCopilot,
    job: &Job,
    qvec: &Arc<dio_embed::Vector>,
    level: BrownoutLevel,
    base_knobs: (usize, usize),
) -> CopilotResponse {
    // Apply the brownout rung: shrink retrieval, drop repair rounds,
    // or skip the model entirely — then restore the worker's
    // full-fidelity knobs for the next request.
    let (top_k, repairs) = match level {
        BrownoutLevel::Normal => base_knobs,
        BrownoutLevel::ReducedRetrieval => (base_knobs.0.min(BROWNOUT_TOP_K), base_knobs.1),
        _ => (base_knobs.0.min(BROWNOUT_TOP_K), 0),
    };
    copilot.set_top_k(top_k);
    copilot.set_max_repair_rounds(repairs);
    let response = if level >= BrownoutLevel::CacheOnly {
        copilot.ask_degraded(
            &job.req.question,
            job.req.ts,
            Some(qvec),
            Some(&job.ctx),
            &job.budget,
        )
    } else {
        copilot.ask_budgeted(
            &job.req.question,
            job.req.ts,
            Some(qvec),
            Some(&job.ctx),
            &job.budget,
        )
    };
    copilot.set_top_k(base_knobs.0);
    copilot.set_max_repair_rounds(base_knobs.1);
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_grows_with_backlog_per_worker() {
        let empty = retry_hint(0, 8, Duration::ZERO);
        let half = retry_hint(32, 8, Duration::ZERO);
        let full = retry_hint(64, 8, Duration::ZERO);
        assert!(empty < half, "{empty:?} vs {half:?}");
        assert!(half < full, "{half:?} vs {full:?}");
        // Fewer workers drain slower: the same backlog advises a
        // longer wait.
        assert!(retry_hint(64, 1, Duration::ZERO) > full);
    }

    #[test]
    fn retry_hint_is_floored_and_capped() {
        // The tenant refill floors the hint…
        let refill = Duration::from_millis(900);
        assert_eq!(retry_hint(0, 8, refill), refill);
        // …and a pathological backlog cannot advise unbounded waits.
        assert_eq!(
            retry_hint(usize::MAX / 32, 1, Duration::ZERO),
            Duration::from_millis(5_000)
        );
    }
}

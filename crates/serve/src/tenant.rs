//! Per-tenant fair-share admission via token buckets.
//!
//! Every tenant gets an identical token bucket: `rate_per_sec` tokens
//! refill continuously up to `burst`. A request costs one token;
//! tenants that exhaust their bucket are shed with
//! [`crate::ShedReason::TenantThrottle`] and a `retry_after` hint —
//! the time until one token will have refilled. Because buckets are
//! independent, one chatty tenant can exhaust only its own budget and
//! never starves the others (fair share by isolation, not by global
//! scheduling).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The tenant classes the service distinguishes for SLO purposes.
pub const TENANT_CLASSES: [&str; 2] = ["premium", "standard"];

/// The billing/priority class of a tenant, derived from the naming
/// convention the serving harnesses use: tenants prefixed `premium`
/// are the paid class, everything else is `standard`. Per-class
/// latency histograms (and the SLO engine's latency objectives) key
/// on this.
pub fn tenant_class(tenant: &str) -> &'static str {
    if tenant.starts_with("premium") {
        "premium"
    } else {
        "standard"
    }
}

/// The per-tenant rate policy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantPolicy {
    /// Sustained requests per second per tenant. `<= 0` disables
    /// throttling entirely (every request admitted).
    pub rate_per_sec: f64,
    /// Bucket depth: how many requests a tenant may burst above the
    /// sustained rate.
    pub burst: f64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            rate_per_sec: 50.0,
            burst: 100.0,
        }
    }
}

impl TenantPolicy {
    /// A policy that admits everything (rate limiting off).
    pub fn unlimited() -> Self {
        TenantPolicy {
            rate_per_sec: 0.0,
            burst: 0.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Fair-share rate limiter: one token bucket per tenant name.
#[derive(Debug)]
pub struct RateLimiter {
    policy: TenantPolicy,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// Build a limiter with the given per-tenant policy.
    pub fn new(policy: TenantPolicy) -> Self {
        RateLimiter {
            policy,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> TenantPolicy {
        self.policy
    }

    /// Try to spend one token for `tenant`. On refusal returns how
    /// long until a token will be available.
    pub fn try_acquire(&self, tenant: &str) -> Result<(), Duration> {
        self.try_acquire_at(tenant, Instant::now())
    }

    /// [`RateLimiter::try_acquire`] with an explicit clock.
    pub fn try_acquire_at(&self, tenant: &str, now: Instant) -> Result<(), Duration> {
        if self.policy.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.policy.burst,
            refilled: now,
        });
        let dt = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.policy.rate_per_sec).min(self.policy.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(Duration::from_secs_f64(deficit / self.policy.rate_per_sec))
        }
    }

    /// Return one token to `tenant`'s bucket. Used when an admitted
    /// request is refused downstream (e.g. the queue is full during a
    /// failover-induced backup): the tenant did not consume service,
    /// so the charge is reversed and a well-behaved retry is not
    /// throttled for the service's own congestion.
    pub fn refund(&self, tenant: &str) {
        if self.policy.rate_per_sec <= 0.0 {
            return;
        }
        let mut buckets = self.buckets.lock().unwrap();
        if let Some(bucket) = buckets.get_mut(tenant) {
            bucket.tokens = (bucket.tokens + 1.0).min(self.policy.burst);
        }
    }

    /// Tenants seen so far.
    pub fn tenant_count(&self) -> usize {
        self.buckets.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let rl = RateLimiter::new(TenantPolicy {
            rate_per_sec: 10.0,
            burst: 3.0,
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(rl.try_acquire_at("a", t0).is_ok());
        }
        let retry = rl.try_acquire_at("a", t0).unwrap_err();
        // One token refills in 100ms at 10/s.
        assert!(retry <= Duration::from_millis(101), "retry {retry:?}");
        assert!(retry >= Duration::from_millis(99), "retry {retry:?}");
    }

    #[test]
    fn refill_restores_admission() {
        let rl = RateLimiter::new(TenantPolicy {
            rate_per_sec: 10.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        assert!(rl.try_acquire_at("a", t0).is_ok());
        assert!(rl.try_acquire_at("a", t0).is_err());
        assert!(rl
            .try_acquire_at("a", t0 + Duration::from_millis(150))
            .is_ok());
    }

    #[test]
    fn refund_reverses_the_charge() {
        let rl = RateLimiter::new(TenantPolicy {
            rate_per_sec: 10.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        assert!(rl.try_acquire_at("a", t0).is_ok());
        // Downstream refused the admitted request: the refund makes
        // the immediate retry admissible instead of throttled.
        rl.refund("a");
        assert!(rl.try_acquire_at("a", t0).is_ok());
        assert!(rl.try_acquire_at("a", t0).is_err());
        // Refunds never push a bucket past its burst capacity, and a
        // refund for an uncharged tenant is a no-op.
        rl.refund("a");
        rl.refund("a");
        rl.refund("a");
        assert!(rl.try_acquire_at("a", t0).is_ok());
        assert!(rl.try_acquire_at("a", t0).is_err());
        rl.refund("never-charged");
        assert_eq!(rl.tenant_count(), 1);
    }

    #[test]
    fn tenants_are_isolated() {
        let rl = RateLimiter::new(TenantPolicy {
            rate_per_sec: 1.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        assert!(rl.try_acquire_at("noisy", t0).is_ok());
        assert!(rl.try_acquire_at("noisy", t0).is_err());
        // A different tenant is unaffected by `noisy`'s exhaustion.
        assert!(rl.try_acquire_at("quiet", t0).is_ok());
        assert_eq!(rl.tenant_count(), 2);
    }

    #[test]
    fn refill_caps_at_burst() {
        let rl = RateLimiter::new(TenantPolicy {
            rate_per_sec: 100.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        // After a long idle stretch only `burst` tokens are available.
        let later = t0 + Duration::from_secs(60);
        assert!(rl.try_acquire_at("a", t0).is_ok());
        assert!(rl.try_acquire_at("a", later).is_ok());
        assert!(rl.try_acquire_at("a", later).is_ok());
        assert!(rl.try_acquire_at("a", later).is_err());
    }

    #[test]
    fn unlimited_policy_always_admits() {
        let rl = RateLimiter::new(TenantPolicy::unlimited());
        let t0 = Instant::now();
        for _ in 0..10_000 {
            assert!(rl.try_acquire_at("a", t0).is_ok());
        }
    }
}

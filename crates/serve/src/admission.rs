//! The bounded admission queue with deadline-aware scheduling.
//!
//! Admission control is the service's backpressure valve: the queue
//! holds at most `capacity` accepted-but-unserved requests, and a full
//! queue sheds new arrivals immediately ([`ShedReason::QueueFull`])
//! instead of letting latency grow without bound. Workers drain the
//! queue in **earliest-deadline-first** order (a min-heap on the
//! absolute deadline, FIFO among equal deadlines), so under load the
//! requests most about to become useless are served first and the
//! rest shed cheaply at dequeue time rather than after burning a
//! worker on them.
//!
//! Shutdown is a drain, not a drop: after [`AdmissionQueue::shutdown`]
//! new pushes are refused but [`AdmissionQueue::pop`] keeps returning
//! queued entries until the heap is empty — an accepted request is
//! never silently discarded.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a request was refused or abandoned instead of answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The tenant's token bucket was empty.
    TenantThrottle,
    /// The deadline lapsed while the request waited in the queue.
    DeadlineExpired,
    /// The pipeline panicked while serving the request; the request
    /// was not retried.
    WorkerPanic,
    /// The service was shutting down when the request arrived.
    Shutdown,
    /// The brownout ladder ([`crate::BrownoutLevel::Shed`]) was at its
    /// top rung: arrivals are refused while the backlog drains.
    Brownout,
}

impl ShedReason {
    /// The metric label value for `dio_serve_shed_total{reason=...}`.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::TenantThrottle => "tenant_throttle",
            ShedReason::DeadlineExpired => "deadline_expired",
            ShedReason::WorkerPanic => "worker_panic",
            ShedReason::Shutdown => "shutdown",
            ShedReason::Brownout => "brownout",
        }
    }

    /// Every variant, for metric pre-registration.
    pub fn all() -> [ShedReason; 6] {
        [
            ShedReason::QueueFull,
            ShedReason::TenantThrottle,
            ShedReason::DeadlineExpired,
            ShedReason::WorkerPanic,
            ShedReason::Shutdown,
            ShedReason::Brownout,
        ]
    }
}

struct Entry<T> {
    deadline: Instant,
    seq: u64,
    item: T,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// deadline (FIFO by sequence number among ties).
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    shutdown: bool,
}

/// A bounded, blocking, earliest-deadline-first queue.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

/// Why [`AdmissionQueue::try_push`] refused an item (the item rides
/// back to the caller for reply routing).
pub struct PushRefused<T> {
    /// The refused item, returned to the caller.
    pub item: T,
    /// Queue full vs shutting down.
    pub reason: ShedReason,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` pending entries.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item` due by `deadline`, or refuse it immediately.
    pub fn try_push(&self, item: T, deadline: Instant) -> Result<(), PushRefused<T>> {
        let mut state = self.state.lock().unwrap();
        if state.shutdown {
            return Err(PushRefused {
                item,
                reason: ShedReason::Shutdown,
            });
        }
        if state.heap.len() >= self.capacity {
            return Err(PushRefused {
                item,
                reason: ShedReason::QueueFull,
            });
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Entry {
            deadline,
            seq,
            item,
        });
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an entry is available, returning it with its
    /// deadline. Returns `None` only when the queue has been shut down
    /// **and** fully drained.
    pub fn pop(&self) -> Option<(T, Instant)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(e) = state.heap.pop() {
                return Some((e.item, e.deadline));
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Refuse future pushes and wake every blocked popper. Queued
    /// entries remain poppable until drained.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pops_in_deadline_order() {
        let q = AdmissionQueue::new(8);
        let t0 = Instant::now();
        q.try_push("late", t0 + Duration::from_secs(30)).ok().unwrap();
        q.try_push("soon", t0 + Duration::from_secs(1)).ok().unwrap();
        q.try_push("mid", t0 + Duration::from_secs(10)).ok().unwrap();
        assert_eq!(q.pop().unwrap().0, "soon");
        assert_eq!(q.pop().unwrap().0, "mid");
        assert_eq!(q.pop().unwrap().0, "late");
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let q = AdmissionQueue::new(8);
        let d = Instant::now() + Duration::from_secs(5);
        for name in ["first", "second", "third"] {
            q.try_push(name, d).ok().unwrap();
        }
        assert_eq!(q.pop().unwrap().0, "first");
        assert_eq!(q.pop().unwrap().0, "second");
        assert_eq!(q.pop().unwrap().0, "third");
    }

    #[test]
    fn refuses_beyond_capacity() {
        let q = AdmissionQueue::new(2);
        let d = Instant::now();
        assert!(q.try_push(1, d).is_ok());
        assert!(q.try_push(2, d).is_ok());
        let refused = q.try_push(3, d).err().unwrap();
        assert_eq!(refused.item, 3);
        assert_eq!(refused.reason, ShedReason::QueueFull);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = AdmissionQueue::new(8);
        let d = Instant::now();
        q.try_push("queued", d).ok().unwrap();
        q.shutdown();
        // New arrivals refused…
        assert_eq!(
            q.try_push("late", d).err().unwrap().reason,
            ShedReason::Shutdown
        );
        // …but the accepted entry still drains.
        assert_eq!(q.pop().unwrap().0, "queued");
        assert!(q.pop().is_none());
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = std::sync::Arc::new(AdmissionQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|(v, _)| v));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42, Instant::now()).ok().unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn blocked_pop_wakes_on_shutdown() {
        let q = std::sync::Arc::new(AdmissionQueue::<i32>::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.shutdown();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn shed_reason_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ShedReason::all().iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), ShedReason::all().len());
    }
}

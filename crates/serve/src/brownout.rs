//! The adaptive brownout ladder.
//!
//! Load shedding ([`crate::ShedReason`]) is binary: a request is served
//! or refused. Brownout adds the rungs in between — under sustained
//! pressure the service *degrades* answers before it *refuses* them,
//! trading answer fidelity for goodput one step at a time:
//!
//! 1. [`BrownoutLevel::ReducedRetrieval`] — shrink the retrieval top-k
//!    so each ask reads and ranks less context;
//! 2. [`BrownoutLevel::NoRepair`] — additionally skip sandbox repair
//!    rounds (first generation either executes or degrades);
//! 3. [`BrownoutLevel::CacheOnly`] — answer from the answer cache or
//!    the degraded direct-lookup fallback only; no model calls at all;
//! 4. [`BrownoutLevel::Shed`] — refuse new arrivals at admission
//!    ([`crate::ShedReason::Brownout`]) while the backlog drains.
//!
//! The [`BrownoutController`] watches two pressure signals at worker
//! pickup: admission-queue occupancy and a rolling percentile of queue
//! waits. Escalation and recovery are both *one rung at a time* with
//! streak-based hysteresis — it takes several consecutive pressured
//! observations to step down the ladder and strictly more consecutive
//! clear observations to climb back, so the level cannot flap on a
//! single noisy sample. Every transition is exported on the
//! `dio_serve_brownout_level` gauge, counted in
//! `dio_serve_brownout_transitions_total{to=...}`, and recorded as a
//! span event on the trace of the request whose pickup triggered it.

use dio_obs::{Counter, Gauge, Registry};
use std::collections::VecDeque;
use std::time::Duration;

/// Degradation rungs, mildest first. Ordered: a higher level implies
/// every restriction of the levels below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BrownoutLevel {
    /// Full service.
    Normal,
    /// Retrieval top-k shrunk.
    ReducedRetrieval,
    /// Repair rounds skipped as well.
    NoRepair,
    /// Answer cache or the degraded direct-lookup fallback only — no
    /// foundation-model calls.
    CacheOnly,
    /// New arrivals refused at admission while the backlog drains.
    Shed,
}

impl BrownoutLevel {
    /// Every level, mildest first.
    pub fn all() -> [BrownoutLevel; 5] {
        [
            BrownoutLevel::Normal,
            BrownoutLevel::ReducedRetrieval,
            BrownoutLevel::NoRepair,
            BrownoutLevel::CacheOnly,
            BrownoutLevel::Shed,
        ]
    }

    /// The ladder position (0 = normal … 4 = shed); the value the
    /// `dio_serve_brownout_level` gauge exports.
    pub fn as_index(self) -> usize {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::ReducedRetrieval => 1,
            BrownoutLevel::NoRepair => 2,
            BrownoutLevel::CacheOnly => 3,
            BrownoutLevel::Shed => 4,
        }
    }

    /// The metric/event label value.
    pub fn label(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::ReducedRetrieval => "reduced_retrieval",
            BrownoutLevel::NoRepair => "no_repair",
            BrownoutLevel::CacheOnly => "cache_only",
            BrownoutLevel::Shed => "shed",
        }
    }

    fn from_index(i: usize) -> BrownoutLevel {
        Self::all()[i.min(4)]
    }
}

/// Pressure thresholds and hysteresis for the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Queue occupancy (fraction of capacity) at or above which an
    /// observation counts as *pressured*.
    pub queue_high: f64,
    /// Queue occupancy at or below which an observation may count as
    /// *clear* (strictly less than `queue_high` for hysteresis).
    pub queue_low: f64,
    /// The rolling queue-wait percentile watched (0..1).
    pub wait_percentile: f64,
    /// Fraction of the default deadline the watched percentile may
    /// reach before an observation counts as pressured.
    pub wait_budget: f64,
    /// Consecutive pressured observations required to step one rung
    /// down the ladder.
    pub step_up_after: usize,
    /// Consecutive clear observations required to step one rung back —
    /// larger than `step_up_after` so recovery is the slow direction.
    pub step_down_after: usize,
    /// Rolling queue-wait window size (observations).
    pub window: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            queue_high: 0.5,
            queue_low: 0.25,
            wait_percentile: 0.9,
            wait_budget: 0.25,
            step_up_after: 3,
            step_down_after: 8,
            window: 64,
        }
    }
}

impl BrownoutConfig {
    /// A ladder that never engages (the no-brownout ablation baseline:
    /// the service sheds binary-style only).
    pub fn disabled() -> Self {
        BrownoutConfig {
            step_up_after: usize::MAX,
            ..BrownoutConfig::default()
        }
    }
}

/// One observed transition: `(from, to)`.
pub type BrownoutTransition = (BrownoutLevel, BrownoutLevel);

/// The streak-hysteresis ladder state machine. Owned by the service
/// core behind a mutex; workers feed it one observation per pickup.
pub struct BrownoutController {
    cfg: BrownoutConfig,
    queue_capacity: usize,
    deadline: Duration,
    waits_micros: VecDeque<u64>,
    level: usize,
    pressured_streak: usize,
    clear_streak: usize,
    gauge: Gauge,
    transitions: [Counter; 5],
}

impl BrownoutController {
    /// Build a controller for a queue of `queue_capacity` entries and
    /// requests granted `deadline` by default, exporting its level on
    /// `registry`.
    pub fn new(
        cfg: BrownoutConfig,
        queue_capacity: usize,
        deadline: Duration,
        registry: &Registry,
    ) -> Self {
        let gauge = registry.gauge(
            "dio_serve_brownout_level",
            "current brownout ladder position (0 normal … 4 shed)",
        );
        gauge.set(0.0);
        let transitions = BrownoutLevel::all().map(|to| {
            registry.counter_with(
                "dio_serve_brownout_transitions_total",
                "brownout ladder transitions, by destination level",
                &[("to", to.label())],
            )
        });
        BrownoutController {
            cfg,
            queue_capacity: queue_capacity.max(1),
            deadline,
            waits_micros: VecDeque::new(),
            level: 0,
            pressured_streak: 0,
            clear_streak: 0,
            gauge,
            transitions,
        }
    }

    /// The current level.
    pub fn level(&self) -> BrownoutLevel {
        BrownoutLevel::from_index(self.level)
    }

    /// Feed one pickup observation: current queue length plus the time
    /// the picked request waited. Returns the (possibly new) level and
    /// the transition, if this observation caused one.
    pub fn observe(
        &mut self,
        queue_len: usize,
        queue_wait: Duration,
    ) -> (BrownoutLevel, Option<BrownoutTransition>) {
        if self.waits_micros.len() == self.cfg.window.max(1) {
            self.waits_micros.pop_front();
        }
        self.waits_micros
            .push_back(queue_wait.as_micros() as u64);

        let occupancy = queue_len as f64 / self.queue_capacity as f64;
        let wait_limit = self.deadline.as_micros() as f64 * self.cfg.wait_budget;
        let wait_p = self.wait_percentile_micros();
        let pressured = occupancy >= self.cfg.queue_high || wait_p > wait_limit;
        // Clear needs both signals quiet, and the wait percentile well
        // under the limit (half), so the ladder does not oscillate
        // right at the threshold.
        let clear = occupancy <= self.cfg.queue_low && wait_p <= wait_limit / 2.0;

        if pressured {
            self.pressured_streak += 1;
            self.clear_streak = 0;
        } else if clear {
            self.clear_streak += 1;
            self.pressured_streak = 0;
        } else {
            self.pressured_streak = 0;
            self.clear_streak = 0;
        }

        let from = self.level;
        if self.pressured_streak >= self.cfg.step_up_after && self.level < 4 {
            self.level += 1;
            self.pressured_streak = 0;
        } else if self.clear_streak >= self.cfg.step_down_after && self.level > 0 {
            self.level -= 1;
            self.clear_streak = 0;
        }
        let level = BrownoutLevel::from_index(self.level);
        let transition = (self.level != from).then(|| {
            self.gauge.set(self.level as f64);
            self.transitions[self.level].inc();
            (BrownoutLevel::from_index(from), level)
        });
        (level, transition)
    }

    fn wait_percentile_micros(&self) -> f64 {
        let n = self.waits_micros.len();
        if n == 0 {
            return 0.0;
        }
        let mut v: Vec<u64> = self.waits_micros.iter().copied().collect();
        v.sort_unstable();
        let idx = ((n - 1) as f64 * self.cfg.wait_percentile).round() as usize;
        v[idx.min(n - 1)] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(cfg: BrownoutConfig) -> BrownoutController {
        BrownoutController::new(cfg, 8, Duration::from_secs(30), &Registry::new())
    }

    #[test]
    fn levels_are_ordered_and_labelled_distinctly() {
        let all = BrownoutLevel::all();
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
        let labels: std::collections::HashSet<_> = all.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), all.len());
        for (i, l) in all.iter().enumerate() {
            assert_eq!(l.as_index(), i);
        }
    }

    #[test]
    fn sustained_pressure_steps_down_one_rung_at_a_time() {
        let mut c = controller(BrownoutConfig::default());
        // Full queue, long waits: pressured every observation. Three
        // observations per rung (step_up_after = 3).
        let mut seen = vec![c.level()];
        for _ in 0..12 {
            let (level, transition) = c.observe(8, Duration::from_secs(20));
            if let Some((from, to)) = transition {
                assert_eq!(to.as_index(), from.as_index() + 1, "must step one rung");
                seen.push(level);
            }
        }
        assert_eq!(
            seen,
            vec![
                BrownoutLevel::Normal,
                BrownoutLevel::ReducedRetrieval,
                BrownoutLevel::NoRepair,
                BrownoutLevel::CacheOnly,
                BrownoutLevel::Shed,
            ],
            "the full ladder engages under sustained pressure"
        );
        // Saturated: no further escalation past Shed.
        assert!(c.observe(8, Duration::from_secs(20)).1.is_none());
    }

    #[test]
    fn pressure_clearing_restores_level_by_level_slowly() {
        let mut c = controller(BrownoutConfig::default());
        for _ in 0..6 {
            c.observe(8, Duration::ZERO); // full queue: occupancy pressure
        }
        assert_eq!(c.level(), BrownoutLevel::NoRepair);
        let mut restored = Vec::new();
        for _ in 0..200 {
            if let (level, Some((from, to))) = c.observe(0, Duration::ZERO) {
                assert_eq!(to.as_index() + 1, from.as_index(), "must restore one rung");
                restored.push(level);
            }
        }
        assert_eq!(
            restored,
            vec![BrownoutLevel::ReducedRetrieval, BrownoutLevel::Normal],
            "recovery climbs the ladder one rung at a time"
        );
        // Recovery is the slow direction: climbing out took more clear
        // observations per rung than descending took pressured ones.
        let cfg = BrownoutConfig::default();
        assert!(cfg.step_down_after > cfg.step_up_after);
    }

    #[test]
    fn mixed_signals_reset_both_streaks() {
        let mut c = controller(BrownoutConfig::default());
        // Two pressured observations, then a neutral one (mid
        // occupancy), repeatedly: the streak never reaches three.
        for _ in 0..10 {
            c.observe(8, Duration::ZERO);
            c.observe(8, Duration::ZERO);
            c.observe(3, Duration::ZERO);
        }
        assert_eq!(c.level(), BrownoutLevel::Normal, "hysteresis must hold");
    }

    #[test]
    fn disabled_config_never_engages() {
        let mut c = controller(BrownoutConfig::disabled());
        for _ in 0..100 {
            assert!(c.observe(8, Duration::from_secs(29)).1.is_none());
        }
        assert_eq!(c.level(), BrownoutLevel::Normal);
    }

    #[test]
    fn transitions_move_the_gauge_and_counters() {
        let registry = Registry::new();
        let mut c = BrownoutController::new(
            BrownoutConfig::default(),
            8,
            Duration::from_secs(30),
            &registry,
        );
        for _ in 0..3 {
            c.observe(8, Duration::from_secs(20));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.total("dio_serve_brownout_level"), 1.0);
        assert!(snap.total("dio_serve_brownout_transitions_total") >= 1.0);
    }
}

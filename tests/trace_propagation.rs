//! Trace-propagation integration test: under an 8-worker concurrent
//! burst with a mid-burst shard failover, every submitted request must
//! produce exactly one finished trace whose spans assemble into a
//! single rooted tree — no orphan spans, no split traces — and the
//! promotion a traced query paid for must appear as a span on that
//! query's own tree.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::cluster::{Cluster, ClusterConfig};
use dio::copilot::CopilotBuilder;
use dio::llm::{FoundationModel, ModelProfile, SimulatedModel};
use dio::obs::{TraceStatus, FAILOVER_SPAN, ROOT_SPAN_NAME};
use dio::serve::{QueryRequest, QueryService, ServeConfig, ServeOutcome, TenantPolicy};
use std::sync::Arc;

fn model() -> Box<dyn FoundationModel> {
    Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
}

#[test]
fn concurrent_burst_with_failover_yields_only_rooted_trees() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 10, 0x7ace_0001);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(3)));
    cluster.load_from(&world.store).expect("cluster load");
    let mut prototype = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(model())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    prototype.attach_store_resolver(cluster.clone() as Arc<dyn dio::sandbox::StoreResolver>);

    let service = QueryService::spawn(
        &prototype,
        model,
        ServeConfig {
            workers: 8,
            queue_depth: 64,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );

    const BURST: usize = 40;
    let mut tickets = Vec::new();
    let mut submit_sheds = 0usize;
    for (i, q) in questions.iter().cycle().take(BURST).enumerate() {
        let tenant = if i % 3 == 0 {
            format!("premium-{}", i % 2)
        } else {
            format!("tenant-{}", i % 4)
        };
        match service.submit(QueryRequest::new(tenant, &q.text, world.eval_ts)) {
            Ok(t) => tickets.push(t),
            Err(_) => submit_sheds += 1,
        }
        if i == BURST / 2 {
            // Mid-burst failover: in-flight and queued requests now
            // race the promotion on whichever shard node 0 owned.
            assert!(cluster.kill_node(0), "node 0 was already down");
        }
    }
    let accepted = tickets.len();
    let tracer = service.obs().tracer().clone();
    service.shutdown(); // drain-not-drop: every ticket resolves
    let mut answered = 0usize;
    for t in tickets {
        if let ServeOutcome::Answered(_) = t.wait() {
            answered += 1;
        }
    }
    assert!(answered > 0, "burst produced no answers");

    // Every submission — answered, shed at submit, or shed in the
    // queue — finished exactly one trace.
    let traces = tracer.recent(BURST * 2);
    let finished: Vec<_> = traces.iter().filter(|t| t.finished).collect();
    assert_eq!(
        finished.len(),
        accepted + submit_sheds,
        "each submission must finish exactly one trace"
    );

    for rec in &finished {
        // Exactly one root span, and everything reachable from it.
        let roots = rec
            .spans
            .iter()
            .filter(|s| s.name == ROOT_SPAN_NAME && s.parent_span_id.is_none())
            .count();
        assert_eq!(roots, 1, "trace {} ({}) must have one root", rec.id, rec.label);
        assert_eq!(
            rec.orphan_count(),
            0,
            "trace {} ({}) has orphan spans: {:?}",
            rec.id,
            rec.label,
            rec.spans
        );
        let tree = rec.tree().expect("finished trace must assemble a tree");
        assert_eq!(tree.rooted_len(), rec.spans.len());
        // Answered/errored requests were picked up by a worker: their
        // submit-to-reply time decomposes into queue wait + service.
        if rec.status != TraceStatus::Shed {
            assert!(
                rec.has_span("queue_wait"),
                "picked-up trace {} lacks a queue_wait span",
                rec.id
            );
        }
    }

    // The kill was observed: if a traced query triggered the
    // promotion, the failover span sits on that query's tree.
    if cluster.failovers() > 0 {
        assert!(
            finished.iter().any(|t| t.has_span(FAILOVER_SPAN)),
            "failover happened but no trace carries its span"
        );
    } else {
        assert_eq!(cluster.down_nodes(), vec![0]);
    }
    cluster.restart_node(0);
}

//! Property-based tests on the core substrates: the PromQL pipeline
//! never panics on arbitrary input, the printer round-trips what the
//! parser accepts, label algebra is lawful, matchers agree with a
//! reference implementation, and the synthesiser preserves counter
//! monotonicity for arbitrary parameters.

use dio::promql::{format_expr, parse};
use dio::tsdb::{Labels, MetricStore, Sample, SeriesSpec, SynthConfig, Synthesizer};
use proptest::prelude::*;

proptest! {
    /// The lexer+parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// Whatever parses must format to something that re-parses to the
    /// identical AST (printer/parser round trip).
    #[test]
    fn printer_round_trips(input in ".{0,80}") {
        if let Ok(ast) = parse(&input) {
            let printed = format_expr(&ast);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("printed form {printed:?} failed to parse: {e}"));
            prop_assert_eq!(ast, reparsed);
        }
    }

    /// A grammar of well-formed queries always parses and round-trips.
    #[test]
    fn generated_queries_round_trip(
        metric in "[a-z][a-z0-9_]{0,30}",
        label in "[a-z][a-z0-9_]{0,10}",
        value in "[a-z0-9.*+-]{0,12}",
        minutes in 1i64..600,
        agg in prop::sample::select(vec!["sum", "avg", "min", "max", "count"]),
        func in prop::sample::select(vec!["rate", "increase", "delta", "avg_over_time"]),
    ) {
        let q = format!(
            "{agg}({func}({metric}{{{label}=\"{value}\"}}[{minutes}m]))"
        );
        let ast = parse(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let printed = format_expr(&ast);
        prop_assert_eq!(ast, parse(&printed).unwrap());
    }

    /// Pattern matching agrees with a simple backtracking reference for
    /// patterns made of literals and `.*`.
    #[test]
    fn pattern_match_agrees_with_reference(
        parts in prop::collection::vec("[a-z]{0,4}", 1..4),
        text in "[a-z]{0,12}",
    ) {
        let pattern = parts.join(".*");
        let ours = dio::tsdb::matchers::pattern_match(&pattern, &text);
        // Reference: convert to a simple anchored regex-free matcher.
        let reference = reference_match(&parts, &text);
        prop_assert_eq!(ours, reference, "pattern {} text {}", pattern, text);
    }

    /// Labels `with` is idempotent on distinct keys and `without`
    /// removes; a colliding key takes the latest value.
    #[test]
    fn labels_algebra(
        k1 in "[a-z]{1,6}", v1 in "[a-z0-9]{0,6}",
        k2 in "[a-z]{1,6}", v2 in "[a-z0-9]{0,6}",
    ) {
        let l = Labels::empty().with(k1.clone(), v1.clone()).with(k2.clone(), v2.clone());
        // Last write wins, including when k1 == k2.
        prop_assert_eq!(l.get(&k2), Some(v2.as_str()));
        if k1 != k2 {
            prop_assert_eq!(l.get(&k1), Some(v1.as_str()));
            // Re-setting an existing pair is a no-op.
            let l2 = l.with(k1.clone(), v1.clone());
            prop_assert_eq!(l.signature(), l2.signature());
        }
        let l3 = l.without(&k1);
        prop_assert_eq!(l3.get(&k1), None);
    }

    /// Synthesised counters are monotone non-decreasing for any
    /// parameters, and coupled derivations never exceed their base.
    #[test]
    fn synthesized_counters_are_monotone(
        rate in 0.01f64..100.0,
        seed in any::<u64>(),
        ratio in 0.01f64..1.0,
        steps in 2i64..50,
    ) {
        let cfg = SynthConfig { start_ms: 0, end_ms: steps * 60_000, step_ms: 60_000 };
        let synth = Synthesizer::new(cfg);
        let base = SeriesSpec::counter(Labels::name_only("a"), rate, seed);
        let derived = base.derived(Labels::name_only("s"), ratio);
        let sa = synth.synthesize(&base);
        let ss = synth.synthesize(&derived);
        for w in sa.windows(2) {
            prop_assert!(w[1].value >= w[0].value);
        }
        for (a, s) in sa.iter().zip(ss.iter()) {
            prop_assert!(s.value <= a.value + 1e-9);
        }
    }

    /// Instant queries over arbitrary small stores never panic and
    /// `sum` equals the sum of per-series lookups.
    #[test]
    fn engine_sum_matches_manual_sum(
        values in prop::collection::vec(0.0f64..1e6, 1..6),
    ) {
        let mut store = MetricStore::new();
        for (i, v) in values.iter().enumerate() {
            let labels = Labels::from_pairs([
                ("__name__", "m"),
                ("instance", &format!("i{i}")),
            ]);
            store.append(labels, Sample::new(1000, *v)).unwrap();
        }
        let engine = dio::promql::Engine::new(store);
        let got = engine.instant_query("sum(m)", 1000).unwrap().as_scalar_like().unwrap();
        let expected: f64 = values.iter().sum();
        prop_assert!((got - expected).abs() < 1e-6);
    }

    /// Token counting is monotone under concatenation.
    #[test]
    fn token_count_superadditive_under_concat(a in ".{0,40}", b in ".{0,40}") {
        let joined = format!("{a} {b}");
        let sum = dio::llm::count_tokens(&a) + dio::llm::count_tokens(&b);
        prop_assert!(dio::llm::count_tokens(&joined) <= sum + 1);
        prop_assert!(dio::llm::count_tokens(&joined) + 1 >= sum.max(1));
    }
}

/// Reference matcher for `parts.join(".*")` patterns.
fn reference_match(parts: &[String], text: &str) -> bool {
    if parts.len() == 1 {
        return parts[0] == text;
    }
    let mut pos = 0usize;
    // First part anchors at the start.
    if !text[pos..].starts_with(parts[0].as_str()) {
        return false;
    }
    pos += parts[0].len();
    // Middle parts: greedy-left search.
    for part in &parts[1..parts.len() - 1] {
        match text[pos..].find(part.as_str()) {
            Some(i) => pos += i + part.len(),
            None => return false,
        }
    }
    // Last part anchors at the end.
    let last = &parts[parts.len() - 1];
    text.len() >= pos + last.len() && text.ends_with(last.as_str())
}

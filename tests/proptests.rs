//! Property-based tests on the core substrates: the PromQL pipeline
//! never panics on arbitrary input, the printer round-trips what the
//! parser accepts, label algebra is lawful, matchers agree with a
//! reference implementation, the synthesiser preserves counter
//! monotonicity for arbitrary parameters, and the copilot survives
//! arbitrary fault schedules injected into its foundation model.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::{CopilotBuilder, DegradationLevel, DioCopilot, RecoveryPolicy};
use dio::llm::{FaultConfig, FaultyModel, ModelProfile, SimulatedModel};
use dio::promql::{format_expr, parse};
use dio::tsdb::{Labels, MetricStore, Sample, SeriesSpec, SynthConfig, Synthesizer};
use proptest::prelude::*;
use std::sync::OnceLock;

proptest! {
    /// The lexer+parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// Whatever parses must format to something that re-parses to the
    /// identical AST (printer/parser round trip).
    #[test]
    fn printer_round_trips(input in ".{0,80}") {
        if let Ok(ast) = parse(&input) {
            let printed = format_expr(&ast);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("printed form {printed:?} failed to parse: {e}"));
            prop_assert_eq!(ast, reparsed);
        }
    }

    /// A grammar of well-formed queries always parses and round-trips.
    #[test]
    fn generated_queries_round_trip(
        metric in "[a-z][a-z0-9_]{0,30}",
        label in "[a-z][a-z0-9_]{0,10}",
        value in "[a-z0-9.*+-]{0,12}",
        minutes in 1i64..600,
        agg in prop::sample::select(vec!["sum", "avg", "min", "max", "count"]),
        func in prop::sample::select(vec!["rate", "increase", "delta", "avg_over_time"]),
    ) {
        let q = format!(
            "{agg}({func}({metric}{{{label}=\"{value}\"}}[{minutes}m]))"
        );
        let ast = parse(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let printed = format_expr(&ast);
        prop_assert_eq!(ast, parse(&printed).unwrap());
    }

    /// Pattern matching agrees with a simple backtracking reference for
    /// patterns made of literals and `.*`.
    #[test]
    fn pattern_match_agrees_with_reference(
        parts in prop::collection::vec("[a-z]{0,4}", 1..4),
        text in "[a-z]{0,12}",
    ) {
        let pattern = parts.join(".*");
        let ours = dio::tsdb::matchers::pattern_match(&pattern, &text);
        // Reference: convert to a simple anchored regex-free matcher.
        let reference = reference_match(&parts, &text);
        prop_assert_eq!(ours, reference, "pattern {} text {}", pattern, text);
    }

    /// Labels `with` is idempotent on distinct keys and `without`
    /// removes; a colliding key takes the latest value.
    #[test]
    fn labels_algebra(
        k1 in "[a-z]{1,6}", v1 in "[a-z0-9]{0,6}",
        k2 in "[a-z]{1,6}", v2 in "[a-z0-9]{0,6}",
    ) {
        let l = Labels::empty().with(k1.clone(), v1.clone()).with(k2.clone(), v2.clone());
        // Last write wins, including when k1 == k2.
        prop_assert_eq!(l.get(&k2), Some(v2.as_str()));
        if k1 != k2 {
            prop_assert_eq!(l.get(&k1), Some(v1.as_str()));
            // Re-setting an existing pair is a no-op.
            let l2 = l.with(k1.clone(), v1.clone());
            prop_assert_eq!(l.signature(), l2.signature());
        }
        let l3 = l.without(&k1);
        prop_assert_eq!(l3.get(&k1), None);
    }

    /// Synthesised counters are monotone non-decreasing for any
    /// parameters, and coupled derivations never exceed their base.
    #[test]
    fn synthesized_counters_are_monotone(
        rate in 0.01f64..100.0,
        seed in any::<u64>(),
        ratio in 0.01f64..1.0,
        steps in 2i64..50,
    ) {
        let cfg = SynthConfig { start_ms: 0, end_ms: steps * 60_000, step_ms: 60_000 };
        let synth = Synthesizer::new(cfg);
        let base = SeriesSpec::counter(Labels::name_only("a"), rate, seed);
        let derived = base.derived(Labels::name_only("s"), ratio);
        let sa = synth.synthesize(&base);
        let ss = synth.synthesize(&derived);
        for w in sa.windows(2) {
            prop_assert!(w[1].value >= w[0].value);
        }
        for (a, s) in sa.iter().zip(ss.iter()) {
            prop_assert!(s.value <= a.value + 1e-9);
        }
    }

    /// Instant queries over arbitrary small stores never panic and
    /// `sum` equals the sum of per-series lookups.
    #[test]
    fn engine_sum_matches_manual_sum(
        values in prop::collection::vec(0.0f64..1e6, 1..6),
    ) {
        let mut store = MetricStore::new();
        for (i, v) in values.iter().enumerate() {
            let labels = Labels::from_pairs([
                ("__name__", "m"),
                ("instance", &format!("i{i}")),
            ]);
            store.append(labels, Sample::new(1000, *v)).unwrap();
        }
        let engine = dio::promql::Engine::new(store);
        let got = engine.instant_query("sum(m)", 1000).unwrap().as_scalar_like().unwrap();
        let expected: f64 = values.iter().sum();
        prop_assert!((got - expected).abs() < 1e-6);
    }

    /// Token counting is monotone under concatenation.
    #[test]
    fn token_count_superadditive_under_concat(a in ".{0,40}", b in ".{0,40}") {
        let joined = format!("{a} {b}");
        let sum = dio::llm::count_tokens(&a) + dio::llm::count_tokens(&b);
        prop_assert!(dio::llm::count_tokens(&joined) <= sum + 1);
        prop_assert!(dio::llm::count_tokens(&joined) + 1 >= sum.max(1));
    }
}

/// Shared world for the fault-schedule property (building the world
/// and embedding its catalog are the expensive parts).
fn fault_world() -> &'static OperatorWorld {
    static WORLD: OnceLock<OperatorWorld> = OnceLock::new();
    WORLD.get_or_init(|| OperatorWorld::build(WorldConfig::small()))
}

thread_local! {
    /// One copilot per test thread; cases swap the model and recovery
    /// policy instead of re-embedding the catalog 64 times.
    static FAULT_COPILOT: std::cell::RefCell<Option<DioCopilot>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` against the shared copilot, re-armed with a fresh fault
/// schedule and recovery policy.
fn with_faulty_copilot<T>(
    seed: u64,
    probability: f64,
    recovery: RecoveryPolicy,
    f: impl FnOnce(&mut DioCopilot) -> T,
) -> T {
    FAULT_COPILOT.with(|cell| {
        let mut slot = cell.borrow_mut();
        let copilot = slot.get_or_insert_with(|| {
            let world = fault_world();
            CopilotBuilder::new(world.domain_db(), world.store.clone())
                .exemplars(fewshot_exemplars(&world.catalog))
                .build()
        });
        copilot.replace_model(Box::new(FaultyModel::new(
            SimulatedModel::new(ModelProfile::gpt4_sim()),
            FaultConfig::with_probability(seed, probability),
        )));
        copilot.set_recovery(recovery);
        f(copilot)
    })
}

proptest! {
    /// Whatever the fault schedule — any seed, any per-call fault
    /// probability, recovery on or off — `ask` must not panic and must
    /// return a well-formed, internally consistent response.
    #[test]
    fn ask_survives_arbitrary_fault_schedules(
        seed in any::<u64>(),
        probability in 0.0f64..1.0,
        recovery_on in any::<bool>(),
    ) {
        // Include the total-outage extreme, which a half-open range
        // never draws.
        let probability = if seed % 7 == 0 { 1.0 } else { probability };
        let policy = if recovery_on {
            RecoveryPolicy::default()
        } else {
            RecoveryPolicy::disabled()
        };
        let questions = [
            "How many initial registration attempts were recorded at the AMF?",
            "What is the paging success rate?",
        ];
        let responses = with_faulty_copilot(seed, probability, policy.clone(), |copilot| {
            questions.map(|q| copilot.ask(q, fault_world().eval_ts))
        });
        for (q, r) in questions.iter().zip(responses) {
            // Well-formed: an empty query is only acceptable alongside
            // a classified error explaining why nothing ran.
            prop_assert!(!r.query.is_empty() || r.error.is_some());
            // Degradation bookkeeping is consistent in both directions,
            // and a degraded answer always carries its cause.
            prop_assert_eq!(
                r.degradation == DegradationLevel::Degraded,
                r.trace.recovery.degraded
            );
            if r.degradation == DegradationLevel::Degraded {
                prop_assert!(r.error.is_some());
            }
            // Recovery accounting respects the policy bounds.
            prop_assert!(r.trace.recovery.repairs <= policy.max_repair_rounds);
            prop_assert_eq!(
                r.trace.recovery.backoff_schedule_ms.len(),
                r.trace.recovery.retries
            );
            // Cost accounting stays sane even when calls fail midway.
            prop_assert!(r.cost_cents.is_finite() && r.cost_cents >= 0.0);
            // The trace recorded the pipeline stages.
            prop_assert!(r.trace.stages.len() >= 3);
            // Rendering never panics and always echoes the question.
            prop_assert!(r.render().contains(q));
        }
    }

    /// A zero-probability fault wrapper is a transparent proxy
    /// whatever its seed: the wrapped copilot answers exactly like the
    /// bare one.
    #[test]
    fn zero_probability_faults_are_transparent(seed in any::<u64>()) {
        let q = "How many initial registration attempts were recorded at the AMF?";
        // The bare-model reference answer, computed once.
        static PLAIN: OnceLock<(String, Option<f64>, dio::llm::TokenUsage)> = OnceLock::new();
        let (query, numeric, usage) = PLAIN.get_or_init(|| {
            let r = with_faulty_copilot(0, 0.0, RecoveryPolicy::default(), |copilot| {
                copilot.replace_model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())));
                copilot.ask(q, fault_world().eval_ts)
            });
            (r.query, r.numeric_answer, r.usage)
        }).clone();
        let b = with_faulty_copilot(seed, 0.0, RecoveryPolicy::default(), |copilot| {
            copilot.ask(q, fault_world().eval_ts)
        });
        prop_assert_eq!(query, b.query);
        prop_assert_eq!(numeric, b.numeric_answer);
        prop_assert_eq!(usage, b.usage);
    }
}

/// Reference matcher for `parts.join(".*")` patterns.
fn reference_match(parts: &[String], text: &str) -> bool {
    if parts.len() == 1 {
        return parts[0] == text;
    }
    let mut pos = 0usize;
    // First part anchors at the start.
    if !text[pos..].starts_with(parts[0].as_str()) {
        return false;
    }
    pos += parts[0].len();
    // Middle parts: greedy-left search.
    for part in &parts[1..parts.len() - 1] {
        match text[pos..].find(part.as_str()) {
            Some(i) => pos += i + part.len(),
            None => return false,
        }
    }
    // Last part anchors at the end.
    let last = &parts[parts.len() - 1];
    text.len() >= pos + last.len() && text.ends_with(last.as_str())
}

//! Integration tests spanning the whole stack: world construction →
//! retrieval → simulated model → sandboxed PromQL execution → answer.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::{CopilotBuilder, CopilotConfig, DioCopilot};
use dio::feedback::Contribution;
use dio::llm::{ModelProfile, SimulatedModel};

fn small_copilot() -> (DioCopilot, OperatorWorld) {
    let world = OperatorWorld::build(WorldConfig::small());
    let copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    (copilot, world)
}

#[test]
fn count_questions_mostly_produce_the_reference_number() {
    // The simulated model is deliberately fallible (temperature-0
    // determinism with ~10% template noise), so assert over a panel of
    // count questions rather than any single one.
    let (mut copilot, world) = small_copilot();
    let cases = [
        (
            "How many initial registration attempts were recorded at the AMF?",
            "sum(amfcc_n1_initial_registration_attempt)",
        ),
        (
            "How many mobility registration update procedure attempts did the AMF handle?",
            "sum(amfcc_n1_mobility_registration_update_attempt)",
        ),
        (
            "How many PDU session establishment procedure attempts did the SMF handle?",
            "sum(smfpdu_n11_pdu_session_establishment_attempt)",
        ),
        (
            "How many NF discovery procedure attempts did the NRF handle?",
            "sum(nrfdisc_nf_discovery_attempt)",
        ),
        (
            "How many IP address allocation procedure attempts did the SMF handle?",
            "sum(smfpdu_ip_address_allocation_attempt)",
        ),
    ];
    let engine = world.reference_engine();
    let mut exact = 0;
    for (q, reference) in cases {
        let expected = engine
            .instant_query(reference, world.eval_ts)
            .unwrap()
            .as_scalar_like()
            .unwrap();
        let r = copilot.ask(q, world.eval_ts);
        if r.numeric_answer == Some(expected) {
            exact += 1;
        }
    }
    assert!(exact >= 4, "only {exact}/5 count questions exact");
}

#[test]
fn success_rate_question_produces_percentage() {
    let (mut copilot, world) = small_copilot();
    let r = copilot.ask(
        "What is the initial registration procedure success rate at the AMF?",
        world.eval_ts,
    );
    let v = r.numeric_answer.expect("numeric answer");
    assert!(
        (80.0..=100.0).contains(&v),
        "synthetic success ratios are 90-99.5%, got {v} via {}",
        r.query
    );
}

#[test]
fn answers_are_bit_identical_across_fresh_builds() {
    let (mut a, world) = small_copilot();
    let (mut b, _) = small_copilot();
    for q in [
        "How many NF discovery requests did the NRF receive?",
        "What percentage of initial register procedures completed successfully at the AMF?",
        "What is the current number of registered users at the AMF?",
    ] {
        let ra = a.ask(q, world.eval_ts);
        let rb = b.ask(q, world.eval_ts);
        assert_eq!(ra.query, rb.query);
        assert_eq!(ra.numeric_answer, rb.numeric_answer);
        assert_eq!(ra.usage, rb.usage);
    }
}

#[test]
fn dashboard_renders_end_to_end() {
    let (mut copilot, world) = small_copilot();
    let r = copilot.ask(
        "How many authentication procedures per second is the AMF processing?",
        world.eval_ts,
    );
    let dash = r.dashboard.expect("dashboard generated");
    let json = dash.to_json();
    let parsed = dio::dashboard::Dashboard::from_json(&json).unwrap();
    assert_eq!(parsed, dash);
    let text = dio::dashboard::render_ascii(&dash, copilot.engine(), 40);
    assert!(text.contains("=="), "render: {text}");
}

#[test]
fn sandbox_policy_holds_inside_the_copilot() {
    // Whatever the model generates, a query the policy refuses must
    // surface as an error, not an answer. Exercise by injecting a
    // sensitive series and a question that names it exactly; if the
    // model echoes the name, the sandbox refuses; if it doesn't, no
    // data exists. Either way: no numeric answer.
    let world = OperatorWorld::build(WorldConfig::small());
    let mut store = world.store.clone();
    store
        .append(
            dio::tsdb::Labels::name_only("admin_reset_counters"),
            dio::tsdb::Sample::new(world.eval_ts, 42.0),
        )
        .unwrap();
    let mut copilot = CopilotBuilder::new(world.domain_db(), store)
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    let r = copilot.ask(
        "How many admin reset counters events were recorded?",
        world.eval_ts,
    );
    assert_ne!(
        r.numeric_answer,
        Some(42.0),
        "sensitive series leaked through: {}",
        r.query
    );
}

#[test]
fn feedback_loop_fixes_a_jargon_question() {
    let (mut copilot, world) = small_copilot();
    let question = "What is the LCS NI-LR procedure success rate at the AMF?";
    let group = world
        .catalog
        .groups
        .iter()
        .find(|g| g.procedure == "lcs_ni_lr")
        .unwrap();
    let (succ, att) = (
        group.success.clone().unwrap(),
        group.attempt.clone().unwrap(),
    );
    let reference = world
        .reference_engine()
        .instant_query(&format!("100 * sum({succ}) / sum({att})"), world.eval_ts)
        .unwrap()
        .as_scalar_like()
        .unwrap();

    let first = copilot.ask(question, world.eval_ts);

    // Expert enriches both counters' docs with the jargon.
    for name in [&succ, &att] {
        let mut def = world.catalog.get(name).unwrap().clone();
        def.description = format!(
            "{} Operators refer to this procedure as LCS NI-LR.",
            def.description
        );
        let issue = copilot.request_expert_help(&first);
        copilot
            .resolve_issue(issue, "expert:alice", Contribution::MetricDoc(def))
            .unwrap();
    }

    let second = copilot.ask(question, world.eval_ts);
    let v = second
        .numeric_answer
        .expect("answer after expert feedback");
    assert!(
        (v - reference).abs() <= 1e-9 * reference.abs(),
        "after feedback expected {reference}, got {v} via {}",
        second.query
    );
}

#[test]
fn model_tiers_order_on_a_question_sample() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 40, 0xbe9c_4a11);
    let exemplars = fewshot_exemplars(&world.catalog);
    let mut scores = Vec::new();
    for profile in [
        ModelProfile::gpt4_sim(),
        ModelProfile::gpt35_turbo_sim(),
        ModelProfile::text_curie_sim(),
    ] {
        let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
            .model(Box::new(SimulatedModel::new(profile)))
            .config(CopilotConfig {
                generate_dashboards: false,
                ..CopilotConfig::default()
            })
            .exemplars(exemplars.clone())
            .build();
        let report = dio::benchmark::evaluate(&mut copilot, &questions, world.eval_ts);
        scores.push(report.ex_percent);
    }
    assert!(
        scores[0] > scores[1] && scores[1] > scores[2],
        "expected Table 3b ordering, got {scores:?}"
    );
}

#[test]
fn domain_db_and_tracker_persist_across_restart() {
    // Simulate a copilot restart: expert contributions and the issue
    // history round-trip through JSON, and a copilot rebuilt from the
    // restored DB retains the expert-taught behaviour.
    let world = OperatorWorld::build(WorldConfig::small());
    let mut db = world.domain_db();
    let mut tracker = dio::feedback::IssueTracker::new();

    let issue = tracker.raise_hand("what is the LCS NI-LR success rate", vec![], "no answer");
    tracker
        .resolve(
            issue,
            "expert:alice",
            dio::feedback::Contribution::Note {
                title: "lcs-jargon".into(),
                text: "LCS NI-LR means the network induced location request procedure.".into(),
            },
            &mut db,
        )
        .unwrap();

    // Persist and restore.
    let db_json = db.to_json();
    let tracker_json = tracker.to_json();
    let db2 = dio::catalog::DomainDb::from_json(&db_json).unwrap();
    let tracker2 = dio::feedback::IssueTracker::from_json(&tracker_json).unwrap();

    assert_eq!(db2.note_count(), 1);
    assert_eq!(tracker2.len(), 1);
    assert_eq!(
        tracker2.get(issue).unwrap().state,
        dio::feedback::IssueState::Resolved
    );

    // The restored DB's note is retrievable in a fresh copilot.
    let copilot = CopilotBuilder::new(db2, world.store.clone()).build();
    let hits = copilot.extractor().retrieve("LCS NI-LR", 10);
    assert!(
        hits.iter().any(|h| h.sample.name == "note:lcs-jargon"),
        "restored note not retrievable"
    );
}

#[test]
fn chat_session_resolves_followups() {
    let (mut copilot, world) = small_copilot();
    let mut session = dio::copilot::ChatSession::new(&mut copilot);

    let first = session
        .ask(
            "How many N4 session establishment procedure attempts did the SMF handle?",
            world.eval_ts,
        )
        .response
        .clone();
    let followup = session.ask("And at the UPF?", world.eval_ts);
    assert!(
        followup.resolved.contains("UPF"),
        "resolved: {}",
        followup.resolved
    );
    assert!(
        followup.resolved.contains("N4 session establishment"),
        "resolved: {}",
        followup.resolved
    );
    let second = followup.response.clone();
    // Same shape of question against a different NF: both should
    // resolve to numeric answers over different metrics.
    assert!(first.numeric_answer.is_some());
    assert!(second.numeric_answer.is_some());
    assert_ne!(first.query, second.query);
    assert!(second.query.contains("upf"), "query: {}", second.query);
    assert_eq!(session.turns().len(), 2);
}

#[test]
fn costs_scale_with_model_pricing() {
    let world = OperatorWorld::build(WorldConfig::small());
    let exemplars = fewshot_exemplars(&world.catalog);
    let mut cents = Vec::new();
    for model in [
        Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())) as Box<dyn dio::llm::FoundationModel>,
        Box::new(SimulatedModel::new(ModelProfile::gpt35_turbo_sim())),
    ] {
        let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
            .model(model)
            .exemplars(exemplars.clone())
            .build();
        copilot.ask("How many paging attempts were there?", world.eval_ts);
        cents.push(copilot.meter().mean_cents_per_query());
    }
    assert!(
        cents[0] / cents[1] > 10.0,
        "GPT-4 pricing should be an order of magnitude above GPT-3.5: {cents:?}"
    );
}

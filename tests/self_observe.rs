//! Integration test for the self-observation loop: the copilot's own
//! telemetry, scraped through the Prometheus exposition format into a
//! queryable store, must answer natural-language questions about the
//! copilot with numerically correct results.
//!
//! This is a smaller instance of the `self_observe` binary (20
//! questions instead of 60) so it stays tractable in the debug-profile
//! test run; the loop exercised is identical.

use dio_bench::selfobs::run_self_observation;
use dio_obs::parse_exposition;

#[test]
fn copilot_answers_questions_about_its_own_telemetry() {
    let outcome = run_self_observation(20, 0.25);

    // The observed benchmark ran and was scraped after every chunk.
    assert_eq!(outcome.questions_run, 20);
    assert_eq!(outcome.scrapes, 2);
    assert!(outcome.samples_appended > 0);

    // The exporter's output is valid Prometheus text: it parses, and
    // counters carry their TYPE lines.
    let families = parse_exposition(&outcome.exposition).expect("exposition round-trip");
    assert!(families
        .iter()
        .any(|f| f.name == "dio_copilot_asks_total"
            && f.kind == dio_obs::ScrapedKind::Counter));
    assert!(families
        .iter()
        .any(|f| f.name == "dio_copilot_stage_duration_micros"
            && f.kind == dio_obs::ScrapedKind::Histogram));

    // Every exported instrument got a catalog description.
    assert!(
        outcome.undocumented.is_empty(),
        "undocumented instruments: {:?}",
        outcome.undocumented
    );
    assert!(outcome.catalog_len > 0);

    // At least three self-directed questions verified numerically
    // against the registry ground truth.
    assert!(
        outcome.qa_correct() >= 3,
        "only {}/{} self-directed answers verified: {:#?}",
        outcome.qa_correct(),
        outcome.qa.len(),
        outcome.qa
    );

    // The recovery machinery actually fired under fault injection, so
    // the answers are about real activity, not zeros.
    let repairs = outcome
        .qa
        .iter()
        .find(|q| q.metric == dio_copilot::obs::REPAIRS_NAME)
        .expect("repairs question present");
    let calls = outcome
        .qa
        .iter()
        .find(|q| q.metric == "dio_llm_model_calls_total")
        .expect("model-calls question present");
    assert!(calls.expected >= 20.0, "model calls: {}", calls.expected);
    let _ = repairs;
}

//! Facade-level smoke test for the model-plane gateway: a burst of
//! near-duplicate questions flows through `dio::serve` +
//! `dio::gateway` and every duplicate class is served by the right
//! layer — exact repeats by the answer cache, concurrent identicals by
//! singleflight coalescing, punctuation paraphrases by the semantic
//! cache — with zero EX delta against the sequential pipeline.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;
use dio::llm::{
    BatchExpander, Completion, CompletionRequest, FoundationModel, ModelError, ModelProfile,
    Pricing, SimulatedModel,
};
use dio::serve::{GatewayConfig, QueryRequest, QueryService, ServeConfig, TenantPolicy};
use std::time::Duration;

/// Upstream wrapper that pauses each completion long enough for
/// concurrent duplicates to overlap in flight (making singleflight
/// followers deterministic rather than scheduling-dependent).
struct SlowUpstream {
    inner: Box<dyn FoundationModel>,
    pause: Duration,
}

impl FoundationModel for SlowUpstream {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
    fn pricing(&self) -> Pricing {
        self.inner.pricing()
    }
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, ModelError> {
        std::thread::sleep(self.pause);
        self.inner.complete(request)
    }
}

#[test]
fn near_duplicates_are_coalesced_batched_and_semantically_served() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 6, 0x9a7e_2026);
    let prototype = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();

    // Ground truth: the unbatched, ungatewayed sequential pipeline.
    let mut sequential = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    let expected: Vec<_> = questions
        .iter()
        .map(|q| sequential.ask(&q.text, world.eval_ts).numeric_answer)
        .collect();

    let service = QueryService::spawn_gateway(
        &prototype,
        Box::new(SlowUpstream {
            inner: Box::new(BatchExpander::new(SimulatedModel::new(
                ModelProfile::gpt4_sim(),
            ))),
            pause: Duration::from_millis(30),
        }),
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
        GatewayConfig::default(),
    );

    // Cold burst: every unique question in flight at once. The gateway
    // batches overlapping model calls; answers must still match the
    // sequential pipeline exactly (EX delta 0 — batched prompts
    // reconstruct byte-identically upstream).
    let tickets: Vec<_> = questions
        .iter()
        .map(|q| {
            service
                .submit(QueryRequest::new("noc", &q.text, world.eval_ts))
                .expect("open config must admit")
        })
        .collect();
    for (ticket, want) in tickets.into_iter().zip(&expected) {
        let a = ticket.wait().answer().expect("cold burst answered").clone();
        assert_eq!(a.response.numeric_answer, *want, "EX drift through gateway");
    }

    // Concurrent identical burst: 6 copies of one question on 4
    // workers with a 30ms upstream — the overlap guarantees real
    // singleflight followers and at most a couple of fresh runs.
    let dup = &questions[0].text;
    let dup_tickets: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(QueryRequest::new(
                    format!("tenant-{i}"),
                    format!("  {}  ", dup.to_uppercase()),
                    world.eval_ts,
                ))
                .expect("admitted")
        })
        .collect();
    for t in dup_tickets {
        let a = t.wait().answer().expect("duplicate answered").clone();
        assert_eq!(a.response.numeric_answer, expected[0]);
        // Served by a cheaper layer than a fresh pipeline run: the
        // answer cache (cold burst already cached the exact key) or a
        // coalesced follower — never a recompute.
        assert!(
            a.answer_cache_hit || a.coalesced,
            "duplicate recomputed the pipeline"
        );
    }

    // Punctuation paraphrase: misses both exact caches (different
    // normalized key) but embeds identically, so the semantic layer
    // serves the neighbor's answer verbatim.
    let paraphrase = format!("{} ?", questions[1].text.trim_end_matches('?'));
    assert_ne!(
        dio::serve::normalize_question(&questions[1].text),
        dio::serve::normalize_question(&paraphrase)
    );
    let a = service
        .ask("noc", &paraphrase, world.eval_ts)
        .answer()
        .expect("paraphrase answered")
        .clone();
    assert!(a.semantic_cache_hit, "paraphrase should serve semantically");
    assert_eq!(a.response.numeric_answer, expected[1], "EX drift via semantic hit");

    let stats = service.gateway_stats().expect("gateway plane present");
    assert!(stats.ledger.queries() > 0, "gateway billed no model calls");
    assert_eq!(stats.timeouts, 0);
    let sem = stats.semantic.expect("semantic layer on by default");
    assert!(sem.hits >= 1);
    service.shutdown();
}

//! Facade-level overload drill: a 3x-capacity burst against an
//! 8-worker service backed by a cluster with one artificially slow
//! shard. The accept-implies-reply contract must survive the squeeze —
//! every submission either returns a counted shed at the door or a
//! ticket that resolves (answered, possibly degraded by the brownout
//! ladder, or explicitly shed), never a silent drop — and every
//! finished trace must assemble into a single rooted tree.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::cluster::{Cluster, ClusterConfig};
use dio::copilot::CopilotBuilder;
use dio::llm::{FoundationModel, ModelProfile, SimulatedModel};
use dio::sandbox::StoreResolver;
use dio::serve::{
    QueryRequest, QueryService, ServeConfig, ServeOutcome, ShedReason, TenantPolicy,
};
use std::sync::Arc;
use std::time::Duration;

fn model() -> Box<dyn FoundationModel> {
    Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
}

#[test]
fn burst_at_3x_capacity_with_a_slow_shard_loses_nothing() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 10, 0x0f_f10ad);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(3)));
    cluster.load_from(&world.store).expect("cluster load");
    // One slow shard: every read landing on node 0's primaries carries
    // injected (recorded, never slept) latency, feeding the hedger's
    // rolling window while the burst is in flight.
    cluster.set_read_latency(0, 25_000);

    let mut prototype = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(model())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    prototype.attach_store_resolver(cluster.clone() as Arc<dyn StoreResolver>);

    let service = QueryService::spawn(
        &prototype,
        model,
        ServeConfig {
            workers: 8,
            queue_depth: 16,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );

    // 3x the queue capacity in one burst, plus a handful of
    // zero-budget stragglers that must expire rather than vanish.
    let burst = 3 * service.config().queue_depth;
    let mut tickets = Vec::new();
    let mut shed_sync = 0usize;
    for (i, q) in questions.iter().cycle().take(burst).enumerate() {
        let req = QueryRequest::new(format!("tenant-{}", i % 4), &q.text, world.eval_ts);
        match service.submit(req) {
            Ok(t) => tickets.push(t),
            Err(shed) => {
                assert!(
                    ShedReason::all().contains(&shed.reason),
                    "unclassified shed {:?}",
                    shed.reason
                );
                assert!(
                    shed.retry_after > Duration::ZERO,
                    "refusals must carry a retry hint"
                );
                shed_sync += 1;
            }
        }
    }
    let mut expired_tickets = 0usize;
    for q in questions.iter().take(4) {
        let req = QueryRequest::new("straggler", &q.text, world.eval_ts);
        match service.submit_with_deadline(req, Duration::ZERO) {
            Ok(t) => {
                tickets.push(t);
                expired_tickets += 1;
            }
            Err(_) => shed_sync += 1,
        }
    }
    let accepted = tickets.len();
    assert_eq!(accepted + shed_sync, burst + 4, "a submission went missing");
    assert!(shed_sync > 0, "a 3x-capacity burst must overload the queue");

    // Every accepted ticket resolves: answered or an explicit,
    // classified shed. A severed reply channel would surface as
    // WorkerPanic here and fail the drill.
    let tracer = service.obs().tracer().clone();
    let mut answered = 0usize;
    let mut shed_late = 0usize;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Answered(_) => answered += 1,
            ServeOutcome::Shed(shed) => {
                assert_ne!(
                    shed.reason,
                    ShedReason::WorkerPanic,
                    "a worker died serving the burst"
                );
                assert!(ShedReason::all().contains(&shed.reason));
                shed_late += 1;
            }
        }
    }
    assert_eq!(answered + shed_late, accepted, "an accepted ticket was lost");
    assert!(answered > 0, "the burst produced no answers at all");
    assert!(
        shed_late >= expired_tickets,
        "zero-budget stragglers must resolve as expired"
    );
    service.shutdown();

    // Each submission finished exactly one trace, and every finished
    // trace assembles into a single rooted tree — no orphan spans even
    // for requests that expired in the queue or were refused at the
    // door.
    let finished: Vec<_> = tracer
        .recent(2 * (burst + 4))
        .into_iter()
        .filter(|t| t.finished)
        .collect();
    assert_eq!(
        finished.len(),
        accepted + shed_sync,
        "each submission must finish exactly one trace"
    );
    let orphans: usize = finished.iter().map(|t| t.orphan_count()).sum();
    assert_eq!(orphans, 0, "overload left orphan spans behind");

    // Hedging bookkeeping stays consistent under the squeeze: every
    // hedge resolves its race and abandons exactly one loser.
    let (wins, losses, cancelled) = cluster.hedge_outcomes();
    assert_eq!(wins + losses, cancelled, "a hedge race never resolved");
}

//! Facade-level smoke test: the serving tier is reachable through the
//! `dio` crate and upholds its headline guarantees end to end — cache
//! parity on repeat questions and explicit, counted load shedding.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::CopilotBuilder;
use dio::llm::{FoundationModel, ModelProfile, SimulatedModel};
use dio::serve::{QueryRequest, QueryService, ServeConfig, ServeOutcome, TenantPolicy};

fn model() -> Box<dyn FoundationModel> {
    Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
}

#[test]
fn service_answers_caches_and_sheds_through_the_facade() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 6, 0xbe9c_4a11);
    let prototype = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(model())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();

    let service = QueryService::spawn(
        &prototype,
        model,
        ServeConfig {
            workers: 2,
            queue_depth: 32,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );

    // Cold pass answers; warm pass hits the cache under noisy phrasing.
    for q in &questions {
        let out = service.ask("noc", &q.text, world.eval_ts);
        assert!(out.answer().is_some(), "cold pass must answer");
    }
    for q in &questions {
        let noisy = format!("  {}  ", q.text.to_uppercase());
        match service.ask("noc", &noisy, world.eval_ts) {
            ServeOutcome::Answered(a) => assert!(a.answer_cache_hit),
            ServeOutcome::Shed(s) => panic!("warm pass shed: {s:?}"),
        }
    }
    assert_eq!(service.answer_cache_stats().hits as usize, questions.len());
    service.shutdown();

    // An undersized service sheds explicitly and visibly.
    let tiny = QueryService::spawn(
        &CopilotBuilder::new(world.domain_db(), world.store.clone())
            .model(model())
            .exemplars(fewshot_exemplars(&world.catalog))
            .build(),
        model,
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for _ in 0..12 {
        match tiny.submit(QueryRequest::new("noc", &questions[0].text, world.eval_ts)) {
            Ok(t) => tickets.push(t),
            Err(_) => shed += 1,
        }
    }
    assert!(shed > 0, "a 1-deep queue must shed a 12-burst");
    assert_eq!(
        tiny.obs().registry().snapshot().total("dio_serve_shed_total") as u64,
        shed
    );
    for t in tickets {
        assert!(t.wait().answer().is_some(), "accepted requests must resolve");
    }
    tiny.shutdown();
}

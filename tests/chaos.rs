//! Integration tests for the data-plane chaos layer through the `dio`
//! facade: the copilot under combined model + storage faults, and the
//! durable store's crash/corruption recovery contract.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::copilot::{CopilotBuilder, CopilotConfig, DioCopilot, RetrievalMode};
use dio::faults::{ChaosConfig, MemMedium};
use dio::llm::{FaultConfig, FaultyModel, ModelProfile, SimulatedModel};
use dio::tsdb::{DurableStore, Labels, Sample};

const SEED: u64 = 0xc4a0_50a4;

/// A copilot over the small world with faults injected on *both*
/// planes: the simulated model and the tsdb/vecstore data paths.
fn chaos_copilot(p: f64) -> (DioCopilot, OperatorWorld) {
    let world = OperatorWorld::build(WorldConfig::small());
    let model = FaultyModel::new(
        SimulatedModel::new(ModelProfile::gpt4_sim()),
        FaultConfig::with_probability(SEED, p),
    );
    let copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(Box::new(model))
        .config(CopilotConfig {
            generate_dashboards: false,
            retrieval: RetrievalMode::Hnsw { ef_search: 32 },
            data_chaos: Some(ChaosConfig::with_probability(SEED, p)),
            ..CopilotConfig::default()
        })
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    (copilot, world)
}

#[test]
fn copilot_survives_combined_model_and_data_plane_chaos() {
    let (mut copilot, world) = chaos_copilot(0.5);
    let questions = [
        "How many initial registration attempts were recorded at the AMF?",
        "How many PDU session establishment procedure attempts did the SMF handle?",
        "How many NF discovery procedure attempts did the NRF handle?",
        "How many IP address allocation procedure attempts did the SMF handle?",
        "What is the average registration latency at the AMF?",
        "How many mobility registration update procedure attempts did the AMF handle?",
    ];
    for q in questions {
        // The contract under chaos is graceful degradation: every ask
        // returns a rendered answer (possibly an annotated refusal),
        // never a panic.
        let r = copilot.ask(q, world.eval_ts);
        assert!(!r.render().is_empty(), "empty render for {q:?}");
    }

    let snap = copilot.obs().registry().snapshot();
    assert_eq!(
        snap.total("dio_copilot_answers_total"),
        questions.len() as f64,
        "every ask must be counted as an answer"
    );
    // At p=0.5 with this seed the schedule fires on both planes; the
    // faults must be attributed, not silently swallowed.
    assert!(
        snap.total(dio::copilot::obs::DATA_FAULTS_NAME) > 0.0,
        "data-plane faults were injected but none were counted"
    );
}

#[test]
fn default_copilot_reports_no_chaos_instruments_firing() {
    let world = OperatorWorld::build(WorldConfig::small());
    let mut copilot = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(Box::new(SimulatedModel::new(ModelProfile::gpt4_sim())))
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    let r = copilot.ask(
        "How many NF discovery procedure attempts did the NRF handle?",
        world.eval_ts,
    );
    assert!(!r.render().contains("partial data"));
    let snap = copilot.obs().registry().snapshot();
    assert_eq!(snap.total(dio::copilot::obs::DATA_FAULTS_NAME), 0.0);
    assert_eq!(snap.total(dio::copilot::obs::DEMOTIONS_NAME), 0.0);
}

fn sample_at(i: i64) -> (Labels, Sample) {
    (
        Labels::from_pairs([("__name__", "chaos_facade_metric"), ("cell", "c1")]),
        Sample {
            timestamp_ms: 1_000 * i,
            value: i as f64,
        },
    )
}

#[test]
fn durable_store_recovers_acknowledged_writes_after_mid_write_crash() {
    let mut durable = DurableStore::new(MemMedium::new());
    for i in 0..10 {
        let (labels, sample) = sample_at(i);
        durable.append(labels, sample).unwrap();
    }
    let snapshot = durable.checkpoint().unwrap();
    for i in 10..20 {
        let (labels, sample) = sample_at(i);
        durable.append(labels, sample).unwrap();
    }
    let (_, medium) = durable.into_parts();
    let mut wal_bytes = medium.into_bytes();
    // Crash mid-frame: the tail record loses its last 3 bytes.
    wal_bytes.truncate(wal_bytes.len() - 3);

    let (recovered, report) =
        DurableStore::recover(&snapshot, MemMedium::from(wal_bytes)).unwrap();
    assert_eq!(report.wal_corrupt_frames, 0, "torn tail is not corruption");
    assert!(report.wal_truncated_tail);
    assert_eq!(report.wal_replayed, 9, "all complete frames replay");
    // 10 snapshot samples + 9 replayed WAL samples; only the write torn
    // mid-frame (never acknowledged as durable by a completed append
    // call surviving to disk) is absent.
    assert_eq!(recovered.store().sample_count(), 19);
    assert!(recovered.store().has_metric("chaos_facade_metric"));
}

#[test]
fn bit_flip_in_wal_is_quarantined_not_replayed() {
    let mut durable = DurableStore::new(MemMedium::new());
    for i in 0..8 {
        let (labels, sample) = sample_at(i);
        durable.append(labels, sample).unwrap();
    }
    let (_, medium) = durable.into_parts();
    let mut wal_bytes = medium.into_bytes();
    let mid = wal_bytes.len() / 2;
    wal_bytes[mid] ^= 0x40;

    let recovery = dio::tsdb::wal::recover(&wal_bytes);
    assert!(
        recovery.corrupt_frames >= 1 || recovery.unparsable >= 1,
        "a flipped bit mid-log must be detected"
    );
    // Whatever survives must be byte-for-byte what was written: the
    // checksum gate never lets a silently corrupted sample through.
    for rec in &recovery.records {
        let i = rec.sample.timestamp_ms / 1_000;
        let (labels, sample) = sample_at(i);
        assert_eq!(rec.labels, labels);
        assert_eq!(rec.sample, sample);
    }
    assert!(recovery.records.len() < 8, "the damaged frame cannot replay");
}

//! Facade-level cluster tests: the sharded serving layer must be
//! invisible to correctness — same answers as a single node, and the
//! serving tier's accept-implies-reply guarantee must hold even when a
//! shard primary dies while the service is draining.

use dio::benchmark::{fewshot_exemplars, OperatorWorld, WorldConfig};
use dio::cluster::{Cluster, ClusterConfig};
use dio::copilot::CopilotBuilder;
use dio::llm::{FoundationModel, ModelProfile, SimulatedModel};
use dio::serve::{QueryRequest, QueryService, ServeConfig, ServeOutcome, TenantPolicy};
use std::sync::Arc;

fn model() -> Box<dyn FoundationModel> {
    Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
}

/// Multiset comparison for vector answers: gathering may reorder
/// series relative to the single store's insertion order, which is
/// irrelevant to correctness.
fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v
}

#[test]
fn sharded_copilot_matches_single_node_answers() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 12, 0xc1a5_7e12);
    let mut single = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(model())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();

    for nodes in [2usize, 4] {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(nodes)));
        cluster.load_from(&world.store).expect("cluster load");
        let mut sharded = CopilotBuilder::new(world.domain_db(), world.store.clone())
            .model(model())
            .exemplars(fewshot_exemplars(&world.catalog))
            .build();
        sharded.attach_store_resolver(cluster.clone() as Arc<dyn dio::sandbox::StoreResolver>);

        for q in &questions {
            let a = single.ask(&q.text, world.eval_ts);
            let b = sharded.ask(&q.text, world.eval_ts);
            assert_eq!(a.query, b.query, "{nodes} shards changed the generated query");
            assert_eq!(
                a.numeric_answer, b.numeric_answer,
                "{nodes} shards changed the answer to {:?} (query {})",
                q.text, a.query
            );
            assert_eq!(
                sorted(a.values.clone()),
                sorted(b.values.clone()),
                "{nodes} shards changed the value set for {:?}",
                q.text
            );
        }
        // The resolver actually routed: every question touched it.
        let routed = cluster.registry().snapshot().total("dio_cluster_routes_total");
        assert!(routed > 0.0, "resolver was never consulted at {nodes} shards");
    }
}

#[test]
fn drain_during_failover_resolves_every_accepted_request() {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = dio::benchmark::generate_benchmark(&world, 8, 0x5ead_0f11);
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(3)));
    cluster.load_from(&world.store).expect("cluster load");
    let mut prototype = CopilotBuilder::new(world.domain_db(), world.store.clone())
        .model(model())
        .exemplars(fewshot_exemplars(&world.catalog))
        .build();
    prototype.attach_store_resolver(cluster.clone() as Arc<dyn dio::sandbox::StoreResolver>);

    let service = QueryService::spawn(
        &prototype,
        model,
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            tenant: TenantPolicy::unlimited(),
            ..ServeConfig::default()
        },
    );

    // Accept a burst, then kill a shard primary while requests are
    // still queued, then immediately drain. Every accepted ticket must
    // still resolve — with an answer (possibly via failover or the
    // degraded path) — and every refusal must be a counted shed.
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for (i, q) in questions.iter().cycle().take(24).enumerate() {
        match service.submit(QueryRequest::new(format!("tenant-{}", i % 3), &q.text, world.eval_ts)) {
            Ok(t) => tickets.push(t),
            Err(s) => {
                assert!(
                    dio::serve::ShedReason::all().contains(&s.reason),
                    "unclassified shed {:?}",
                    s.reason
                );
                shed += 1;
            }
        }
        if i == 8 {
            // Mid-burst: take down node 0 (primary of shard 0).
            assert!(cluster.kill_node(0), "node 0 was already down");
        }
    }
    let accepted = tickets.len() as u64;
    let registry = service.obs().registry().clone();
    service.shutdown(); // drain-not-drop
    let mut answered = 0u64;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Answered(_) => answered += 1,
            ServeOutcome::Shed(s) => {
                assert!(
                    dio::serve::ShedReason::all().contains(&s.reason),
                    "accepted request resolved with unclassified shed {:?}",
                    s.reason
                );
            }
        }
    }
    assert!(answered > 0, "no accepted request produced an answer");
    // Accounting closes: accepted tickets all resolved (the loop above
    // returned), and submit-time refusals were all counted.
    let counted_shed = registry.snapshot().total("dio_serve_shed_total") as u64;
    assert!(
        counted_shed >= shed,
        "submit-time sheds uncounted: counter {counted_shed} < observed {shed}"
    );
    assert!(accepted + shed == 24, "tickets + sheds must cover the burst");
    // The kill was actually exercised: either a failover promoted the
    // replica, or every post-kill query rode the cache/degraded path —
    // in which case the node is still marked down.
    assert!(
        cluster.failovers() > 0 || cluster.down_nodes() == vec![0],
        "the drill lost track of the killed node"
    );
    // Restart: the node rejoins by replaying its durable WAL.
    let report = cluster.restart_node(0);
    assert!(report.recovered_copies > 0);
    assert!(cluster.down_nodes().is_empty());
}

//! Shape tests for the paper's evaluation results on a reduced world:
//! orderings and rough factors from Tables 3a/3b must hold. Absolute
//! numbers are asserted only as wide bands (see EXPERIMENTS.md for the
//! full-scale measured values).

use dio::baselines::{sample_schema, DinSqlBaseline, DirectModelBaseline};
use dio::benchmark::{evaluate, fewshot_exemplars, generate_benchmark, OperatorWorld, WorldConfig};
use dio::copilot::{CopilotBuilder, CopilotConfig};
use dio::llm::{ModelProfile, SimulatedModel};

struct Setup {
    world: OperatorWorld,
    questions: Vec<dio::benchmark::BenchmarkQuestion>,
    exemplars: Vec<dio::llm::FewShotExample>,
}

fn setup() -> Setup {
    let world = OperatorWorld::build(WorldConfig::small());
    let questions = generate_benchmark(&world, 60, 0xbe9c_4a11);
    let exemplars = fewshot_exemplars(&world.catalog);
    Setup {
        world,
        questions,
        exemplars,
    }
}

fn gpt4() -> Box<SimulatedModel> {
    Box::new(SimulatedModel::new(ModelProfile::gpt4_sim()))
}

#[test]
fn table_3a_ordering_holds_on_reduced_world() {
    let s = setup();

    let mut dio = CopilotBuilder::new(s.world.domain_db(), s.world.store.clone())
        .model(gpt4())
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(s.exemplars.clone())
        .build();
    let r_dio = evaluate(&mut dio, &s.questions, s.world.eval_ts);

    let schema = sample_schema(&s.world.domain_db(), 600, 0x5c83_a001);
    let mut din = DinSqlBaseline::new(
        schema.clone(),
        s.exemplars.clone(),
        gpt4(),
        s.world.store.clone(),
    );
    let r_din = evaluate(&mut din, &s.questions, s.world.eval_ts);

    let mut bare = DirectModelBaseline::new(schema, gpt4(), s.world.store.clone());
    let r_bare = evaluate(&mut bare, &s.questions, s.world.eval_ts);

    // Ordering (the paper's core result).
    assert!(
        r_dio.ex_percent > r_din.ex_percent,
        "DIO {} <= DIN-SQL {}",
        r_dio.ex_percent,
        r_din.ex_percent
    );
    assert!(
        r_din.ex_percent > r_bare.ex_percent,
        "DIN-SQL {} <= bare {}",
        r_din.ex_percent,
        r_bare.ex_percent
    );

    // Wide bands around the paper's 66 / 48 / 12.
    assert!(
        (45.0..=90.0).contains(&r_dio.ex_percent),
        "DIO EX {} outside band",
        r_dio.ex_percent
    );
    assert!(
        (20.0..=65.0).contains(&r_din.ex_percent),
        "DIN-SQL EX {} outside band",
        r_din.ex_percent
    );
    assert!(
        r_bare.ex_percent <= 30.0,
        "bare model EX {} outside band",
        r_bare.ex_percent
    );

    // The bare model must be several times worse than DIO.
    assert!(
        r_dio.ex_percent >= 3.0 * r_bare.ex_percent.max(1.0),
        "gap too small: DIO {} vs bare {}",
        r_dio.ex_percent,
        r_bare.ex_percent
    );
}

#[test]
fn paraphrase_hurts_name_only_prompting_most() {
    // The mechanism behind Table 3a: questions phrased with jargon that
    // only descriptions bridge are where the curated context pays off.
    let s = setup();

    let mut dio = CopilotBuilder::new(s.world.domain_db(), s.world.store.clone())
        .model(gpt4())
        .config(CopilotConfig {
            generate_dashboards: false,
            ..CopilotConfig::default()
        })
        .exemplars(s.exemplars.clone())
        .build();
    let r_dio = evaluate(&mut dio, &s.questions, s.world.eval_ts);

    let schema = sample_schema(&s.world.domain_db(), 600, 0x5c83_a001);
    let mut din = DinSqlBaseline::new(schema, s.exemplars.clone(), gpt4(), s.world.store.clone());
    let r_din = evaluate(&mut din, &s.questions, s.world.eval_ts);

    let para_rate = |r: &dio::benchmark::EvalReport| {
        let (_, _, qc, qt) = r.plain_vs_paraphrase;
        qc as f64 / qt.max(1) as f64
    };
    assert!(
        para_rate(&r_dio) > para_rate(&r_din),
        "DIO paraphrase {} <= DIN-SQL paraphrase {}",
        para_rate(&r_dio),
        para_rate(&r_din)
    );
}

#[test]
fn benchmark_questions_reference_at_most_three_metrics() {
    // §4.1: "contain up-to three metrics in a single expression".
    let s = setup();
    for q in &s.questions {
        assert!(
            (1..=3).contains(&q.reference.metrics.len()),
            "{} references {} metrics",
            q.text,
            q.reference.metrics.len()
        );
        // The reference must parse and reference exactly those metrics.
        let expr = dio::promql::parse(&q.reference.promql).unwrap();
        let names = expr.metric_names();
        assert_eq!(names.len(), q.reference.metrics.len(), "{}", q.text);
    }
}

#[test]
fn fewshot_metrics_never_appear_in_benchmark_references() {
    let s = setup();
    let fewshot_metrics: std::collections::HashSet<&str> = s
        .exemplars
        .iter()
        .flat_map(|e| e.metrics.iter().map(|m| m.as_str()))
        .collect();
    for q in &s.questions {
        for m in &q.reference.metrics {
            assert!(
                !fewshot_metrics.contains(m.as_str()),
                "benchmark question {:?} reuses few-shot metric {m}",
                q.text
            );
        }
    }
}

//! Offline stand-in for `proptest`. Supports the subset this workspace
//! uses: `proptest!` test blocks with `arg in strategy` bindings, string
//! strategies from a regex subset (char classes, `.`, `{m,n}`/`*`/`+`/`?`
//! quantifiers), numeric ranges, `any::<T>()`, `prop::collection::vec`,
//! and `prop::sample::select`. Cases are generated deterministically from
//! the test name (no shrinking, no persistence files).

pub mod strategy {
    /// Deterministic case-generation RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A generator of values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Conversion of range/regex shorthand into a strategy.
    pub trait IntoStrategy {
        type Strategy: Strategy;
        fn into_strategy(self) -> Self::Strategy;
    }

    // ---------------- string strategies from a regex subset -----------

    /// One quantified element of a pattern.
    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    pub struct StringStrategy {
        elements: Vec<Element>,
    }

    /// Character pool for `.`: printable ASCII plus a little whitespace
    /// and multi-byte UTF-8 so parsers see non-trivial input.
    fn any_char_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
        pool.extend(['\t', '\n', 'µ', 'λ', '€', '漢']);
        pool
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => break,
                '-' => {
                    // A range if flanked by chars; literal at the edges.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "bad class range {lo}-{hi}");
                            for ch in (lo as u32 + 1)..=(hi as u32) {
                                out.push(char::from_u32(ch).unwrap());
                            }
                            prev = None;
                        }
                        _ => {
                            out.push('-');
                            prev = Some('-');
                        }
                    }
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    out.push(esc);
                    prev = Some(esc);
                }
                c => {
                    out.push(c);
                    prev = Some(c);
                }
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("bad {m,n} quantifier");
                        let hi = hi.trim().parse().expect("bad {m,n} quantifier");
                        (lo, hi)
                    }
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    /// Parse the supported regex subset into quantified char pools.
    pub fn string_regex(pattern: &str) -> StringStrategy {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let pool = match c {
                '.' => any_char_pool(),
                '[' => parse_class(&mut chars),
                '\\' => vec![chars.next().expect("dangling escape")],
                c => vec![c],
            };
            let (min, max) = parse_quantifier(&mut chars);
            assert!(min <= max, "bad quantifier in {pattern:?}");
            elements.push(Element {
                chars: pool,
                min,
                max,
            });
        }
        StringStrategy { elements }
    }

    impl Strategy for StringStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for el in &self.elements {
                let n = el.min + rng.below(el.max - el.min + 1);
                for _ in 0..n {
                    out.push(el.chars[rng.below(el.chars.len())]);
                }
            }
            out
        }
    }

    impl IntoStrategy for &str {
        type Strategy = StringStrategy;
        fn into_strategy(self) -> StringStrategy {
            string_regex(self)
        }
    }

    // ---------------- numeric ranges ---------------------------------

    pub struct IntRange<T> {
        lo: T,
        hi: T, // exclusive
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for IntRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.hi as i128 - self.lo as i128) as u128;
                    assert!(span > 0, "empty range");
                    let v = (rng.next_u64() as u128) % span;
                    (self.lo as i128 + v as i128) as $t
                }
            }
            impl IntoStrategy for core::ops::Range<$t> {
                type Strategy = IntRange<$t>;
                fn into_strategy(self) -> IntRange<$t> {
                    IntRange { lo: self.start, hi: self.end }
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    pub struct FloatRange<T> {
        lo: T,
        hi: T,
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for FloatRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.lo + (rng.unit_f64() as $t) * (self.hi - self.lo)
                }
            }
            impl IntoStrategy for core::ops::Range<$t> {
                type Strategy = FloatRange<$t>;
                fn into_strategy(self) -> FloatRange<$t> {
                    FloatRange { lo: self.start, hi: self.end }
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    // ---------------- any::<T>() -------------------------------------

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl<T: Arbitrary> IntoStrategy for Any<T> {
        type Strategy = Any<T>;
        fn into_strategy(self) -> Any<T> {
            self
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    // ---------------- combinators ------------------------------------

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize, // exclusive
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below(self.max - self.min);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    impl<S: Strategy> IntoStrategy for VecStrategy<S> {
        type Strategy = VecStrategy<S>;
        fn into_strategy(self) -> VecStrategy<S> {
            self
        }
    }

    pub fn vec_strategy<E: IntoStrategy>(
        element: E,
        len: core::ops::Range<usize>,
    ) -> VecStrategy<E::Strategy> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element: element.into_strategy(),
            min: len.start,
            max: len.end,
        }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    impl<T: Clone> IntoStrategy for Select<T> {
        type Strategy = Select<T>;
        fn into_strategy(self) -> Select<T> {
            self
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty set");
        Select { options }
    }

    /// Always yields a clone of one value.
    pub struct JustStrategy<T> {
        value: T,
    }

    impl<T: Clone> Strategy for JustStrategy<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.value.clone()
        }
    }

    impl<T: Clone> IntoStrategy for JustStrategy<T> {
        type Strategy = JustStrategy<T>;
        fn into_strategy(self) -> JustStrategy<T> {
            self
        }
    }

    #[allow(non_snake_case)]
    pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
        JustStrategy { value }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    /// Cases per property. Smaller than upstream's 256 because every
    /// case re-runs the full body with no shrinking pass afterwards.
    pub const CASES: u64 = 64;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Drive one property: deterministic seeds derived from the test
    /// name, panicking with the case number on the first failure.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        for case in 0..CASES {
            let mut rng = TestRng::new(base.wrapping_add(case.wrapping_mul(0x9E37_79B9)));
            if let Err(e) = body(&mut rng) {
                panic!("property `{name}` failed at case {case}/{CASES}: {}", e.message);
            }
        }
    }
}

/// `prop::…` namespace, mirroring upstream's module paths.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec_strategy as vec;
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$crate::strategy::IntoStrategy::into_strategy($strat),
                            __rng,
                        );
                    )+
                    let __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::strategy::{string_regex, IntoStrategy, Strategy, TestRng};

    #[test]
    fn regex_subset_respects_classes_and_counts() {
        let mut rng = TestRng::new(5);
        let ident = string_regex("[a-z][a-z0-9_]{0,30}");
        for _ in 0..200 {
            let s = ident.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 31);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        let lit = string_regex("[a-z0-9.*+-]{0,12}");
        for _ in 0..200 {
            let s = lit.generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || matches!(c, '.' | '*' | '+' | '-')));
        }
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::new(9);
        let ints = (1i64..600).into_strategy();
        let floats = (0.01f64..100.0).into_strategy();
        for _ in 0..500 {
            let i = ints.generate(&mut rng);
            assert!((1..600).contains(&i));
            let f = floats.generate(&mut rng);
            assert!((0.01..100.0).contains(&f));
        }
    }

    #[test]
    fn same_name_same_cases() {
        let mut first = Vec::new();
        crate::test_runner::run("demo", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run("demo", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}

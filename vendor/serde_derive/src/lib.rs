//! Derive macros for the offline serde stand-in.
//!
//! Parses the item declaration directly from the token stream (no
//! `syn`/`quote` — they are unavailable offline) and emits `Serialize`
//! / `Deserialize` impls against the stand-in's `Value` data model.
//!
//! Supported shapes — the ones this workspace uses:
//! * named-field structs (optionally generic over type parameters),
//! * tuple structs (newtype and n-ary),
//! * enums with unit, tuple, and struct variants,
//! * the container attribute `#[serde(rename_all = "lowercase")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------

enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, shape).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    /// Type-parameter identifiers (lifetimes/consts unsupported — unused here).
    generics: Vec<String>,
    /// `#[serde(rename_all = "lowercase")]` present.
    rename_lowercase: bool,
    body: Body,
}

impl Item {
    fn tag(&self, variant: &str) -> String {
        if self.rename_lowercase {
            variant.to_lowercase()
        } else {
            variant.to_string()
        }
    }
}

// ---------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let mut rename_lowercase = false;

    // Leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string();
                    if text.contains("rename_all") && text.contains("lowercase") {
                        rename_lowercase = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    i += 1;

    // Generic parameter list.
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                None => panic!("unterminated generic parameter list"),
                _ => {}
            }
            i += 1;
        }
    }

    // Skip a where clause if present.
    while let Some(tt) = tokens.get(i) {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && kind == "struct" => {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Body::Struct(parse_named_fields(&inner))
            } else {
                Body::Enum(parse_variants(&inner))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Tuple(count_tuple_fields(&inner))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        other => panic!("expected item body, got {other:?}"),
    };

    Item {
        name,
        generics,
        rename_lowercase,
        body,
    }
}

/// Skip leading attributes/visibility at `*i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip a type at `*i` up to (not including) a top-level `,` or EOF.
/// Angle brackets are the only nesting that matters — parens/brackets
/// arrive as single groups in the token stream.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field `{name}`, got {other:?}"),
        }
        skip_type(tokens, &mut i);
        fields.push(name);
        // Consume the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<(String, VariantShape)> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Struct(parse_named_fields(&inner))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn generics_decl(item: &Item, extra_lifetime: Option<&str>) -> (String, String) {
    // Returns (impl generics, type generics), e.g. ("<'de, I, T>", "<I, T>").
    let ty = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    let mut parts: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        parts.push(lt.to_string());
    }
    parts.extend(item.generics.iter().cloned());
    let imp = if parts.is_empty() {
        String::new()
    } else {
        format!("<{}>", parts.join(", "))
    };
    (imp, ty)
}

fn where_clause(item: &Item, bound: &str) -> String {
    if item.generics.is_empty() {
        String::new()
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        format!(" where {}", bounds.join(", "))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (imp, ty) = generics_decl(item, None);
    let wc = where_clause(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n{}\n::serde::Value::Obj(obj)",
                pushes.join("\n")
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| {
                    let tag = item.tag(v);
                    match shape {
                        VariantShape::Unit => format!(
                            "{name}::{v} => ::serde::Value::Str(\"{tag}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{v}(f0) => ::serde::Value::Obj(vec![(\"{tag}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Obj(vec![(\"{tag}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));"
                                ))
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => {{ let mut inner: Vec<(String, ::serde::Value)> = Vec::new(); {} ::serde::Value::Obj(vec![(\"{tag}\".to_string(), ::serde::Value::Obj(inner))]) }},",
                                pushes.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl{imp} ::serde::Serialize for {name}{ty}{wc} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (imp, ty) = generics_decl(item, Some("'de"));
    let wc = where_clause(item, "::serde::Deserialize<'de>");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,")
                })
                .collect();
            format!("Ok({name} {{\n{}\n}})", inits.join("\n"))
        }
        Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Body::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match value {{\n::serde::Value::Arr(items) if items.len() == {n} => Ok({name}({})),\nother => Err(::serde::Error::msg(format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n}}",
                gets.join(", ")
            )
        }
        Body::Unit => format!("Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for (v, shape) in variants {
                let tag = item.tag(v);
                match shape {
                    VariantShape::Unit => {
                        unit_arms.push(format!("\"{tag}\" => Ok({name}::{v}),"));
                    }
                    VariantShape::Tuple(1) => tagged_arms.push(format!(
                        "\"{tag}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{tag}\" => match inner {{\n::serde::Value::Arr(items) if items.len() == {n} => Ok({name}::{v}({})),\nother => Err(::serde::Error::msg(format!(\"bad payload for variant {tag}: {{other:?}}\"))),\n}},",
                            gets.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?,"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{tag}\" => Ok({name}::{v} {{\n{}\n}}),",
                            inits.join("\n")
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit}\nother => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = (&pairs[0].0, &pairs[0].1);\n\
                 #[allow(unused_variables)]\n\
                 match tag.as_str() {{\n{tagged}\nother => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 other => Err(::serde::Error::msg(format!(\"expected enum value for {name}, got {{other:?}}\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl{imp} ::serde::Deserialize<'de> for {name}{ty}{wc} {{\n\
         fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}

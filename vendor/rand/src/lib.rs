//! Offline stand-in for the `rand` crate: the `RngCore`/`SeedableRng`/
//! `Rng` trait triangle plus uniform range sampling and slice shuffling.
//! The algorithms mirror rand 0.8 closely enough for deterministic
//! simulation work; they make no cryptographic claims.

/// Core random number generation interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64, matching the
    /// construction rand 0.8 uses so seeded streams are stable.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty => $bits:ty, $mantissa:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / ((1u64 << $mantissa) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32 => u32, 24, f64 => u64, 53);

/// Convenience extension methods, auto-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, matching rand 0.8's iteration order.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Tiny non-cryptographic PRNG (xorshift64*), used where callers ask
    /// for a "small" generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = u64::from_le_bytes(seed);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&d));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
    }
}

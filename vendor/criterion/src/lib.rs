//! Offline stand-in for `criterion`. Runs each registered benchmark
//! `sample_size` times with a short warm-up and prints median wall-clock
//! time per iteration. No statistics, plots, or baselines — just enough
//! to keep `cargo bench` working and give order-of-magnitude numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Criterion's configure-from-args entry point; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!(
            "{id:<40} median {:>12?}   [{:?} .. {:?}]   ({} samples)",
            median,
            min,
            max,
            self.samples.len()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 2 warm-up + 5 measured.
        assert_eq!(runs, 7);
    }

    #[test]
    fn iter_batched_rebuilds_input() {
        let mut c = Criterion::default().sample_size(3);
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        // 1 warm-up + 3 measured.
        assert_eq!(setups, 4);
    }
}

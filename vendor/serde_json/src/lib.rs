//! Offline stand-in for `serde_json`: renders and parses the stand-in
//! serde [`Value`] tree as real JSON (escapes, numbers, nesting), so
//! persisted artifacts are interchangeable with the real crate for the
//! types this workspace serializes.

pub use serde::Error;
use serde::Value;

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Inf; degrade to null like serde_json's
                // arbitrary-precision feature would reject.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' in array, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' in object, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs: if this is a high surrogate,
                            // consume the following \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                let rest = &self.bytes[self.pos + 5..];
                                if rest.len() >= 6 && rest[0] == b'\\' && rest[1] == b'u' {
                                    let lo_hex = std::str::from_utf8(&rest[2..6])
                                        .map_err(|_| Error::msg("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error::msg("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("bad surrogate pair"))?
                                } else {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u escape"))?
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a \"b\"\nc".into())),
            ("n".into(), Value::Int(42)),
            ("x".into(), Value::Float(1.5)),
            (
                "arr".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut s = String::new();
        render(&v, &mut s, None, 0);
        assert_eq!(parse(&s).unwrap(), v);
        let mut pretty = String::new();
        render(&v, &mut pretty, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 0.5), ("b".into(), 2.0)];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}

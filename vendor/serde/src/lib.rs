//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! crate (patched in via `[patch.crates-io]`) provides the subset of
//! serde the workspace actually uses: `Serialize`/`Deserialize` traits
//! with derive macros, routed through a self-describing [`Value`] tree
//! that `serde_json` renders and parses. Data model and JSON encoding
//! follow serde's conventions (externally tagged enums, transparent
//! newtypes, maps as objects) so persisted artifacts stay readable.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A self-describing serialized tree (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (covers all Rust integer widths in use).
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object — insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors when missing (derive helper).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Construct from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
///
/// The lifetime parameter mirrors serde's signature so existing bounds
/// (`Deserialize<'de>`, `DeserializeOwned`) keep compiling; the stand-in
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct from the data-model tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Owned deserialization (serde's `DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// serde-compatible module path for deserialization items.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned, Error};
}

/// serde-compatible module path for serialization items.
pub mod ser {
    pub use crate::{Error, Serialize};
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

// u128 saturates into the i128 data model; traced durations never
// approach the boundary.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int((*self).min(i128::MAX as u128) as i128)
    }
}
impl<'de> Deserialize<'de> for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) if *i >= 0 => Ok(*i as u128),
            other => Err(Error::msg(format!("expected unsigned integer, got {other:?}"))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => {
                if items.len() != N {
                    return Err(Error::msg(format!(
                        "expected array of length {N}, got {}",
                        items.len()
                    )));
                }
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| Error::msg("array length mismatch".to_string()))
            }
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Arr(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

// ---------------------------------------------------------------------
// Map/set impls (JSON object keys are strings; integer keys round-trip
// through their decimal form, matching serde_json).
// ---------------------------------------------------------------------

/// Encode/decode a map key as a JSON object key.
pub trait KeyCodec: Sized {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl KeyCodec for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl KeyCodec for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::msg(format!("invalid {} key: {s}", stringify!($t))))
            }
        }
    )*};
}

impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: KeyCodec + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}
impl<'de, K: KeyCodec + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: KeyCodec + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}
impl<'de, K: KeyCodec + Eq + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
    for HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Eq + std::hash::Hash> Deserialize<'de> for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = Vec::from_value(&vec![1u8, 2].to_value()).unwrap();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn tuples_and_maps_round_trip() {
        let t = ("a".to_string(), 3usize);
        let back: (String, usize) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
        let mut m = HashMap::new();
        m.insert(7u64, "seven".to_string());
        let back: HashMap<u64, String> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn f32_round_trips_exactly() {
        let x = 0.9f32;
        let back = f32::from_value(&x.to_value()).unwrap();
        assert_eq!(back, x);
    }
}

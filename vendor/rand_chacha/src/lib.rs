//! Offline stand-in for `rand_chacha`: implements the actual ChaCha
//! stream cipher block function (RFC 8439 quarter rounds) behind the
//! stand-in `rand` traits. Output streams are deterministic functions
//! of the seed, which is all the workspace requires — it does not
//! promise bit-compatibility with the upstream crate.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Cipher state: constants, 8 key words, block counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block and read position within it.
    buffer: [u32; 16],
    index: usize,
}

/// ChaCha with 8 double-rounds — the variant the workspace seeds everywhere.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 double-rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 double-rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaChaRng {
            state,
            buffer: [0u32; 16],
            index: 16,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xdead_beef);
        let mut b = ChaCha8Rng::seed_from_u64(0xdead_beef);
        let mut c = ChaCha8Rng::seed_from_u64(0xdead_beee);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rfc8439_chacha20_block() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        rng.state[12] = 1;
        rng.state[13] = 0x0900_0000;
        rng.state[14] = 0x4a00_0000;
        rng.state[15] = 0;
        rng.refill();
        assert_eq!(rng.buffer[0], 0xe4e7_f110);
        assert_eq!(rng.buffer[15], 0x4e3c_50a2);
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
